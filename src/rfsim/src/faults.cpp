#include "rfp/rfsim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {

namespace {

constexpr std::uint64_t kRoundStream = 0x726E64;   // "rnd"
constexpr std::uint64_t kStreamStream = 0x737472;  // "str"
constexpr std::uint64_t kDriftDirStream = 0x646472;   // "ddr"
constexpr std::uint64_t kDriftWalkStream = 0x64776B;  // "dwk"
constexpr std::uint64_t kDriftSlope = 0x6B;      // 'k'
constexpr std::uint64_t kDriftIntercept = 0x62;  // 'b'

void require_prob(double p, const char* what) {
  require(p >= 0.0 && p <= 1.0, std::string("FaultInjector: ") + what +
                                    " must be a probability in [0, 1]");
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Round-level fault realization shared by every dwell (and, for multi-tag
/// inventories, every tag) of one trial.
struct RoundFaults {
  std::vector<std::size_t> silent_ports;  // dead + per-round dropout draws
  bool has_burst = false;
  double burst_lo = 0.0, burst_hi = 0.0;
  bool has_restart = false;
  double restart_lo = 0.0, restart_hi = 0.0;

  bool port_silent(std::size_t antenna) const {
    return contains(silent_ports, antenna);
  }
  bool in_burst(double t) const {
    return has_burst && t >= burst_lo && t < burst_hi;
  }
  bool in_restart(double t) const {
    return has_restart && t >= restart_lo && t < restart_hi;
  }
};

RoundFaults draw_round_faults(const FaultProfile& profile,
                              std::size_t n_antennas, double duration_s,
                              Rng& rng) {
  RoundFaults faults;
  for (std::size_t ai = 0; ai < n_antennas; ++ai) {
    if (contains(profile.dead_antennas, ai) ||
        rng.bernoulli(profile.antenna_dropout_prob)) {
      faults.silent_ports.push_back(ai);
    }
  }
  if (rng.bernoulli(profile.burst_prob)) {
    faults.has_burst = true;
    const double span = std::max(duration_s - profile.burst_duration_s, 0.0);
    faults.burst_lo = rng.uniform(0.0, std::max(span, 1e-12));
    faults.burst_hi = faults.burst_lo + profile.burst_duration_s;
  }
  if (rng.bernoulli(profile.restart_prob)) {
    faults.has_restart = true;
    faults.restart_lo = rng.uniform(0.0, std::max(duration_s, 1e-12));
    faults.restart_hi = faults.restart_lo + profile.restart_dead_time_s;
  }
  return faults;
}

/// Deterministic per-antenna drift factor: direction (random sign) and
/// magnitude in [0.35, 1], drawn from the profile seed alone so every
/// trial sees the same factor. The random sign is what makes injected
/// drift *differential* across ports — a common-mode component would be
/// absorbed into the solved kt/bt and damage nothing.
double drift_factor(std::uint64_t seed, std::uint64_t channel,
                    std::size_t antenna) {
  Rng rng(mix_seed(seed, mix_seed(kDriftDirStream, channel, antenna)));
  const double mag = rng.uniform(0.35, 1.0);
  return rng.bernoulli(0.5) ? mag : -mag;
}

/// Random-walk displacement after `trial` steps: the sum of independent
/// unit gaussians, each seeded by its own (seed, channel, antenna, step)
/// key. O(trial) per call, but deterministic in (seed, trial) regardless
/// of which trials were faulted before — the injector's contract.
double drift_walk(std::uint64_t seed, std::uint64_t channel,
                  std::size_t antenna, std::uint64_t trial) {
  double sum = 0.0;
  for (std::uint64_t step = 1; step <= trial; ++step) {
    Rng rng(mix_seed(seed, mix_seed(kDriftWalkStream, channel, antenna), step));
    sum += rng.gaussian(0.0, 1.0);
  }
  return sum;
}

/// Per-antenna drift offsets at one trial (empty profile -> all zeros).
struct DriftOffsets {
  std::vector<double> dk;  ///< slope-channel offsets [rad/Hz]
  std::vector<double> db;  ///< intercept-channel offsets [rad]
  bool any = false;

  bool active(std::size_t antenna) const {
    return any && antenna < dk.size() &&
           (dk[antenna] != 0.0 || db[antenna] != 0.0);
  }
};

DriftOffsets draw_drift(const FaultProfile& profile, std::size_t n_antennas,
                        std::uint64_t trial) {
  DriftOffsets out;
  out.dk.assign(n_antennas, 0.0);
  out.db.assign(n_antennas, 0.0);
  if (!profile.has_drift()) return out;
  const double t = static_cast<double>(trial) * profile.drift_round_period_s;
  for (std::size_t ai = 0; ai < n_antennas; ++ai) {
    if (!profile.drift_antennas.empty() &&
        !contains(profile.drift_antennas, ai)) {
      continue;
    }
    double dk = 0.0, db = 0.0;
    if (profile.slope_drift_rate != 0.0) {
      dk += drift_factor(profile.seed, kDriftSlope, ai) *
            profile.slope_drift_rate * t;
    }
    if (profile.slope_drift_walk != 0.0) {
      dk += profile.slope_drift_walk *
            drift_walk(profile.seed, kDriftSlope, ai, trial);
    }
    if (profile.intercept_drift_rate != 0.0) {
      db += drift_factor(profile.seed, kDriftIntercept, ai) *
            profile.intercept_drift_rate * t;
    }
    if (profile.intercept_drift_walk != 0.0) {
      db += profile.intercept_drift_walk *
            drift_walk(profile.seed, kDriftIntercept, ai, trial);
    }
    out.dk[ai] = dk;
    out.db[ai] = db;
    out.any = out.any || dk != 0.0 || db != 0.0;
  }
  return out;
}

}  // namespace

bool FaultProfile::has_drift() const {
  return drift_round_period_s > 0.0 &&
         (slope_drift_rate != 0.0 || slope_drift_walk != 0.0 ||
          intercept_drift_rate != 0.0 || intercept_drift_walk != 0.0);
}

void FaultInjector::drift_offsets(std::size_t n_antennas, std::uint64_t trial,
                                  std::vector<double>& dk,
                                  std::vector<double>& db) const {
  DriftOffsets offsets = draw_drift(profile_, n_antennas, trial);
  dk = std::move(offsets.dk);
  db = std::move(offsets.db);
}

FaultProfile FaultProfile::scaled(double intensity, std::uint64_t seed) {
  require(intensity >= 0.0 && intensity <= 1.0,
          "FaultProfile::scaled: intensity must be in [0, 1]");
  FaultProfile p;
  p.seed = seed;
  p.antenna_dropout_prob = 0.15 * intensity;
  p.dwell_loss_prob = 0.30 * intensity;
  p.read_loss_prob = 0.15 * intensity;
  p.burst_prob = intensity;
  p.burst_phase_noise = 0.7 * intensity;
  p.burst_duration_s = 1.5;
  p.restart_prob = 0.5 * intensity;
  p.restart_dead_time_s = 2.0;
  p.duplicate_prob = 0.20 * intensity;
  p.timestamp_jitter_s = 0.02 * intensity;
  p.reorder_prob = 0.20 * intensity;
  return p;
}

FaultInjector::FaultInjector(FaultProfile profile)
    : profile_(std::move(profile)) {
  require_prob(profile_.antenna_dropout_prob, "antenna_dropout_prob");
  require_prob(profile_.flaky_dropout_prob, "flaky_dropout_prob");
  require_prob(profile_.dwell_loss_prob, "dwell_loss_prob");
  require_prob(profile_.read_loss_prob, "read_loss_prob");
  require_prob(profile_.burst_prob, "burst_prob");
  require_prob(profile_.restart_prob, "restart_prob");
  require_prob(profile_.duplicate_prob, "duplicate_prob");
  require_prob(profile_.reorder_prob, "reorder_prob");
  require(profile_.burst_duration_s > 0.0 && profile_.restart_dead_time_s > 0.0,
          "FaultInjector: fault windows must have positive duration");
  require(profile_.burst_phase_noise >= 0.0 &&
              profile_.timestamp_jitter_s >= 0.0,
          "FaultInjector: noise magnitudes must be non-negative");
  require(profile_.drift_round_period_s >= 0.0,
          "FaultInjector: drift_round_period_s must be non-negative");
  require(profile_.slope_drift_walk >= 0.0 &&
              profile_.intercept_drift_walk >= 0.0,
          "FaultInjector: drift walk magnitudes must be non-negative");
  require(std::isfinite(profile_.slope_drift_rate) &&
              std::isfinite(profile_.intercept_drift_rate),
          "FaultInjector: drift rates must be finite");
}

namespace {

RoundTrace apply_faulted(const FaultProfile& profile, const RoundTrace& round,
                         const RoundFaults& faults, const DriftOffsets& drift,
                         Rng& rng, FaultSummary& summary) {
  RoundTrace out;
  out.n_antennas = round.n_antennas;
  out.duration_s = round.duration_s;
  out.dwells.reserve(round.dwells.size());

  std::vector<bool> port_alive(round.n_antennas, false);
  for (const Dwell& dwell : round.dwells) {
    if (faults.port_silent(dwell.antenna) ||
        faults.in_restart(dwell.start_time_s) ||
        rng.bernoulli(profile.dwell_loss_prob) ||
        (contains(profile.flaky_antennas, dwell.antenna) &&
         rng.bernoulli(profile.flaky_dropout_prob))) {
      ++summary.dwells_dropped;
      summary.reads_dropped += dwell.phases.size();
      continue;
    }

    Dwell kept;
    kept.antenna = dwell.antenna;
    kept.channel = dwell.channel;
    kept.frequency_hz = dwell.frequency_hz;
    kept.start_time_s = dwell.start_time_s;
    kept.phases.reserve(dwell.phases.size());
    kept.rssi_dbm.reserve(dwell.rssi_dbm.size());
    for (std::size_t r = 0; r < dwell.phases.size(); ++r) {
      if (rng.bernoulli(profile.read_loss_prob)) {
        ++summary.reads_dropped;
        continue;
      }
      double phase = dwell.phases[r];
      double rssi = r < dwell.rssi_dbm.size() ? dwell.rssi_dbm[r] : 0.0;
      if (drift.active(dwell.antenna)) {
        phase = wrap_to_2pi(phase + drift.dk[dwell.antenna] * dwell.frequency_hz +
                            drift.db[dwell.antenna]);
        ++summary.reads_drifted;
      }
      if (faults.in_burst(dwell.start_time_s)) {
        phase = wrap_to_2pi(phase +
                            rng.gaussian(0.0, profile.burst_phase_noise));
        rssi -= profile.burst_rssi_drop_db;
        ++summary.reads_perturbed;
      }
      kept.phases.push_back(phase);
      kept.rssi_dbm.push_back(rssi);
    }
    if (kept.phases.empty()) {
      ++summary.dwells_dropped;
      continue;
    }
    port_alive[kept.antenna] = true;
    out.dwells.push_back(std::move(kept));
  }

  for (bool alive : port_alive) {
    if (!alive) ++summary.ports_silenced;
  }
  return out;
}

}  // namespace

RoundTrace FaultInjector::apply(const RoundTrace& round,
                                std::uint64_t trial) const {
  summary_ = {};
  Rng rng(mix_seed(profile_.seed, kRoundStream, trial));
  const RoundFaults faults =
      draw_round_faults(profile_, round.n_antennas, round.duration_s, rng);
  const DriftOffsets drift = draw_drift(profile_, round.n_antennas, trial);
  return apply_faulted(profile_, round, faults, drift, rng, summary_);
}

std::vector<RoundTrace> FaultInjector::apply(std::span<const RoundTrace> rounds,
                                             std::uint64_t trial) const {
  summary_ = {};
  std::vector<RoundTrace> out;
  if (rounds.empty()) return out;
  out.reserve(rounds.size());

  // One round-level realization for the whole inventory: a dead port, a
  // burst window, or a restart hits every tag at once. Read-level draws
  // then come from per-tag streams, so tag t's thinning is independent of
  // how many tags were faulted before it.
  Rng round_rng(mix_seed(profile_.seed, kRoundStream, trial));
  const RoundFaults faults = draw_round_faults(
      profile_, rounds[0].n_antennas, rounds[0].duration_s, round_rng);
  // Drift is a deployment-level state (reader hardware), shared by every
  // tag of the inventory just like the round-level faults.
  const DriftOffsets drift =
      draw_drift(profile_, rounds[0].n_antennas, trial);
  for (std::size_t t = 0; t < rounds.size(); ++t) {
    Rng tag_rng(mix_seed(profile_.seed, mix_seed(trial, 0x746167, t)));
    out.push_back(
        apply_faulted(profile_, rounds[t], faults, drift, tag_rng, summary_));
  }
  return out;
}

std::vector<StreamRead> FaultInjector::apply_stream(
    std::span<const StreamRead> reads, std::uint64_t trial) const {
  summary_ = {};
  if (reads.empty()) return {};
  Rng rng(mix_seed(profile_.seed, kStreamStream, trial));

  double t_lo = reads.front().time_s, t_hi = reads.front().time_s;
  std::size_t max_antenna = 0;
  for (const StreamRead& read : reads) {
    t_lo = std::min(t_lo, read.time_s);
    t_hi = std::max(t_hi, read.time_s);
    max_antenna = std::max(max_antenna, read.antenna);
  }
  const RoundFaults faults =
      draw_round_faults(profile_, max_antenna + 1, t_hi - t_lo, rng);
  const DriftOffsets drift = draw_drift(profile_, max_antenna + 1, trial);

  // Dwell-level decisions must be consistent across the reads of one
  // (antenna, channel) segment, so they are drawn once per key.
  std::map<std::pair<std::size_t, std::size_t>, bool> dwell_lost;
  auto dwell_is_lost = [&](const StreamRead& read) {
    const auto key = std::make_pair(read.antenna, read.channel);
    auto it = dwell_lost.find(key);
    if (it == dwell_lost.end()) {
      const bool lost =
          rng.bernoulli(profile_.dwell_loss_prob) ||
          (contains(profile_.flaky_antennas, read.antenna) &&
           rng.bernoulli(profile_.flaky_dropout_prob));
      it = dwell_lost.emplace(key, lost).first;
    }
    return it->second;
  };

  std::vector<StreamRead> out;
  out.reserve(reads.size());
  for (const StreamRead& read : reads) {
    const double t = read.time_s - t_lo;
    if (faults.port_silent(read.antenna) || faults.in_restart(t) ||
        dwell_is_lost(read) || rng.bernoulli(profile_.read_loss_prob)) {
      ++summary_.reads_dropped;
      continue;
    }
    StreamRead kept = read;
    if (drift.active(kept.antenna)) {
      kept.phase = wrap_to_2pi(kept.phase + drift.dk[kept.antenna] * kept.frequency_hz +
                               drift.db[kept.antenna]);
      ++summary_.reads_drifted;
    }
    if (faults.in_burst(t)) {
      kept.phase =
          wrap_to_2pi(kept.phase + rng.gaussian(0.0, profile_.burst_phase_noise));
      kept.rssi_dbm -= profile_.burst_rssi_drop_db;
      ++summary_.reads_perturbed;
    }
    if (profile_.timestamp_jitter_s > 0.0) {
      kept.time_s = std::max(
          0.0, kept.time_s + rng.gaussian(0.0, profile_.timestamp_jitter_s));
    }
    out.push_back(kept);
    if (rng.bernoulli(profile_.duplicate_prob)) {
      out.push_back(out.back());
      ++summary_.reads_duplicated;
    }
  }

  // Reordering: displace selected reads later in the delivery order (LLRP
  // batches flushing out of order), bounded by reorder_max_displacement.
  if (profile_.reorder_prob > 0.0 && out.size() > 1) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (!rng.bernoulli(profile_.reorder_prob)) continue;
      const std::size_t max_shift = std::min<std::size_t>(
          profile_.reorder_max_displacement, out.size() - 1 - i);
      if (max_shift == 0) continue;
      const std::size_t target = i + 1 + rng.uniform_index(max_shift);
      std::rotate(out.begin() + static_cast<std::ptrdiff_t>(i),
                  out.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  out.begin() + static_cast<std::ptrdiff_t>(target) + 1);
      ++summary_.reads_reordered;
    }
  }
  return out;
}

}  // namespace rfp
