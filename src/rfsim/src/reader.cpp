#include "rfp/rfsim/reader.hpp"

#include <numeric>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {

RoundTrace collect_round(const Scene& scene, const ReaderConfig& reader_config,
                         const ChannelConfig& channel_config,
                         const TagHardware& tag, const MobilityModel& mobility,
                         std::uint64_t trial_seed, Rng& rng) {
  require(!scene.antennas.empty(), "collect_round: scene has no antennas");
  require(reader_config.reads_per_antenna_per_channel > 0,
          "collect_round: need at least one read per dwell");
  require(reader_config.dwell_s > 0.0, "collect_round: dwell must be positive");

  const ChannelModel channel(scene, channel_config, trial_seed);
  const std::size_t n_ant = scene.antennas.size();

  // FCC pseudo-random hop sequence, fixed by the trial seed so the same
  // trial is reproducible independent of read-noise draws.
  std::vector<std::size_t> hop_order(kNumChannels);
  std::iota(hop_order.begin(), hop_order.end(), std::size_t{0});
  if (reader_config.randomize_hop_order) {
    Rng hop_rng(mix_seed(trial_seed, 0x686F70ULL));
    hop_rng.shuffle(hop_order);
  }

  RoundTrace trace;
  trace.n_antennas = n_ant;
  trace.dwells.reserve(kNumChannels * n_ant);

  const std::size_t reads = reader_config.reads_per_antenna_per_channel;
  const double ant_slot = reader_config.dwell_s / static_cast<double>(n_ant);
  const double read_slot = ant_slot / static_cast<double>(reads);

  for (std::size_t hop = 0; hop < hop_order.size(); ++hop) {
    const std::size_t ch = hop_order[hop];
    const double f = channel_frequency(ch);
    const double channel_start =
        reader_config.dwell_s * static_cast<double>(hop);

    for (std::size_t ai = 0; ai < n_ant; ++ai) {
      Dwell dwell;
      dwell.antenna = ai;
      dwell.channel = ch;
      dwell.frequency_hz = f;
      dwell.start_time_s = channel_start + ant_slot * static_cast<double>(ai);
      dwell.phases.reserve(reads);
      dwell.rssi_dbm.reserve(reads);

      for (std::size_t r = 0; r < reads; ++r) {
        const double t = dwell.start_time_s + read_slot * static_cast<double>(r);
        const TagState state = mobility.at(t);
        const double noise_scale = channel.noise_scale(ai, state);

        double phase = channel.reported_phase(ai, state, tag, f);
        phase += rng.gaussian(0.0, reader_config.read_phase_noise * noise_scale);
        if (rng.bernoulli(reader_config.pi_jump_prob)) phase += kPi;
        dwell.phases.push_back(wrap_to_2pi(phase));

        const double rssi = channel.mean_rssi_dbm(ai, state, f) +
                            rng.gaussian(0.0, reader_config.rssi_noise_db);
        dwell.rssi_dbm.push_back(rssi);
      }
      trace.dwells.push_back(std::move(dwell));
    }
  }
  trace.duration_s = reader_config.dwell_s * static_cast<double>(kNumChannels);
  return trace;
}

RoundTrace collect_round(const Scene& scene, const ReaderConfig& reader_config,
                         const ChannelConfig& channel_config,
                         const TagHardware& tag, const TagState& state,
                         std::uint64_t trial_seed, Rng& rng) {
  return collect_round(scene, reader_config, channel_config, tag,
                       MobilityModel::static_tag(state), trial_seed, rng);
}

std::vector<RoundTrace> collect_round_multi(
    const Scene& scene, const ReaderConfig& reader_config,
    const ChannelConfig& channel_config, std::span<const TagInstance> tags,
    std::uint64_t trial_seed, Rng& rng) {
  require(!tags.empty(), "collect_round_multi: no tags");

  // The per-dwell read budget is shared by the population; every tag
  // keeps at least one read per (channel, antenna) segment so its trace
  // stays complete (sparser-population behavior is the graceful case).
  ReaderConfig per_tag = reader_config;
  per_tag.reads_per_antenna_per_channel = std::max<std::size_t>(
      reader_config.reads_per_antenna_per_channel / tags.size(), 1);

  std::vector<RoundTrace> out;
  out.reserve(tags.size());
  for (std::size_t t = 0; t < tags.size(); ++t) {
    // The environment realization (trial seed) is shared; read noise draws
    // are tag-specific via the caller's rng stream.
    out.push_back(collect_round(scene, per_tag, channel_config,
                                tags[t].hardware, tags[t].mobility,
                                trial_seed, rng));
  }
  return out;
}

}  // namespace rfp
