#include "rfp/rfsim/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "rfp/geom/frame.hpp"

namespace rfp {

MobilityModel MobilityModel::static_tag(TagState state) {
  return MobilityModel(Kind::kStatic, state);
}

MobilityModel MobilityModel::linear_motion(TagState start, Vec3 velocity) {
  MobilityModel m(Kind::kLinear, start);
  m.velocity_ = velocity;
  return m;
}

MobilityModel MobilityModel::planar_rotation(TagState start,
                                             double rate_rad_s) {
  MobilityModel m(Kind::kRotation, start);
  m.rate_rad_s_ = rate_rad_s;
  m.alpha0_ = std::atan2(start.polarization.y, start.polarization.x);
  return m;
}

MobilityModel MobilityModel::windowed_motion(TagState start, Vec3 velocity,
                                             double t0, double t1) {
  MobilityModel m(Kind::kWindowed, start);
  m.velocity_ = velocity;
  m.t0_ = t0;
  m.t1_ = t1;
  return m;
}

TagState MobilityModel::at(double t) const {
  TagState s = start_;
  switch (kind_) {
    case Kind::kStatic:
      break;
    case Kind::kLinear:
      s.position += velocity_ * t;
      break;
    case Kind::kRotation:
      s.polarization = planar_polarization(alpha0_ + rate_rad_s_ * t);
      break;
    case Kind::kWindowed: {
      const double active = std::clamp(t, t0_, t1_) - t0_;
      s.position += velocity_ * active;
      break;
    }
  }
  return s;
}

}  // namespace rfp
