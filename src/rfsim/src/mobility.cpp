#include "rfp/rfsim/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "rfp/geom/frame.hpp"

namespace rfp {

MobilityModel MobilityModel::static_tag(TagState state) {
  return MobilityModel(Kind::kStatic, state);
}

MobilityModel MobilityModel::linear_motion(TagState start, Vec3 velocity) {
  MobilityModel m(Kind::kLinear, start);
  m.velocity_ = velocity;
  return m;
}

MobilityModel MobilityModel::planar_rotation(TagState start,
                                             double rate_rad_s) {
  MobilityModel m(Kind::kRotation, start);
  m.rate_rad_s_ = rate_rad_s;
  m.alpha0_ = std::atan2(start.polarization.y, start.polarization.x);
  return m;
}

MobilityModel MobilityModel::windowed_motion(TagState start, Vec3 velocity,
                                             double t0, double t1) {
  MobilityModel m(Kind::kWindowed, start);
  m.velocity_ = velocity;
  m.t0_ = t0;
  m.t1_ = t1;
  return m;
}

MobilityModel MobilityModel::waypoint_path(TagState start,
                                           std::vector<Waypoint> path) {
  if (path.empty()) return static_tag(start);
  MobilityModel m(Kind::kWaypoint, start);
  m.path_ = std::move(path);
  return m;
}

MobilityModel MobilityModel::with_time_offset(double offset_s) const {
  MobilityModel m = *this;
  m.time_offset_ += offset_s;
  return m;
}

TagState MobilityModel::at(double t) const {
  t += time_offset_;
  TagState s = start_;
  switch (kind_) {
    case Kind::kStatic:
      break;
    case Kind::kLinear:
      s.position += velocity_ * t;
      break;
    case Kind::kRotation:
      s.polarization = planar_polarization(alpha0_ + rate_rad_s_ * t);
      break;
    case Kind::kWindowed: {
      const double active = std::clamp(t, t0_, t1_) - t0_;
      s.position += velocity_ * active;
      break;
    }
    case Kind::kWaypoint: {
      // Walk the legs, consuming travel then dwell time; negative t (a
      // with_time_offset before the path starts) holds the start pose.
      double u = std::max(t, 0.0);
      Vec3 from = start_.position;
      s.position = from;
      for (const Waypoint& leg : path_) {
        if (u < leg.travel_s) {
          const double frac = u / leg.travel_s;
          s.position = from + (leg.position - from) * frac;
          return s;
        }
        u -= leg.travel_s;
        if (u < leg.dwell_s) {
          s.position = leg.position;
          return s;
        }
        u -= leg.dwell_s;
        from = leg.position;
        s.position = from;
      }
      break;  // past the last leg: hold the final waypoint
    }
  }
  return s;
}

}  // namespace rfp
