#include "rfp/rfsim/material.hpp"

#include <algorithm>
#include <cmath>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {

namespace {

std::uint64_t name_hash(const std::string& name) {
  // FNV-1a, stable across platforms so signatures are reproducible.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

namespace {

/// Three name-seeded sinusoids across the band, normalized to unit peak.
/// Periods are a few cycles per band: frequency-selective enough to
/// discriminate materials channel-wise, fast enough that the leakage into
/// the fitted slope stays tiny (a slow signature would masquerade as
/// extra distance and pollute kt).
double shape_of(const std::string& key, double frequency_hz) {
  std::uint64_t st = name_hash(key);
  double acc = 0.0;
  const double x = (frequency_hz - kFirstChannelHz) / kBandSpanHz;  // [0,1]
  for (int h = 0; h < 3; ++h) {
    const double phase = kTwoPi * static_cast<double>(splitmix64(st) >> 11) *
                         0x1.0p-53;
    const double cycles =
        3.0 + 4.0 * static_cast<double>(splitmix64(st) >> 11) * 0x1.0p-53;
    const double weight = 1.0 / static_cast<double>(h + 1);
    acc += weight * std::sin(kTwoPi * cycles * x + phase);
  }
  // Normalize the three-harmonic sum (max weight sum = 1 + 1/2 + 1/3).
  return acc / (1.0 + 0.5 + 1.0 / 3.0);
}

}  // namespace

double Material::signature(double frequency_hz) const {
  if (ripple_amplitude == 0.0) return 0.0;
  if (signature_like.empty()) {
    return ripple_amplitude * shape_of(name, frequency_hz);
  }
  return ripple_amplitude * (0.75 * shape_of(signature_like, frequency_hz) +
                             0.25 * shape_of(name, frequency_hz));
}

MaterialDB MaterialDB::standard() {
  MaterialDB db;
  // kt values are chosen so that material-induced slope biases span the
  // few-centimeter-equivalent range (c*kt/4pi = 2.39e7 * kt meters) the
  // paper's comparisons imply: conductive loads detune hardest.
  db.add({.name = "none",
          .kt = 0.0,
          .bt = 0.0,
          .ripple_amplitude = 0.0,
          .attenuation_db = 0.0,
          .conductive = false});
  db.add({.name = "wood",
          .kt = 1.8e-9,
          .bt = 0.35,
          .ripple_amplitude = 0.055,
          .attenuation_db = 1.0,
          .conductive = false});
  db.add({.name = "plastic",
          .kt = 0.9e-9,
          .bt = 0.18,
          .ripple_amplitude = 0.045,
          .attenuation_db = 0.5,
          .conductive = false});
  db.add({.name = "glass",
          .kt = 3.3e-9,
          .bt = 0.55,
          .ripple_amplitude = 0.06,
          .attenuation_db = 1.5,
          .conductive = false});
  db.add({.name = "metal",
          .kt = 13.0e-9,
          .bt = 2.2,
          .ripple_amplitude = 0.18,
          .attenuation_db = 6.0,
          .conductive = true});
  db.add({.name = "water",
          .kt = 7.0e-9,
          .bt = 1.25,
          .ripple_amplitude = 0.10,
          .attenuation_db = 4.0,
          .conductive = true});
  db.add({.name = "milk",
          .kt = 7.6e-9,
          .bt = 1.33,
          .ripple_amplitude = 0.10,
          .signature_like = "water",
          .attenuation_db = 4.0,
          .conductive = true});
  db.add({.name = "oil",
          .kt = 4.2e-9,
          .bt = 0.75,
          .ripple_amplitude = 0.07,
          .attenuation_db = 1.5,
          .conductive = false});
  db.add({.name = "alcohol",
          .kt = 6.2e-9,
          .bt = 1.05,
          .ripple_amplitude = 0.09,
          .attenuation_db = 3.0,
          .conductive = true});
  return db;
}

void MaterialDB::add(Material m) {
  require(!m.name.empty(), "MaterialDB::add: empty name");
  for (auto& existing : materials_) {
    if (existing.name == m.name) {
      existing = std::move(m);
      return;
    }
  }
  materials_.push_back(std::move(m));
}

const Material& MaterialDB::get(const std::string& name) const {
  for (const auto& m : materials_) {
    if (m.name == name) return m;
  }
  throw NotFound("MaterialDB: unknown material '" + name + "'");
}

std::optional<Material> MaterialDB::find(const std::string& name) const {
  for (const auto& m : materials_) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

bool MaterialDB::contains(const std::string& name) const {
  return find(name).has_value();
}

std::vector<std::string> MaterialDB::names() const {
  std::vector<std::string> out;
  out.reserve(materials_.size());
  for (const auto& m : materials_) out.push_back(m.name);
  return out;
}

}  // namespace rfp
