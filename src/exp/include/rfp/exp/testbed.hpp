#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rfp/core/pipeline.hpp"
#include "rfp/rfsim/reader.hpp"

/// \file testbed.hpp
/// The shared experiment harness: one object that stands in for the
/// paper's physical testbed (§VI-A/B). It owns the simulated scene, the
/// *measured* deployment the pipeline sees (survey errors applied), a
/// calibrated RfPrism instance, and the reference calibration rounds —
/// so every bench, test, and example runs against the same deployment.
///
/// All randomness flows from the config seed; trials are keyed by caller-
/// supplied trial ids, so individual data points are reproducible in
/// isolation.

namespace rfp {

struct TestbedConfig {
  std::uint64_t seed = 42;

  /// Deployment in 3D mode (4 antennas, z solved) instead of planar.
  bool mode_3d = false;

  /// Antenna count override; 0 keeps the mode default (3 in 2D, 4 in 3D).
  /// A 4-antenna 2D deployment is the canonical fault-tolerance rig: one
  /// port can die and the pipeline still has a solvable subset.
  std::size_t n_antennas = 0;

  /// Multipath environment per paper Fig. 12: clutter reflectors around
  /// the region and the ChannelConfig::multipath() impairments.
  bool multipath_environment = false;
  std::size_t n_clutter = 6;

  /// Survey (measurement) error applied to the geometry the pipeline
  /// sees: per-axis position sigma [m] and frame rotation sigma [rad].
  double survey_position_sigma = 0.015;
  double survey_frame_sigma = 0.012;

  ReaderConfig reader;
  ChannelConfig channel = ChannelConfig::clean();
};

/// The paper's 6 evaluation rotation angles (0..150 degrees), in radians.
std::vector<double> paper_rotation_angles();

/// The paper's 8 evaluation materials.
std::vector<std::string> paper_materials();

/// 25 well-spread test positions in the working region (paper: "tags are
/// placed at 25 points with known positions").
std::vector<Vec2> paper_grid_positions(const Rect& region);

/// Distance regions of paper Figs. 9-10.
enum class Region { kNear, kMedium, kFar };
const char* to_string(Region region);

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  /// The ground-truth scene (benches use it for truth; the pipeline never
  /// sees it).
  const Scene& scene() const { return scene_; }

  /// The calibrated sensing pipeline.
  const RfPrism& prism() const { return *prism_; }

  /// The main evaluation tag (theta_device0-calibrated as "tag-1").
  const TagHardware& tag() const { return tag_; }
  const std::string& tag_id() const { return tag_id_; }

  /// The reference pose used for calibration.
  const ReferencePose& reference_pose() const { return reference_; }

  const TestbedConfig& config() const { return config_; }

  /// Collect one hop round for a static tag state. `trial` seeds the
  /// environment realization and read noise for this round.
  RoundTrace collect(const TagState& state, std::uint64_t trial) const;

  /// Collect one hop round for a moving tag.
  RoundTrace collect(const MobilityModel& mobility, std::uint64_t trial) const;

  /// Collect + sense in one step (device calibration of the main tag is
  /// applied).
  SensingResult sense(const TagState& state, std::uint64_t trial) const;

  /// Make a planar tag state at (x, y) with polarization angle alpha.
  TagState tag_state(Vec2 position, double alpha,
                     const std::string& material) const;

  /// Classify a position into the near/medium/far region by its mean
  /// distance to the antennas (tercile thresholds fixed from the region
  /// geometry).
  Region region_of(Vec2 position) const;

  /// Build a pipeline variant (different thresholds / solver settings)
  /// over this deployment, inheriting the testbed's calibrations. The
  /// variant's geometry is forced to this deployment's measured geometry.
  RfPrism make_pipeline_variant(RfPrismConfig config) const;

 private:
  TestbedConfig config_;
  Scene scene_;
  TagHardware tag_;
  std::string tag_id_ = "tag-1";
  ReferencePose reference_;
  std::unique_ptr<RfPrism> prism_;
  double region_near_threshold_ = 0.0;
  double region_far_threshold_ = 0.0;
};

}  // namespace rfp
