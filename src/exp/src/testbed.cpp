#include "rfp/exp/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {

std::vector<double> paper_rotation_angles() {
  return {deg2rad(0.0), deg2rad(30.0), deg2rad(60.0),
          deg2rad(90.0), deg2rad(120.0), deg2rad(150.0)};
}

std::vector<std::string> paper_materials() {
  return {"wood", "plastic", "glass", "metal",
          "water", "milk", "oil", "alcohol"};
}

std::vector<Vec2> paper_grid_positions(const Rect& region) {
  // 5 x 5 grid with a margin so no point sits on the region boundary.
  const Rect inner{{region.lo.x + 0.15 * region.width(),
                    region.lo.y + 0.15 * region.height()},
                   {region.hi.x - 0.15 * region.width(),
                    region.hi.y - 0.15 * region.height()}};
  return grid_points(inner, 5, 5);
}

const char* to_string(Region region) {
  switch (region) {
    case Region::kNear:
      return "near";
    case Region::kMedium:
      return "medium";
    case Region::kFar:
      return "far";
  }
  return "?";
}

Testbed::Testbed(TestbedConfig config) : config_(config) {
  if (config_.mode_3d) {
    scene_ = make_scene_3d(config_.seed);
    require(config_.n_antennas == 0 || config_.n_antennas == 4,
            "Testbed: 3D mode uses the fixed 4-antenna scene");
  } else if (config_.n_antennas == 0) {
    scene_ = make_scene_2d(config_.seed);
  } else {
    SceneConfig scene_config;
    scene_config.n_antennas = config_.n_antennas;
    scene_ = make_standard_scene(scene_config, config_.seed);
  }
  if (config_.multipath_environment) {
    add_clutter(scene_, config_.n_clutter, mix_seed(config_.seed, 0xC1));
    config_.channel = ChannelConfig::multipath();
  }

  // The pipeline sees the *measured* deployment only.
  RfPrismConfig pcfg;
  pcfg.geometry.antenna_positions = scene_.measured_antenna_positions(
      config_.survey_position_sigma, config_.seed);
  pcfg.geometry.antenna_frames = scene_.measured_antenna_frames(
      config_.survey_frame_sigma, config_.seed);
  pcfg.geometry.working_region = scene_.working_region;
  pcfg.geometry.tag_plane_z = scene_.tag_plane_z;
  if (config_.mode_3d) {
    pcfg.disentangle.grid_nx = 25;
    pcfg.disentangle.grid_ny = 25;
    pcfg.disentangle.grid_nz = 9;
    pcfg.disentangle.z_lo = 0.0;
    pcfg.disentangle.z_hi = 1.2;
  }
  prism_ = std::make_unique<RfPrism>(std::move(pcfg));

  tag_ = make_tag_hardware(tag_id_, mix_seed(config_.seed, 0x7461));
  reference_ =
      ReferencePose{Vec3{scene_.working_region.center(),
                         scene_.tag_plane_z + (config_.mode_3d ? 0.4 : 0.0)},
                    planar_polarization(0.0)};

  // Reader-port equalization with a dedicated reference tag, then the
  // theta_device0 calibration of the main tag (paper §IV-C and §V-B).
  Rng cal_rng(mix_seed(config_.seed, 0xCA11));
  const TagHardware ref_tag =
      make_tag_hardware("reference-tag", mix_seed(config_.seed, 0x7265));
  const TagState ref_state{reference_.position, reference_.polarization,
                           "none"};
  const RoundTrace reader_cal_round =
      ::rfp::collect_round(scene_, config_.reader, config_.channel, ref_tag,
                           ref_state, mix_seed(config_.seed, 1), cal_rng);
  prism_->calibrate_reader(reader_cal_round, reference_);

  const RoundTrace tag_cal_round =
      ::rfp::collect_round(scene_, config_.reader, config_.channel, tag_,
                           ref_state, mix_seed(config_.seed, 2), cal_rng);
  prism_->calibrate_tag(tag_id_, tag_cal_round, reference_);

  // Region terciles over the paper grid's mean antenna distance.
  std::vector<double> mean_distances;
  for (Vec2 p : paper_grid_positions(scene_.working_region)) {
    double s = 0.0;
    for (const auto& a : scene_.antennas) {
      s += distance(a.position, Vec3{p, scene_.tag_plane_z});
    }
    mean_distances.push_back(s / static_cast<double>(scene_.antennas.size()));
  }
  std::sort(mean_distances.begin(), mean_distances.end());
  region_near_threshold_ = mean_distances[mean_distances.size() / 3];
  region_far_threshold_ = mean_distances[2 * mean_distances.size() / 3];
}

RoundTrace Testbed::collect(const TagState& state, std::uint64_t trial) const {
  return collect(MobilityModel::static_tag(state), trial);
}

RoundTrace Testbed::collect(const MobilityModel& mobility,
                            std::uint64_t trial) const {
  // Trial-derived rng: every trial's reads are independent of how many
  // rounds were collected before it.
  Rng rng(mix_seed(config_.seed, 0x726F756E64ULL, trial));
  return ::rfp::collect_round(scene_, config_.reader, config_.channel, tag_,
                              mobility, mix_seed(config_.seed, trial), rng);
}

SensingResult Testbed::sense(const TagState& state,
                             std::uint64_t trial) const {
  return prism_->sense(collect(state, trial), tag_id_);
}

TagState Testbed::tag_state(Vec2 position, double alpha,
                            const std::string& material) const {
  require(scene_.materials.contains(material),
          "Testbed::tag_state: unknown material");
  return TagState{Vec3{position, scene_.tag_plane_z},
                  planar_polarization(alpha), material};
}

RfPrism Testbed::make_pipeline_variant(RfPrismConfig config) const {
  config.geometry = prism_->config().geometry;
  RfPrism variant(std::move(config));
  variant.import_calibrations(prism_->calibrations());
  return variant;
}

Region Testbed::region_of(Vec2 position) const {
  double s = 0.0;
  for (const auto& a : scene_.antennas) {
    s += distance(a.position, Vec3{position, scene_.tag_plane_z});
  }
  const double mean_d = s / static_cast<double>(scene_.antennas.size());
  if (mean_d <= region_near_threshold_) return Region::kNear;
  if (mean_d <= region_far_threshold_) return Region::kMedium;
  return Region::kFar;
}

}  // namespace rfp
