#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "rfp/core/engine.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/io/calibration_io.hpp"
#include "rfp/io/geometry_io.hpp"
#include "rfp/net/server.hpp"

/// \file rfpd_common.hpp
/// The daemon body shared by the standalone `rfpd` binary and the
/// `rfprism serve` subcommand: build the calibrated *default* deployment
/// pipeline — a Testbed keyed by seed, or survey/calibration files via
/// --geometry/--calibration — spin up a SensingEngine +
/// rfp::net::Server with N reactors, serve until SIGINT/SIGTERM, then
/// print the drain-complete stats (per-tenant included). Wire-v2 clients
/// may ship their own deployments per session; the options here only
/// pick what sessionless connections solve against.

namespace rfp::tools {

struct DaemonOptions {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 7461;      ///< 0 picks an ephemeral port
  std::size_t threads = 0;        ///< engine threads; 0 = hardware
  std::size_t reactors = 1;       ///< poll-loop threads (SO_REUSEPORT)
  std::uint64_t seed = 42;        ///< deployment seed
  std::size_t antennas = 4;       ///< 4 = the fault-tolerance rig
  bool multipath = false;
  double idle_timeout_s = 60.0;
  std::size_t max_connections = 64;
  std::size_t max_pending = 32;   ///< per-connection backpressure limit
  std::size_t max_tenants = 16;   ///< deployment-registry capacity
  /// Per-reactor buffer-pool residency cap (freelist slots per size
  /// class); 0 keeps the BufferPoolConfig default.
  std::size_t pool_buffers = 0;
  bool pyramid = false;           ///< coarse-to-fine Stage-A search
  bool uncached = false;          ///< disable the geometry cache
  bool scalar = false;            ///< scalar factored ranking (no SIMD)
  bool batch_rank = true;         ///< tag-batched Stage-A over one table pass
  bool drift = false;             ///< online drift self-calibration
  bool track = false;             ///< grant per-session trajectory tracking
  /// Serve a surveyed deployment from files instead of the seed-keyed
  /// testbed: --geometry replaces the default tenant's geometry,
  /// --calibration its calibration database (either may be given alone).
  std::string geometry_path;
  std::string calibration_path;
};

namespace detail {
inline std::atomic<net::Server*> g_server{nullptr};

inline void stop_signal_handler(int) {
  // request_stop is async-signal-safe: atomic store + self-pipe write.
  if (net::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}
}  // namespace detail

/// Run the daemon to completion. `name` prefixes log lines ("rfpd" or
/// "rfprism serve").
inline int run_daemon(const char* name, const DaemonOptions& options) {
  TestbedConfig bed_config;
  bed_config.seed = options.seed;
  bed_config.n_antennas = options.antennas;
  bed_config.multipath_environment = options.multipath;
  const Testbed bed(bed_config);

  // Solver-mode variant (same geometry + calibration; only the Stage-A
  // search strategy differs — see DESIGN.md "Solver acceleration").
  RfPrismConfig prism_config = bed.prism().config();
  prism_config.disentangle.use_geometry_cache = !options.uncached;
  prism_config.disentangle.pyramid.enable = options.pyramid;
  if (options.scalar) {
    prism_config.disentangle.rank_kernel = RankKernel::kFactoredScalar;
  }
  prism_config.disentangle.batch_rank = options.batch_rank;
  prism_config.disentangle.drift.enable = options.drift;

  // Default deployment: the seed-keyed testbed, unless survey /
  // calibration files override it (solver modes stay as chosen above —
  // files ship the site, never the solver).
  std::optional<RfPrism> pipeline;
  const bool file_deployment =
      !options.geometry_path.empty() || !options.calibration_path.empty();
  if (file_deployment) {
    if (!options.geometry_path.empty()) {
      prism_config.geometry = load_geometry(options.geometry_path);
    }
    pipeline.emplace(std::move(prism_config));
    if (!options.calibration_path.empty()) {
      pipeline->import_calibrations(
          load_calibrations(options.calibration_path));
    } else if (options.geometry_path.empty()) {
      pipeline->import_calibrations(bed.prism().calibrations());
    }
  } else {
    pipeline.emplace(bed.make_pipeline_variant(std::move(prism_config)));
  }
  const RfPrism& prism = *pipeline;

  SensingEngine engine(options.threads);
  if (options.drift) {
    engine.enable_drift(prism.config().geometry.n_antennas(),
                        prism.config().disentangle.drift);
  }

  net::ServerConfig server_config;
  server_config.bind_address = options.bind;
  server_config.port = options.port;
  server_config.reactors = options.reactors == 0 ? 1 : options.reactors;
  server_config.max_connections = options.max_connections;
  server_config.max_pending_per_connection = options.max_pending;
  server_config.max_tenants = options.max_tenants;
  server_config.idle_timeout_s = options.idle_timeout_s;
  server_config.tracking.enable = options.track;
  if (options.pool_buffers > 0) {
    server_config.pool.max_buffers_per_class = options.pool_buffers;
  }
  net::Server server(prism, engine, server_config);

  detail::g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGINT, detail::stop_signal_handler);
  std::signal(SIGTERM, detail::stop_signal_handler);

  if (file_deployment) {
    std::printf("%s: deployment from %s%s%s, %zu antennas, "
                "%zu worker thread(s), %zu reactor(s), solver %s%s%s%s\n",
                name,
                options.geometry_path.empty() ? "seed geometry"
                                              : options.geometry_path.c_str(),
                options.calibration_path.empty() ? "" : " + ",
                options.calibration_path.c_str(),
                prism.config().geometry.n_antennas(), engine.n_threads(),
                server_config.reactors,
                options.uncached ? "uncached" : "cached",
                options.pyramid ? "+pyramid" : "",
                options.scalar ? "+scalar" : "",
                options.batch_rank ? "" : "+no-batch-rank");
  } else {
    std::printf("%s: deployment seed %llu, %zu antennas, "
                "%zu worker thread(s), %zu reactor(s), solver %s%s%s%s\n",
                name, static_cast<unsigned long long>(options.seed),
                options.antennas, engine.n_threads(), server_config.reactors,
                options.uncached ? "uncached" : "cached",
                options.pyramid ? "+pyramid" : "",
                options.scalar ? "+scalar" : "",
                options.batch_rank ? "" : "+no-batch-rank");
  }
  if (options.drift) {
    std::printf("%s: drift self-calibration enabled\n", name);
  }
  if (options.track) {
    std::printf("%s: trajectory tracking enabled (per-session opt-in)\n",
                name);
  }
  std::printf("%s: listening on %s:%u\n", name, options.bind.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.run();  // returns once a stop request has drained

  detail::g_server.store(nullptr, std::memory_order_relaxed);
  const net::ServerStats stats = server.stats();
  std::printf("%s: shut down cleanly\n", name);
  std::printf("  connections  accepted %llu  rejected %llu  idle-closed %llu"
              "  protocol-closed %llu\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_rejected),
              static_cast<unsigned long long>(stats.connections_closed_idle),
              static_cast<unsigned long long>(
                  stats.connections_closed_protocol));
  std::printf("  requests     completed %llu  failed %llu  "
              "backpressure pauses %llu\n",
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<unsigned long long>(stats.requests_failed),
              static_cast<unsigned long long>(stats.backpressure_pauses));
  std::printf("  bytes        in %llu  out %llu\n",
              static_cast<unsigned long long>(stats.bytes_received),
              static_cast<unsigned long long>(stats.bytes_sent));
  std::printf("  datapath     pool hits %llu  misses %llu  discards %llu"
              "  resident %llu B\n",
              static_cast<unsigned long long>(stats.pool_hits),
              static_cast<unsigned long long>(stats.pool_misses),
              static_cast<unsigned long long>(stats.pool_discards),
              static_cast<unsigned long long>(stats.pool_bytes_resident));
  std::printf("               frames spliced %llu  coalesced %llu"
              " (%llu B)  writev calls %llu\n",
              static_cast<unsigned long long>(stats.frames_spliced),
              static_cast<unsigned long long>(stats.frames_coalesced),
              static_cast<unsigned long long>(stats.bytes_coalesced),
              static_cast<unsigned long long>(stats.writev_calls));
  std::printf("  sessions     opened %llu  closed %llu  tenants %zu"
              "  evicted %llu\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.sessions_closed),
              stats.tenants_resident,
              static_cast<unsigned long long>(stats.tenants_evicted));
  if (stats.stream_reads > 0) {
    std::printf("  streaming    reads %llu  results %llu  evictions %llu"
                "  track events %llu\n",
                static_cast<unsigned long long>(stats.stream_reads),
                static_cast<unsigned long long>(stats.stream_results),
                static_cast<unsigned long long>(stats.stream_evictions),
                static_cast<unsigned long long>(stats.stream_track_events));
  }
  for (const TenantStats& tenant : server.tenant_stats()) {
    std::printf("  tenant %016llx%s  %zu antennas%s  sessions %llu"
                "  requests %llu/%llu  stream %llu/%llu\n",
                static_cast<unsigned long long>(tenant.digest),
                tenant.is_default ? " (default)" : "",
                tenant.n_antennas, tenant.drift_enabled ? "  drift" : "",
                static_cast<unsigned long long>(tenant.sessions_opened),
                static_cast<unsigned long long>(tenant.requests_completed),
                static_cast<unsigned long long>(tenant.requests_failed),
                static_cast<unsigned long long>(tenant.stream_reads),
                static_cast<unsigned long long>(tenant.stream_emissions));
  }
  if (options.drift) {
    std::printf("  drift        rounds %llu  outliers %llu  alarms %llu"
                "  active %llu  dropped-ports %llu\n",
                static_cast<unsigned long long>(stats.drift_rounds_observed),
                static_cast<unsigned long long>(stats.drift_outliers_rejected),
                static_cast<unsigned long long>(stats.drift_alarms_raised),
                static_cast<unsigned long long>(stats.drift_alarms_active),
                static_cast<unsigned long long>(stats.drift_ports_dropped));
  }
  return 0;
}

}  // namespace rfp::tools
