#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include "rfp/core/engine.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/net/server.hpp"

/// \file rfpd_common.hpp
/// The daemon body shared by the standalone `rfpd` binary and the
/// `rfprism serve` subcommand: build the calibrated deployment pipeline
/// (a Testbed keyed by seed, so client and server agree on geometry and
/// calibration), spin up a SensingEngine + rfp::net::Server, serve until
/// SIGINT/SIGTERM, then print the drain-complete stats.

namespace rfp::tools {

struct DaemonOptions {
  std::string bind = "127.0.0.1";
  std::uint16_t port = 7461;      ///< 0 picks an ephemeral port
  std::size_t threads = 0;        ///< engine threads; 0 = hardware
  std::uint64_t seed = 42;        ///< deployment seed
  std::size_t antennas = 4;       ///< 4 = the fault-tolerance rig
  bool multipath = false;
  double idle_timeout_s = 60.0;
  std::size_t max_connections = 64;
  std::size_t max_pending = 32;   ///< per-connection backpressure limit
  bool pyramid = false;           ///< coarse-to-fine Stage-A search
  bool uncached = false;          ///< disable the geometry cache
  bool scalar = false;            ///< scalar factored ranking (no SIMD)
  bool drift = false;             ///< online drift self-calibration
};

namespace detail {
inline std::atomic<net::Server*> g_server{nullptr};

inline void stop_signal_handler(int) {
  // request_stop is async-signal-safe: atomic store + self-pipe write.
  if (net::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}
}  // namespace detail

/// Run the daemon to completion. `name` prefixes log lines ("rfpd" or
/// "rfprism serve").
inline int run_daemon(const char* name, const DaemonOptions& options) {
  TestbedConfig bed_config;
  bed_config.seed = options.seed;
  bed_config.n_antennas = options.antennas;
  bed_config.multipath_environment = options.multipath;
  const Testbed bed(bed_config);

  // Solver-mode variant (same geometry + calibration; only the Stage-A
  // search strategy differs — see DESIGN.md "Solver acceleration").
  RfPrismConfig prism_config = bed.prism().config();
  prism_config.disentangle.use_geometry_cache = !options.uncached;
  prism_config.disentangle.pyramid.enable = options.pyramid;
  if (options.scalar) {
    prism_config.disentangle.rank_kernel = RankKernel::kFactoredScalar;
  }
  prism_config.disentangle.drift.enable = options.drift;
  const RfPrism prism = bed.make_pipeline_variant(std::move(prism_config));

  SensingEngine engine(options.threads);
  if (options.drift) {
    engine.enable_drift(prism.config().geometry.n_antennas(),
                        prism.config().disentangle.drift);
  }

  net::ServerConfig server_config;
  server_config.bind_address = options.bind;
  server_config.port = options.port;
  server_config.max_connections = options.max_connections;
  server_config.max_pending_per_connection = options.max_pending;
  server_config.idle_timeout_s = options.idle_timeout_s;
  net::Server server(prism, engine, server_config);

  detail::g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGINT, detail::stop_signal_handler);
  std::signal(SIGTERM, detail::stop_signal_handler);

  std::printf("%s: deployment seed %llu, %zu antennas, %zu worker thread(s), "
              "solver %s%s%s\n",
              name, static_cast<unsigned long long>(options.seed),
              options.antennas, engine.n_threads(),
              options.uncached ? "uncached" : "cached",
              options.pyramid ? "+pyramid" : "",
              options.scalar ? "+scalar" : "");
  if (options.drift) {
    std::printf("%s: drift self-calibration enabled\n", name);
  }
  std::printf("%s: listening on %s:%u\n", name, options.bind.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.run();  // returns once a stop request has drained

  detail::g_server.store(nullptr, std::memory_order_relaxed);
  const net::ServerStats stats = server.stats();
  std::printf("%s: shut down cleanly\n", name);
  std::printf("  connections  accepted %llu  rejected %llu  idle-closed %llu"
              "  protocol-closed %llu\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.connections_rejected),
              static_cast<unsigned long long>(stats.connections_closed_idle),
              static_cast<unsigned long long>(
                  stats.connections_closed_protocol));
  std::printf("  requests     completed %llu  failed %llu  "
              "backpressure pauses %llu\n",
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<unsigned long long>(stats.requests_failed),
              static_cast<unsigned long long>(stats.backpressure_pauses));
  std::printf("  bytes        in %llu  out %llu\n",
              static_cast<unsigned long long>(stats.bytes_received),
              static_cast<unsigned long long>(stats.bytes_sent));
  if (options.drift) {
    std::printf("  drift        rounds %llu  outliers %llu  alarms %llu"
                "  active %llu  dropped-ports %llu\n",
                static_cast<unsigned long long>(stats.drift_rounds_observed),
                static_cast<unsigned long long>(stats.drift_outliers_rejected),
                static_cast<unsigned long long>(stats.drift_alarms_raised),
                static_cast<unsigned long long>(stats.drift_alarms_active),
                static_cast<unsigned long long>(stats.drift_ports_dropped));
  }
  return 0;
}

}  // namespace rfp::tools
