/// rfpd — the RF-Prism sensing daemon.
///
/// Serves the rfp::net wire protocol: clients send hop rounds
/// (kSenseRequest frames), rfpd solves them on a SensingEngine thread
/// pool and answers with SensingResult frames, in per-connection request
/// order. The deployment (geometry + calibration) is the standard
/// simulated testbed keyed by --seed, so any client built against the
/// same seed agrees on what the antennas look like.
///
///   rfpd [--port N] [--bind ADDR] [--threads N] [--reactors N]
///        [--seed S] [--antennas N] [--multipath] [--idle-timeout SEC]
///        [--max-conns N] [--max-pending N] [--max-tenants N]
///        [--pool-buffers N]
///        [--geometry FILE] [--calibration FILE]
///        [--pyramid] [--uncached] [--scalar] [--no-batch-rank]
///        [--drift] [--track]
///
/// --port 0 binds an ephemeral port; the actual port is printed on the
/// "listening on" line (scripts parse it there). --reactors runs N
/// SO_REUSEPORT poll loops; --geometry/--calibration serve a surveyed
/// deployment from files instead of the seed-keyed testbed (wire-v2
/// sessions can still ship their own, bounded by --max-tenants).
/// SIGINT/SIGTERM trigger a graceful shutdown: the listeners close,
/// in-flight solves drain, and every accepted request still receives its
/// response.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "rfpd_common.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rfpd [--port N] [--bind ADDR] [--threads N]\n"
               "            [--reactors N] [--seed S] [--antennas N]\n"
               "            [--multipath] [--idle-timeout SEC]\n"
               "            [--max-conns N] [--max-pending N]\n"
               "            [--max-tenants N] [--pool-buffers N]\n"
               "            [--geometry FILE]\n"
               "            [--calibration FILE] [--pyramid] [--uncached]\n"
               "            [--scalar] [--no-batch-rank] [--drift]\n"
               "            [--track]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rfp::tools::DaemonOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          throw std::invalid_argument(arg);
        }
        return argv[++i];
      };
      if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (arg == "--bind") {
        options.bind = next();
      } else if (arg == "--threads") {
        options.threads = std::stoull(next());
      } else if (arg == "--reactors") {
        options.reactors = std::stoull(next());
      } else if (arg == "--seed") {
        options.seed = std::stoull(next());
      } else if (arg == "--antennas") {
        options.antennas = std::stoull(next());
      } else if (arg == "--multipath") {
        options.multipath = true;
      } else if (arg == "--idle-timeout") {
        options.idle_timeout_s = std::stod(next());
      } else if (arg == "--max-conns") {
        options.max_connections = std::stoull(next());
      } else if (arg == "--max-pending") {
        options.max_pending = std::stoull(next());
      } else if (arg == "--max-tenants") {
        options.max_tenants = std::stoull(next());
      } else if (arg == "--pool-buffers") {
        options.pool_buffers = std::stoull(next());
      } else if (arg == "--geometry") {
        options.geometry_path = next();
      } else if (arg == "--calibration") {
        options.calibration_path = next();
      } else if (arg == "--pyramid") {
        options.pyramid = true;
      } else if (arg == "--uncached") {
        options.uncached = true;
      } else if (arg == "--scalar") {
        options.scalar = true;
      } else if (arg == "--no-batch-rank") {
        options.batch_rank = false;
      } else if (arg == "--batch-rank") {
        options.batch_rank = true;
      } else if (arg == "--drift") {
        options.drift = true;
      } else if (arg == "--track") {
        options.track = true;
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return usage();
      }
    }
  } catch (const std::invalid_argument&) {
    return usage();
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "option value out of range\n");
    return usage();
  }

  try {
    return rfp::tools::run_daemon("rfpd", options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rfpd: fatal: %s\n", e.what());
    return 1;
  }
}
