/// rfprism — command-line front end for the RF-Prism library.
///
///   rfprism simulate [options]   run sensing trials on the simulated
///                                testbed and print per-trial results
///   rfprism track [options]      run a multi-tag conveyor scenario
///                                through the trajectory engine and print
///                                the track event stream; --record FILE
///                                saves the raw read stream as a read log,
///                                --replay FILE streams a saved read log
///                                through the engine instead and dumps the
///                                trajectories as JSON
///   rfprism replay <trace>       replay a saved hop round through the
///                                standard deployment's pipeline
///   rfprism inspect <trace>      print structural stats of a saved round
///   rfprism materials            list the material database
///   rfprism stream [options]     push faulted reader streams through the
///                                StreamingSensor and print emissions,
///                                ingestion stats, and port health
///   rfprism batch [options]      sense a batch of simulated rounds
///                                through a SensingEngine thread pool and
///                                report throughput (optionally verifying
///                                bit-identity with the sequential path)
///   rfprism serve [options]      run the rfpd sensing daemon in-process
///                                (serve rounds over the rfp::net wire
///                                protocol until SIGINT/SIGTERM)
///   rfprism request [options]    send one round to a running daemon and
///                                print the sensed result (or --ping);
///                                --session ships this client's deployment
///                                first (wire v2 multi-tenancy)
///   rfprism export [options]     write the seed-keyed deployment's survey
///                                (--geometry FILE) and/or calibration
///                                database (--calibration FILE) for
///                                `rfpd --geometry/--calibration`
///
/// `stream` also speaks the wire: with --port (and optionally --host) the
/// faulted reads are shipped to a running daemon over a v2 session
/// (kStreamPush) instead of a local StreamingSensor.
///
/// `simulate` options:
///   --trials N        number of trials (default 20)
///   --material NAME   target material (default plastic; "all" cycles)
///   --alpha DEG       fixed tag rotation; omit for random
///   --multipath       use the cluttered environment
///   --seed S          deployment seed (default 42)
///   --csv             machine-readable per-trial output
///   --dump-trace F    additionally save the first trial's round to F

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/dsp/stats.hpp"
#include "rfp/core/engine.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/io/trace_io.hpp"
#include "rfp/net/client.hpp"
#include "rfp/rfsim/faults.hpp"
#include "rfp/track/tracking_engine.hpp"
#include "rfpd_common.hpp"

namespace {

using namespace rfp;

int usage() {
  std::fprintf(stderr,
               "usage: rfprism <simulate|track|replay|inspect|materials|stream|batch|serve|request|export> [args]\n"
               "  rfprism simulate [--trials N] [--material NAME|all]\n"
               "                   [--alpha DEG] [--multipath] [--seed S]\n"
               "                   [--csv] [--dump-trace FILE]\n"
               "  rfprism replay <trace-file> [--seed S]\n"
               "  rfprism inspect <trace-file>\n"
               "  rfprism track [--rounds N] [--tags N] [--seed S] [--json]\n"
               "                [--record FILE]\n"
               "  rfprism track --replay FILE [--seed S] [--antennas N]\n"
               "  rfprism materials\n"
               "  rfprism stream [--rounds N] [--fault-intensity X]\n"
               "                 [--dead PORT] [--antennas N] [--seed S]\n"
               "                 [--warm] [--drift] [--track]\n"
               "                 [--host H] [--port N] [--timeout SEC]\n"
               "  rfprism batch [--rounds N] [--threads N] [--material NAME|all]\n"
               "                [--multipath] [--seed S] [--verify]\n"
               "                [--pyramid] [--uncached] [--scalar]\n"
               "                [--no-batch-rank]\n"
               "  rfprism serve [--port N] [--bind ADDR] [--threads N]\n"
               "                [--reactors N] [--seed S] [--antennas N]\n"
               "                [--multipath] [--idle-timeout SEC]\n"
               "                [--max-conns N] [--max-tenants N]\n"
               "                [--pool-buffers N]\n"
               "                [--geometry FILE] [--calibration FILE]\n"
               "                [--pyramid] [--uncached] [--scalar] [--drift]\n"
               "                [--no-batch-rank] [--track]\n"
               "  rfprism request [--host H] [--port N] [--trace FILE]\n"
               "                  [--trial K] [--seed S] [--antennas N]\n"
               "                  [--multipath] [--material NAME] [--tag ID]\n"
               "                  [--timeout SEC] [--ping] [--session]\n"
               "  rfprism export [--seed S] [--antennas N] [--multipath]\n"
               "                 [--geometry FILE] [--calibration FILE]\n");
  return 2;
}

/// Malformed command line (missing value, unknown option, bad operand):
/// main() answers with usage() and exit code 2. Distinct from rfp::Error
/// so data/runtime failures keep their "error: ..." reporting.
struct UsageError {};

struct SimulateOptions {
  int trials = 20;
  std::string material = "plastic";
  std::optional<double> alpha_rad;
  bool multipath = false;
  std::uint64_t seed = 42;
  bool csv = false;
  std::string dump_trace;
};

int run_simulate(const SimulateOptions& options) {
  TestbedConfig config;
  config.seed = options.seed;
  config.multipath_environment = options.multipath;
  Testbed bed(config);

  const auto materials = paper_materials();
  Rng rng(mix_seed(options.seed, 0xC11));
  std::vector<double> loc_cm, ori_deg;
  int rejected = 0;

  if (options.csv) {
    std::printf("trial,material,true_x,true_y,true_alpha_deg,est_x,est_y,"
                "est_alpha_deg,kt_rad_per_ghz,bt_rad,loc_err_cm,"
                "ori_err_deg,valid\n");
  }

  for (int trial = 0; trial < options.trials; ++trial) {
    const std::string material =
        options.material == "all"
            ? materials[static_cast<std::size_t>(trial) % materials.size()]
            : options.material;
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const double alpha =
        options.alpha_rad ? *options.alpha_rad : rng.uniform(0.0, kPi);
    const TagState state = bed.tag_state(p, alpha, material);
    const RoundTrace round =
        bed.collect(state, 1000 + static_cast<std::uint64_t>(trial));
    if (trial == 0 && !options.dump_trace.empty()) {
      save_round(options.dump_trace, round);
      std::fprintf(stderr, "saved trial 0 round to %s\n",
                   options.dump_trace.c_str());
    }
    const SensingResult r = bed.prism().sense(round, bed.tag_id());
    if (!r.valid) {
      ++rejected;
      if (options.csv) {
        std::printf("%d,%s,%.4f,%.4f,%.2f,,,,,,,,0\n", trial,
                    material.c_str(), p.x, p.y, rad2deg(alpha));
      }
      continue;
    }
    const double loc = 100.0 * distance(r.position, state.position);
    const double ori = rad2deg(planar_angle_error(r.alpha, alpha));
    loc_cm.push_back(loc);
    ori_deg.push_back(ori);
    if (options.csv) {
      std::printf("%d,%s,%.4f,%.4f,%.2f,%.4f,%.4f,%.2f,%.4f,%.4f,%.2f,%.2f,1\n",
                  trial, material.c_str(), p.x, p.y, rad2deg(alpha),
                  r.position.x, r.position.y, rad2deg(r.alpha), r.kt * 1e9,
                  r.bt, loc, ori);
    } else {
      std::printf("trial %3d  %-8s  loc err %6.2f cm   orient err %6.2f deg"
                  "   kt %6.2f rad/GHz\n",
                  trial, material.c_str(), loc, ori, r.kt * 1e9);
    }
  }

  if (!options.csv && !loc_cm.empty()) {
    std::printf("\n%zu/%d valid:  loc mean %.2f cm (p90 %.2f)   orient mean "
                "%.2f deg (p90 %.2f)   rejected %d\n",
                loc_cm.size(), options.trials, mean(loc_cm),
                percentile(loc_cm, 90.0), mean(ori_deg),
                percentile(ori_deg, 90.0), rejected);
  }
  return 0;
}

int run_replay(const std::string& path, std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  const Testbed bed(config);
  const RoundTrace round = load_round(path);
  const SensingResult r = bed.prism().sense(round, bed.tag_id());
  if (!r.valid) {
    std::printf("rejected: %s\n", to_string(r.reject_reason));
    return 1;
  }
  std::printf("position    (%.4f, %.4f, %.4f) m\n", r.position.x,
              r.position.y, r.position.z);
  std::printf("orientation %.2f deg\n", rad2deg(r.alpha));
  std::printf("kt          %.4f rad/GHz\n", r.kt * 1e9);
  std::printf("bt          %.4f rad\n", r.bt);
  std::printf("residuals   slope %.3g rad/Hz, intercept %.3g rad\n",
              r.position_residual, r.orientation_residual);
  return 0;
}

int run_inspect(const std::string& path) {
  const RoundTrace round = load_round(path);
  std::printf("antennas    %zu\n", round.n_antennas);
  std::printf("dwells      %zu\n", round.dwells.size());
  std::printf("duration    %.2f s\n", round.duration_s);
  std::size_t reads = 0;
  double f_lo = 1e18, f_hi = 0.0;
  for (const auto& dwell : round.dwells) {
    reads += dwell.phases.size();
    f_lo = std::min(f_lo, dwell.frequency_hz);
    f_hi = std::max(f_hi, dwell.frequency_hz);
  }
  std::printf("reads       %zu\n", reads);
  std::printf("band        %.2f - %.2f MHz\n", f_lo / 1e6, f_hi / 1e6);
  return 0;
}

struct TrackOptions {
  int rounds = 15;
  std::size_t tags = 3;
  std::uint64_t seed = 42;
  std::size_t antennas = 4;  ///< deployment convention (record and replay
                             ///< must agree, like `request` vs `serve`)
  bool json = false;
  std::string record_path;  ///< save the live read stream as a read log
  std::string replay_path;  ///< stream a saved read log instead
};

void print_track_event(const track::TrackEvent& e) {
  std::printf("%-8.1f %-8s %-8s %-9s %-9s (%5.2f, %5.2f)  %6.3f m/s  "
              "%7.1f deg  %+6.2f deg/s\n",
              e.time_s, e.tag_id.c_str(), track::to_string(e.kind),
              track::to_string(e.label), to_string(e.grade), e.position.x,
              e.position.y, e.velocity.norm(), rad2deg(e.angle_rad),
              rad2deg(e.rate_rad_s));
}

void dump_track_events_json(std::span<const track::TrackEvent> events) {
  std::printf("{\n  \"events\": [");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const track::TrackEvent& e = events[i];
    std::printf("%s\n    {\"tag\": \"%s\", \"t\": %.6f, \"kind\": \"%s\", "
                "\"label\": \"%s\", \"grade\": \"%s\", \"accepted\": %s, "
                "\"x\": %.6f, \"y\": %.6f, \"vx\": %.6f, \"vy\": %.6f, "
                "\"position_variance\": %.8g, \"angle_rad\": %.6f, "
                "\"rate_rad_s\": %.6f, \"updates\": %llu}",
                i > 0 ? "," : "", e.tag_id.c_str(), e.time_s,
                track::to_string(e.kind), track::to_string(e.label),
                to_string(e.grade), e.fix_accepted ? "true" : "false",
                e.position.x, e.position.y, e.velocity.x, e.velocity.y,
                e.position_variance, e.angle_rad, e.rate_rad_s,
                static_cast<unsigned long long>(e.updates));
  }
  std::printf("\n  ]\n}\n");
}

void print_tracking_stats(const track::TrackingStats& stats) {
  std::printf("\ntracking stats\n");
  std::printf("  emissions consumed %llu\n",
              static_cast<unsigned long long>(stats.emissions_consumed));
  std::printf("  fixes accepted     %llu (degraded %llu, gated %llu)\n",
              static_cast<unsigned long long>(stats.fixes_accepted),
              static_cast<unsigned long long>(stats.degraded_fixes_accepted),
              static_cast<unsigned long long>(stats.fixes_gated));
  std::printf("  mobility rejects   %llu\n",
              static_cast<unsigned long long>(stats.mobility_rejects_seen));
  std::printf("  tracks             started %llu, confirmed %llu, coasted "
              "%llu, dropped %llu\n",
              static_cast<unsigned long long>(stats.tracks_started),
              static_cast<unsigned long long>(stats.tracks_confirmed),
              static_cast<unsigned long long>(stats.tracks_coasted),
              static_cast<unsigned long long>(stats.tracks_dropped));
}

/// Offline mode: stream a saved read log through a StreamingSensor +
/// TrackingEngine over the seed-keyed deployment (the same convention as
/// `rfprism request`: the log must have been captured against a
/// deployment with this seed/antenna count) and dump the trajectory
/// stream as JSON.
int run_track_replay(const TrackOptions& options) {
  std::vector<StreamRead> reads = load_read_log(options.replay_path);
  if (reads.empty()) {
    std::fprintf(stderr, "error: %s holds no reads\n",
                 options.replay_path.c_str());
    return 1;
  }
  // Replay in stream-time order regardless of how the log was captured
  // (per-tag recorders write grouped logs): out-of-order reads behind an
  // already-polled clock would be dropped as stale. Stable, so same-time
  // reads keep their file order and the replay stays deterministic.
  std::stable_sort(reads.begin(), reads.end(),
                   [](const StreamRead& a, const StreamRead& b) {
                     return a.time_s < b.time_s;
                   });

  TestbedConfig config;
  config.seed = options.seed;
  config.n_antennas = options.antennas;
  const Testbed bed(config);

  track::TrackingConfig tracking;
  tracking.enable = true;
  track::TrackingEngine engine(tracking);
  StreamingSensor sensor(bed.prism(), StreamingConfig{});
  sensor.attach_track_sink(&engine);

  // Poll once per second of stream time so lifecycle transitions land at
  // deterministic clock ticks, then flush far past the drop horizon so
  // every surviving track closes with a kDrop.
  std::vector<track::TrackEvent> events;
  const auto drain = [&](double now_s) {
    (void)sensor.poll(now_s);
    std::vector<track::TrackEvent> batch = engine.take_events();
    events.insert(events.end(), batch.begin(), batch.end());
  };
  double poll_clock = std::floor(reads.front().time_s) + 1.0;
  double last_s = reads.front().time_s;
  for (const StreamRead& read : reads) {
    while (read.time_s >= poll_clock) {
      drain(poll_clock);
      poll_clock += 1.0;
    }
    sensor.push(read);
    last_s = std::max(last_s, read.time_s);
  }
  drain(last_s + tracking.drop_after_s + 1000.0);

  dump_track_events_json(events);
  return events.empty() ? 1 : 0;
}

int run_track(const TrackOptions& options) {
  if (!options.replay_path.empty()) return run_track_replay(options);

  // A conveyor scenario: `tags` tags on parallel lanes step +5 cm along x
  // between short hop rounds (static *within* each round, per §V-C), and
  // the last tag also rotates steadily to exercise the mod-pi unwrapper.
  // All reads interleave through one StreamingSensor; the TrackingEngine
  // rides behind it as the track sink.
  TestbedConfig config;
  config.seed = options.seed;
  config.n_antennas = options.antennas;  // same convention as --replay
  config.reader.dwell_s = 0.05;  // short rounds: visible inter-round motion
  const Testbed bed(config);

  track::TrackingConfig tracking;
  tracking.enable = true;
  track::TrackingEngine engine(tracking);
  StreamingSensor sensor(bed.prism(), StreamingConfig{});
  sensor.attach_track_sink(&engine);

  const std::size_t n_tags = std::max<std::size_t>(options.tags, 1);
  const double step_x = 0.05;        // m per round
  const double spin = 0.2;           // rad per round, last tag only
  std::vector<StreamRead> recorded;
  std::vector<track::TrackEvent> all_events;
  const auto drain = [&]() {
    std::vector<track::TrackEvent> batch = engine.take_events();
    if (options.json) {
      all_events.insert(all_events.end(), batch.begin(), batch.end());
    } else {
      for (const track::TrackEvent& e : batch) print_track_event(e);
    }
  };

  if (!options.json) {
    std::printf("%-8s %-8s %-8s %-9s %-9s %-15s %-11s %-9s %s\n", "t[s]",
                "tag", "event", "label", "grade", "position", "speed",
                "angle", "rate");
  }
  double clock = 0.0;
  for (int k = 0; k < options.rounds; ++k) {
    double duration = 0.0;
    for (std::size_t i = 0; i < n_tags; ++i) {
      const Vec2 truth{0.35 + step_x * k, 0.5 + 0.3 * static_cast<double>(i)};
      const double alpha =
          i + 1 == n_tags ? std::fmod(0.3 + spin * k, kPi) : 0.4;
      const RoundTrace round = bed.collect(
          bed.tag_state(truth, alpha, "plastic"),
          3000 + static_cast<std::uint64_t>(k) * n_tags + i);
      std::vector<TagRead> reads =
          round_to_reads(round, "tag-" + std::to_string(i + 1));
      for (TagRead& read : reads) read.time_s += clock;
      sensor.push(std::span<const TagRead>(reads.data(), reads.size()));
      if (!options.record_path.empty()) {
        recorded.insert(recorded.end(), reads.begin(), reads.end());
      }
      duration = std::max(duration, round.duration_s);
    }
    clock += duration + 1.0;
    (void)sensor.poll(clock);
    drain();
  }
  // Quiet site: flush pending rounds, then age every track to its drop.
  (void)sensor.poll(clock + tracking.drop_after_s + 1000.0);
  drain();

  if (options.json) {
    dump_track_events_json(all_events);
  } else {
    print_tracking_stats(engine.stats());
  }
  if (!options.record_path.empty()) {
    save_read_log(options.record_path, recorded);
    std::fprintf(stderr, "recorded %zu reads to %s\n", recorded.size(),
                 options.record_path.c_str());
  }
  return engine.stats().emissions_consumed > 0 ? 0 : 1;
}

struct StreamOptions {
  int rounds = 12;
  double intensity = 0.5;
  std::optional<std::size_t> dead_port;
  std::size_t antennas = 4;
  std::uint64_t seed = 42;
  bool warm = false;   ///< track-seeded warm-start solves
  bool drift = false;  ///< inject LO drift + run online self-calibration
  bool track = false;  ///< run a TrackingEngine over the emission stream
  // Remote mode (--port): ship the deployment over a wire-v2 session and
  // push the faulted reads to a running daemon instead of solving locally.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = local StreamingSensor
  double timeout_s = 30.0;
};

int run_stream(const StreamOptions& options) {
  if (options.dead_port && *options.dead_port >= options.antennas) {
    std::fprintf(stderr, "error: --dead %zu out of range for %zu antennas\n",
                 *options.dead_port, options.antennas);
    return 1;
  }
  TestbedConfig config;
  config.seed = options.seed;
  config.n_antennas = options.antennas;
  Testbed bed(config);
  StreamingConfig streaming_config;
  streaming_config.enable_warm_start = options.warm;

  // With --drift the sensing pipeline runs its online self-calibration
  // loop (the StreamingSensor owns the estimator) against injected
  // per-antenna LO drift.
  const RfPrism* prism = &bed.prism();
  std::optional<RfPrism> drift_prism;
  if (options.drift) {
    RfPrismConfig prism_config = bed.prism().config();
    prism_config.disentangle.drift.enable = true;
    drift_prism.emplace(bed.make_pipeline_variant(std::move(prism_config)));
    prism = &*drift_prism;
  }
  // Remote mode: open a wire-v2 session carrying this deployment; the
  // daemon runs the per-session StreamingSensor, we just ship reads.
  std::optional<net::Client> client;
  std::optional<StreamingSensor> sensor;
  std::optional<track::TrackingEngine> engine;
  if (options.port != 0) {
    net::ClientConfig client_config;
    client_config.host = options.host;
    client_config.port = options.port;
    client_config.io_timeout_s = options.timeout_s;
    client.emplace(client_config);
    const net::SessionReady ready = client->setup_session(
        prism->config().geometry, prism->calibrations(), options.drift,
        options.track);
    std::printf("session tenant %016llx  (%u antennas%s%s) at %s:%u\n",
                static_cast<unsigned long long>(ready.digest),
                static_cast<unsigned>(ready.n_antennas),
                ready.drift_enabled ? ", drift" : "",
                ready.tracking_enabled ? ", tracking" : "",
                options.host.c_str(), static_cast<unsigned>(options.port));
    if (options.track && !ready.tracking_enabled) {
      std::fprintf(stderr,
                   "warning: daemon does not grant tracking "
                   "(run it with --track)\n");
    }
  } else {
    sensor.emplace(*prism, streaming_config);
    if (options.track) {
      track::TrackingConfig tracking;
      tracking.enable = true;
      engine.emplace(tracking);
      sensor->attach_track_sink(&*engine);
    }
  }

  FaultProfile profile = FaultProfile::scaled(options.intensity,
                                              mix_seed(options.seed, 0xFA17));
  if (options.dead_port) profile.dead_antennas.push_back(*options.dead_port);
  if (options.drift) {
    // Slow deterministic per-antenna drift: ~10 s of deployment time per
    // trial. Rates sized so the accumulated differential offset is large
    // enough to bias poses (and trip the intercept re-survey alarm over a
    // default-length run) without exceeding the correctable bound.
    profile.drift_round_period_s = 10.0;
    profile.slope_drift_rate = 1.5e-13;
    profile.intercept_drift_rate = 1e-5;
  }
  const FaultInjector injector(profile);

  // A static tag streamed round after round through a faulty site.
  const TagState state = bed.tag_state({0.8, 1.2}, 0.5, "plastic");
  double clock = 0.0;
  std::size_t emitted_total = 0;

  std::printf("%-8s %-10s %-12s %-10s %s\n", "t[s]", "grade", "loc err",
              "excluded", "reject reason");
  const auto print_emissions = [&](const std::vector<StreamedResult>& batch) {
    for (const auto& emitted : batch) {
      ++emitted_total;
      std::string excluded;
      for (std::size_t a : emitted.result.excluded_antennas) {
        excluded += (excluded.empty() ? "" : ",") + std::to_string(a);
      }
      if (excluded.empty()) excluded = "-";
      if (emitted.result.valid) {
        std::printf("%-8.1f %-10s %8.2f cm  %-10s %s\n", emitted.completed_at_s,
                    to_string(emitted.result.grade),
                    100.0 * distance(emitted.result.position, state.position),
                    excluded.c_str(), "-");
      } else {
        std::printf("%-8.1f %-10s %11s  %-10s %s\n", emitted.completed_at_s,
                    to_string(emitted.result.grade), "-", excluded.c_str(),
                    to_string(emitted.result.reject_reason));
      }
    }
  };
  std::vector<track::TrackEvent> events;
  const auto print_track_batch = [&](std::vector<track::TrackEvent> batch) {
    for (const track::TrackEvent& e : batch) print_track_event(e);
    events.insert(events.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  };
  for (int k = 0; k < options.rounds; ++k) {
    const std::uint64_t trial = 5000 + static_cast<std::uint64_t>(k);
    const RoundTrace round = bed.collect(state, trial);
    auto reads = round_to_reads(round, bed.tag_id());
    for (auto& read : reads) read.time_s += clock;
    const std::vector<TagRead> faulted = injector.apply_stream(
        std::span<const TagRead>(reads.data(), reads.size()), trial);
    clock += round.duration_s + 1.0;

    if (client) {
      std::vector<track::TrackEvent> batch;
      print_emissions(client->push_stream(
          faulted, clock, client->session_tracking() ? &batch : nullptr));
      print_track_batch(std::move(batch));
    } else {
      sensor->push(std::span<const TagRead>(faulted.data(), faulted.size()));
      print_emissions(sensor->poll(clock));
      if (engine) print_track_batch(engine->take_events());
    }
  }
  // Flush anything still pending once the site goes quiet.
  if (client) {
    std::vector<track::TrackEvent> batch;
    print_emissions(client->push_stream(
        {}, clock + 1000.0, client->session_tracking() ? &batch : nullptr));
    print_track_batch(std::move(batch));
    client->close_session();
    std::printf("\nremote stream: %zu rounds emitted by the daemon",
                emitted_total);
    if (!events.empty()) {
      std::printf(", %zu track events", events.size());
    }
    std::printf("\n");
    return emitted_total > 0 ? 0 : 1;
  }
  print_emissions(sensor->poll(clock + 1000.0));
  if (engine) {
    print_track_batch(engine->take_events());
    print_tracking_stats(engine->stats());
  }

  const StreamingStats& stats = sensor->stats();
  std::printf("\nstream stats\n");
  std::printf("  reads accepted     %llu\n",
              static_cast<unsigned long long>(stats.reads_accepted));
  std::printf("  duplicates dropped %llu\n",
              static_cast<unsigned long long>(stats.duplicates_dropped));
  std::printf("  stale dropped      %llu\n",
              static_cast<unsigned long long>(stats.stale_dropped));
  std::printf("  pools pruned       %llu\n",
              static_cast<unsigned long long>(stats.stale_pools_pruned));
  std::printf("  rounds emitted     %llu (full %llu, degraded %llu, "
              "rejected %llu)\n",
              static_cast<unsigned long long>(stats.rounds_emitted),
              static_cast<unsigned long long>(stats.rounds_full),
              static_cast<unsigned long long>(stats.rounds_degraded),
              static_cast<unsigned long long>(stats.rounds_rejected));
  std::printf("  tags timed out     %llu\n",
              static_cast<unsigned long long>(stats.tags_timed_out));

  if (const AntennaHealthMonitor* health = sensor->health()) {
    std::printf("\nport health\n");
    for (std::size_t a = 0; a < health->n_antennas(); ++a) {
      const PortHealth& port = health->port(a);
      std::printf("  port %zu  %-12s rmse %.3f  read rate %.2f  "
                  "exclusion rate %.2f  rounds %zu\n",
                  a, port.quarantined ? "QUARANTINED" : "healthy",
                  port.ewma_rmse, port.ewma_read_rate,
                  port.ewma_exclusion_rate, port.rounds_observed);
    }
  }

  if (const DriftEstimator* drift = sensor->drift()) {
    const DriftStats drift_stats = drift->stats();
    std::printf("\ndrift self-calibration\n");
    std::printf("  rounds observed    %llu (skipped %llu)\n",
                static_cast<unsigned long long>(drift_stats.rounds_observed),
                static_cast<unsigned long long>(drift_stats.rounds_skipped));
    std::printf("  updates            %llu (outliers rejected %llu)\n",
                static_cast<unsigned long long>(drift_stats.updates_applied),
                static_cast<unsigned long long>(
                    drift_stats.outliers_rejected));
    std::printf("  corrections        %s\n",
                drift_stats.warmed_up ? "active" : "warming up");
    for (std::size_t a = 0; a < drift->n_antennas(); ++a) {
      const AntennaDriftState& st = drift->state()[a];
      std::printf("  port %zu  slope %+.3e rad/Hz  intercept %+.3f rad  "
                  "updates %llu%s\n",
                  a, st.slope, st.intercept,
                  static_cast<unsigned long long>(st.updates),
                  st.alarmed ? "  RE-SURVEY" : "");
    }
    for (const ReSurveyAlarm& alarm : drift->alarms()) {
      std::printf("  ALARM port %zu: re-survey recommended "
                  "(slope %+.3e rad/Hz, intercept %+.3f rad)\n",
                  alarm.antenna, alarm.slope_drift, alarm.intercept_drift);
    }
  }
  return emitted_total > 0 ? 0 : 1;
}

struct BatchOptions {
  int rounds = 64;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::string material = "all";
  bool multipath = false;
  std::uint64_t seed = 42;
  bool verify = false;
  bool pyramid = false;   ///< coarse-to-fine Stage-A search
  bool uncached = false;  ///< disable the geometry cache (baseline timing)
  bool scalar = false;    ///< rank with the scalar factored kernel (no SIMD)
  bool batch_rank = true;  ///< tag-batched Stage-A over one shared table pass
};

/// Exact equality on everything sensing computes. Bit-identity across
/// thread counts is a hard contract of sense_batch, so == (not a
/// tolerance) is the right comparison.
bool results_identical(const SensingResult& a, const SensingResult& b) {
  return a.valid == b.valid && a.reject_reason == b.reject_reason &&
         a.grade == b.grade && a.excluded_antennas == b.excluded_antennas &&
         a.unhealthy_antennas == b.unhealthy_antennas &&
         a.position.x == b.position.x && a.position.y == b.position.y &&
         a.position.z == b.position.z &&
         a.position_residual == b.position_residual && a.alpha == b.alpha &&
         a.polarization.x == b.polarization.x &&
         a.polarization.y == b.polarization.y &&
         a.polarization.z == b.polarization.z &&
         a.orientation_residual == b.orientation_residual && a.kt == b.kt &&
         a.bt == b.bt && a.material_signature == b.material_signature;
}

int run_batch(const BatchOptions& options) {
  TestbedConfig config;
  config.seed = options.seed;
  config.multipath_environment = options.multipath;
  Testbed bed(config);

  // Solver-mode variant of the deployment pipeline (same geometry and
  // calibration; only the Stage-A search strategy differs).
  RfPrismConfig prism_config = bed.prism().config();
  prism_config.disentangle.use_geometry_cache = !options.uncached;
  prism_config.disentangle.pyramid.enable = options.pyramid;
  if (options.scalar) {
    prism_config.disentangle.rank_kernel = RankKernel::kFactoredScalar;
  }
  prism_config.disentangle.batch_rank = options.batch_rank;
  const RfPrism prism = bed.make_pipeline_variant(std::move(prism_config));

  const auto materials = paper_materials();
  Rng rng(mix_seed(options.seed, 0xBA7C));
  const std::size_t n = static_cast<std::size_t>(options.rounds);
  std::vector<RoundTrace> rounds;
  std::vector<TagState> truth;
  rounds.reserve(n);
  truth.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::string material =
        options.material == "all" ? materials[k % materials.size()]
                                  : options.material;
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi), material);
    truth.push_back(state);
    rounds.push_back(bed.collect(state, 7000 + k));
  }

  SensingEngine engine(options.threads);
  std::printf("sensing %zu rounds on %zu thread(s), solver %s%s%s%s...\n", n,
              engine.n_threads(), options.uncached ? "uncached" : "cached",
              options.pyramid ? "+pyramid" : "",
              options.scalar ? "+scalar" : "",
              options.batch_rank ? "" : "+no-batch-rank");

  // Warm-up pass populates each per-thread workspace (and the geometry
  // cache) so the timed pass measures the steady-state solve path.
  (void)prism.sense_batch(rounds, engine, bed.tag_id());

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SensingResult> results =
      prism.sense_batch(rounds, engine, bed.tag_id());
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> loc_cm;
  std::size_t valid = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (!results[k].valid) continue;
    ++valid;
    loc_cm.push_back(100.0 *
                     distance(results[k].position, truth[k].position));
  }
  std::printf("valid       %zu/%zu\n", valid, n);
  if (!loc_cm.empty()) {
    std::printf("loc err     mean %.2f cm   p90 %.2f cm\n", mean(loc_cm),
                percentile(loc_cm, 90.0));
  }
  std::printf("elapsed     %.3f s\n", elapsed_s);
  std::printf("throughput  %.1f rounds/s\n",
              elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s : 0.0);

  if (options.verify) {
    std::size_t mismatches = 0;
    for (std::size_t k = 0; k < results.size(); ++k) {
      const SensingResult sequential = prism.sense(rounds[k], bed.tag_id());
      if (!results_identical(results[k], sequential)) ++mismatches;
    }
    std::printf("verify      %zu/%zu bit-identical to sequential sense\n",
                n - mismatches, n);
    if (mismatches > 0) return 1;
  }
  return 0;
}

struct RequestOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7461;
  std::string trace;  ///< when set, send this saved round instead
  std::uint64_t seed = 42;
  int trial = 0;
  std::size_t antennas = 4;  ///< must match the daemon's deployment
  bool multipath = false;
  std::string material = "plastic";
  std::string tag = "tag-1";
  double timeout_s = 30.0;
  bool ping = false;
  /// Ship this client's seed-keyed deployment over a wire-v2 session
  /// before sensing, so the daemon solves against *our* geometry and
  /// calibration instead of its default tenant.
  bool session = false;
};

int run_request(const RequestOptions& options) {
  net::ClientConfig client_config;
  client_config.host = options.host;
  client_config.port = options.port;
  client_config.io_timeout_s = options.timeout_s;
  net::Client client(client_config);

  if (options.ping) {
    client.ping();
    std::printf("pong from %s:%u\n", options.host.c_str(),
                static_cast<unsigned>(options.port));
    return 0;
  }

  // The client-side deployment: simulation source when no trace is given,
  // and (with --session) the deployment shipped to the daemon.
  TestbedConfig config;
  config.seed = options.seed;
  config.n_antennas = options.antennas;
  config.multipath_environment = options.multipath;
  const Testbed bed(config);

  if (options.session) {
    const net::SessionReady ready = client.setup_session(
        bed.prism().config().geometry, bed.prism().calibrations());
    std::printf("session     tenant %016llx (%u antennas)\n",
                static_cast<unsigned long long>(ready.digest),
                static_cast<unsigned>(ready.n_antennas));
  }

  RoundTrace round;
  std::optional<TagState> truth;
  if (!options.trace.empty()) {
    round = load_round(options.trace);
  } else {
    // Simulate one round over the daemon's deployment: shipped by the
    // session, or (sessionless) the shared seed convention.
    Rng rng(mix_seed(options.seed,
                     0x9E90 + static_cast<std::uint64_t>(options.trial)));
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state =
        bed.tag_state(p, rng.uniform(0.0, kPi), options.material);
    truth = state;
    round = bed.collect(state,
                        1000 + static_cast<std::uint64_t>(options.trial));
  }

  const SensingResult r = client.sense(round, options.tag);
  if (!r.valid) {
    std::printf("rejected: %s (grade %s)\n", to_string(r.reject_reason),
                to_string(r.grade));
    return 1;
  }
  std::printf("grade       %s\n", to_string(r.grade));
  std::printf("position    (%.4f, %.4f, %.4f) m\n", r.position.x,
              r.position.y, r.position.z);
  std::printf("orientation %.2f deg\n", rad2deg(r.alpha));
  std::printf("kt          %.4f rad/GHz\n", r.kt * 1e9);
  std::printf("bt          %.4f rad\n", r.bt);
  if (truth) {
    std::printf("truth       (%.4f, %.4f)  ->  err %.2f cm\n",
                truth->position.x, truth->position.y,
                100.0 * distance(r.position, truth->position));
  }
  return 0;
}

struct ExportOptions {
  std::uint64_t seed = 42;
  std::size_t antennas = 4;
  bool multipath = false;
  std::string geometry_path;
  std::string calibration_path;
};

int run_export(const ExportOptions& options) {
  TestbedConfig config;
  config.seed = options.seed;
  config.n_antennas = options.antennas;
  config.multipath_environment = options.multipath;
  const Testbed bed(config);
  if (!options.geometry_path.empty()) {
    save_geometry(options.geometry_path, bed.prism().config().geometry);
    std::printf("wrote %s (%zu antennas)\n", options.geometry_path.c_str(),
                bed.prism().config().geometry.n_antennas());
  }
  if (!options.calibration_path.empty()) {
    save_calibrations(options.calibration_path, bed.prism().calibrations());
    std::printf("wrote %s (%zu tags)\n", options.calibration_path.c_str(),
                bed.prism().calibrations().n_tags());
  }
  return 0;
}

int run_materials() {
  const MaterialDB db = MaterialDB::standard();
  std::printf("%-10s %12s %8s %10s %8s %s\n", "name", "kt[rad/GHz]",
              "bt[rad]", "ripple", "atten", "conductive");
  for (const auto& name : db.names()) {
    const Material& m = db.get(name);
    std::printf("%-10s %12.2f %8.2f %10.3f %6.1fdB %s\n", m.name.c_str(),
                m.kt * 1e9, m.bt, m.ripple_amplitude, m.attenuation_db,
                m.conductive ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  try {
    if (command == "materials") {
      if (argc > 2) return usage();
      return run_materials();
    }

    if (command == "track") {
      TrackOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--rounds") {
          options.rounds = std::stoi(next());
        } else if (arg == "--tags") {
          options.tags = std::stoull(next());
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--antennas") {
          options.antennas = std::stoull(next());
        } else if (arg == "--json") {
          options.json = true;
        } else if (arg == "--record") {
          options.record_path = next();
        } else if (arg == "--replay") {
          options.replay_path = next();
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      return run_track(options);
    }

    if (command == "replay" || command == "inspect") {
      if (argc < 3 || argv[2][0] == '-') return usage();
      std::uint64_t seed = 42;
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--seed") {
          seed = std::stoull(next());
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      return command == "replay" ? run_replay(argv[2], seed)
                                 : run_inspect(argv[2]);
    }

    if (command == "stream") {
      StreamOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--rounds") {
          options.rounds = std::stoi(next());
        } else if (arg == "--fault-intensity") {
          options.intensity = std::stod(next());
        } else if (arg == "--dead") {
          options.dead_port = std::stoull(next());
        } else if (arg == "--antennas") {
          options.antennas = std::stoull(next());
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--warm") {
          options.warm = true;
        } else if (arg == "--drift") {
          options.drift = true;
        } else if (arg == "--track") {
          options.track = true;
        } else if (arg == "--host") {
          options.host = next();
        } else if (arg == "--port") {
          options.port = static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--timeout") {
          options.timeout_s = std::stod(next());
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      return run_stream(options);
    }

    if (command == "batch") {
      BatchOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--rounds") {
          options.rounds = std::stoi(next());
        } else if (arg == "--threads") {
          options.threads = std::stoull(next());
        } else if (arg == "--material") {
          options.material = next();
        } else if (arg == "--multipath") {
          options.multipath = true;
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--verify") {
          options.verify = true;
        } else if (arg == "--pyramid") {
          options.pyramid = true;
        } else if (arg == "--uncached") {
          options.uncached = true;
        } else if (arg == "--scalar") {
          options.scalar = true;
        } else if (arg == "--no-batch-rank") {
          options.batch_rank = false;
        } else if (arg == "--batch-rank") {
          options.batch_rank = true;
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      if (options.material != "all" &&
          !MaterialDB::standard().contains(options.material)) {
        std::fprintf(stderr, "unknown material: %s (try 'rfprism materials')\n",
                     options.material.c_str());
        return 2;
      }
      return run_batch(options);
    }

    if (command == "simulate") {
      SimulateOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--trials") {
          options.trials = std::stoi(next());
        } else if (arg == "--material") {
          options.material = next();
        } else if (arg == "--alpha") {
          options.alpha_rad = deg2rad(std::stod(next()));
        } else if (arg == "--multipath") {
          options.multipath = true;
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--csv") {
          options.csv = true;
        } else if (arg == "--dump-trace") {
          options.dump_trace = next();
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      if (options.material != "all" &&
          !MaterialDB::standard().contains(options.material)) {
        std::fprintf(stderr, "unknown material: %s (try 'rfprism materials')\n",
                     options.material.c_str());
        return 2;
      }
      return run_simulate(options);
    }

    if (command == "serve") {
      tools::DaemonOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--port") {
          options.port = static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--bind") {
          options.bind = next();
        } else if (arg == "--threads") {
          options.threads = std::stoull(next());
        } else if (arg == "--reactors") {
          options.reactors = std::stoull(next());
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--antennas") {
          options.antennas = std::stoull(next());
        } else if (arg == "--multipath") {
          options.multipath = true;
        } else if (arg == "--idle-timeout") {
          options.idle_timeout_s = std::stod(next());
        } else if (arg == "--max-conns") {
          options.max_connections = std::stoull(next());
        } else if (arg == "--max-tenants") {
          options.max_tenants = std::stoull(next());
        } else if (arg == "--pool-buffers") {
          options.pool_buffers = std::stoull(next());
        } else if (arg == "--geometry") {
          options.geometry_path = next();
        } else if (arg == "--calibration") {
          options.calibration_path = next();
        } else if (arg == "--pyramid") {
          options.pyramid = true;
        } else if (arg == "--uncached") {
          options.uncached = true;
        } else if (arg == "--scalar") {
          options.scalar = true;
        } else if (arg == "--no-batch-rank") {
          options.batch_rank = false;
        } else if (arg == "--batch-rank") {
          options.batch_rank = true;
        } else if (arg == "--drift") {
          options.drift = true;
        } else if (arg == "--track") {
          options.track = true;
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      return tools::run_daemon("rfprism serve", options);
    }

    if (command == "request") {
      RequestOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--host") {
          options.host = next();
        } else if (arg == "--port") {
          options.port = static_cast<std::uint16_t>(std::stoul(next()));
        } else if (arg == "--trace") {
          options.trace = next();
        } else if (arg == "--trial") {
          options.trial = std::stoi(next());
        } else if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--antennas") {
          options.antennas = std::stoull(next());
        } else if (arg == "--multipath") {
          options.multipath = true;
        } else if (arg == "--material") {
          options.material = next();
        } else if (arg == "--tag") {
          options.tag = next();
        } else if (arg == "--timeout") {
          options.timeout_s = std::stod(next());
        } else if (arg == "--ping") {
          options.ping = true;
        } else if (arg == "--session") {
          options.session = true;
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      if (options.trace.empty() &&
          !MaterialDB::standard().contains(options.material)) {
        std::fprintf(stderr, "unknown material: %s (try 'rfprism materials')\n",
                     options.material.c_str());
        return 2;
      }
      return run_request(options);
    }

    if (command == "export") {
      ExportOptions options;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", arg.c_str());
            throw UsageError();
          }
          return argv[++i];
        };
        if (arg == "--seed") {
          options.seed = std::stoull(next());
        } else if (arg == "--antennas") {
          options.antennas = std::stoull(next());
        } else if (arg == "--multipath") {
          options.multipath = true;
        } else if (arg == "--geometry") {
          options.geometry_path = next();
        } else if (arg == "--calibration") {
          options.calibration_path = next();
        } else {
          std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
          return usage();
        }
      }
      if (options.geometry_path.empty() && options.calibration_path.empty()) {
        std::fprintf(stderr,
                     "export: give --geometry FILE and/or --calibration "
                     "FILE\n");
        return usage();
      }
      return run_export(options);
    }
  } catch (const UsageError&) {
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
