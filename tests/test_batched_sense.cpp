/// Tag-batched Stage-A contract (DESIGN.md "Solver acceleration"): a
/// sense_batch over B rounds ranks all tags against one shared cached
/// distance-table pass (solve_position_batch), and the results must be
/// byte-identical to sensing each round sequentially — across thread
/// counts, ranking kernels, faulted corpora spanning full/degraded/
/// rejected grades, warm-hint mixes, and per-round tag ids. Also covers
/// the fallbacks (batch_rank off, canonical kernel, singleton batches)
/// and the hoisted one-acquire-per-batch cache behaviour.

#include "rfp/core/pipeline.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/disentangle.hpp"
#include "rfp/core/engine.hpp"
#include "rfp/core/grid_cache.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/geom/frame.hpp"
#include "rfp/rfsim/faults.hpp"
#include "rfp/rfsim/scene.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;

/// Exact (bitwise on doubles) equality of everything sensing computes.
void expect_identical(const SensingResult& a, const SensingResult& b,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.grade, b.grade);
  EXPECT_EQ(a.excluded_antennas, b.excluded_antennas);
  EXPECT_EQ(a.unhealthy_antennas, b.unhealthy_antennas);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
  EXPECT_EQ(a.position_residual, b.position_residual);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.polarization.x, b.polarization.x);
  EXPECT_EQ(a.polarization.y, b.polarization.y);
  EXPECT_EQ(a.polarization.z, b.polarization.z);
  EXPECT_EQ(a.orientation_residual, b.orientation_residual);
  EXPECT_EQ(a.kt, b.kt);
  EXPECT_EQ(a.bt, b.bt);
  EXPECT_EQ(a.material_signature, b.material_signature);
}

/// Clean + heavily faulted rounds, so batches mix full, degraded, and
/// rejected outcomes (the regime where batched bookkeeping can drift).
std::vector<RoundTrace> make_corpus(const Testbed& bed, std::size_t n_clean,
                                    std::size_t n_faulted,
                                    std::uint64_t salt = 0xBA7C) {
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(13, salt));
  const auto materials = paper_materials();
  const FaultInjector injector(FaultProfile::scaled(0.8, mix_seed(13, salt)));
  for (std::size_t k = 0; k < n_clean + n_faulted; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi),
                                         materials[k % materials.size()]);
    RoundTrace round = bed.collect(state, 7100 + k);
    if (k >= n_clean) round = injector.apply(round, 7100 + k);
    corpus.push_back(std::move(round));
  }
  return corpus;
}

RfPrism make_variant(const Testbed& bed, RankKernel kernel, bool batch_rank,
                     bool pyramid = false) {
  RfPrismConfig config = bed.prism().config();
  config.disentangle.rank_kernel = kernel;
  config.disentangle.batch_rank = batch_rank;
  config.disentangle.pyramid.enable = pyramid;
  return bed.make_pipeline_variant(std::move(config));
}

/// Exact AntennaLines from the physical model (same helper as the
/// disentangle tests).
std::vector<AntennaLine> exact_lines(const DeploymentGeometry& geometry,
                                     Vec3 position, Vec3 polarization,
                                     double kt, double bt) {
  std::vector<AntennaLine> lines;
  for (std::size_t i = 0; i < geometry.n_antennas(); ++i) {
    AntennaLine line;
    line.antenna = i;
    const double d = distance(geometry.antenna_positions[i], position);
    line.fit.slope = kSlopePerMeter * d + kt;
    line.fit.intercept = wrap_to_2pi(
        polarization_phase_toward(geometry.antenna_frames[i],
                                  geometry.antenna_positions[i], position,
                                  polarization) +
        bt);
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// sense_batch: batched Stage A byte-identical to sequential sensing
// ---------------------------------------------------------------------------

TEST(BatchedSense, MatchesSequentialAcrossThreadsAndKernels) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 4, 8);

  bool saw_degraded = false, saw_rejected = false;
  for (RankKernel kernel :
       {RankKernel::kFactoredScalar, RankKernel::kFactoredSimd}) {
    const RfPrism variant = make_variant(bed, kernel, /*batch_rank=*/true);
    std::vector<SensingResult> reference;
    for (const RoundTrace& round : corpus) {
      reference.push_back(variant.sense(round, bed.tag_id()));
    }
    for (const SensingResult& r : reference) {
      saw_degraded |= r.grade == SensingGrade::kDegraded;
      saw_rejected |= r.grade == SensingGrade::kRejected;
    }
    for (std::size_t threads : {1u, 2u, 8u}) {
      SensingEngine engine(threads);
      const std::vector<SensingResult> batch =
          variant.sense_batch(corpus, engine, bed.tag_id());
      ASSERT_EQ(batch.size(), reference.size());
      for (std::size_t k = 0; k < batch.size(); ++k) {
        expect_identical(batch[k], reference[k],
                         "kernel=" + std::to_string(static_cast<int>(kernel)) +
                             " threads=" + std::to_string(threads) +
                             " round " + std::to_string(k));
      }
    }
  }
  EXPECT_TRUE(saw_degraded) << "corpus never hit the degraded path; weak test";
  EXPECT_TRUE(saw_rejected) << "corpus never hit the rejected path; weak test";
}

TEST(BatchedSense, PyramidBatchMatchesSequentialPyramid) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5, 0xF1E);
  const RfPrism variant = make_variant(bed, RankKernel::kFactoredSimd,
                                       /*batch_rank=*/true, /*pyramid=*/true);
  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(variant.sense(round, bed.tag_id()));
  }
  for (std::size_t threads : {1u, 8u}) {
    SensingEngine engine(threads);
    const std::vector<SensingResult> batch =
        variant.sense_batch(corpus, engine, bed.tag_id());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      expect_identical(batch[k], reference[k],
                       "threads=" + std::to_string(threads) + " round " +
                           std::to_string(k));
    }
  }
}

TEST(BatchedSense, BatchRankOffMatchesBatchRankOn) {
  // The flag only changes the execution schedule, never the doubles.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5, 0x0FF);
  const RfPrism on = make_variant(bed, RankKernel::kFactoredSimd, true);
  const RfPrism off = make_variant(bed, RankKernel::kFactoredSimd, false);
  SensingEngine engine(4);
  const auto a = on.sense_batch(corpus, engine, bed.tag_id());
  const auto b = off.sense_batch(corpus, engine, bed.tag_id());
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    expect_identical(a[k], b[k], "round " + std::to_string(k));
  }
}

TEST(BatchedSense, CanonicalKernelFallsBackPerRound) {
  // kCanonical has no tag-major form; sense_batch must quietly take the
  // per-round path and still match sequential sensing.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 3, 0xCA0);
  const RfPrism canonical = make_variant(bed, RankKernel::kCanonical, true);
  SensingEngine engine(2);
  const auto batch = canonical.sense_batch(corpus, engine, bed.tag_id());
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    expect_identical(batch[k], canonical.sense(corpus[k], bed.tag_id()),
                     "round " + std::to_string(k));
  }
}

TEST(BatchedSense, SingletonBatchMatchesSingleSense) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 1, 0, 0x001);
  const RfPrism variant = make_variant(bed, RankKernel::kFactoredSimd, true);
  SensingEngine engine(2);
  const auto batch = variant.sense_batch(corpus, engine, bed.tag_id());
  ASSERT_EQ(batch.size(), 1u);
  expect_identical(batch[0], variant.sense(corpus[0], bed.tag_id()),
                   "singleton");
}

TEST(BatchedSense, WarmHintMixMatchesPerRoundWarmSense) {
  // Some rounds hinted (well and badly), some cold, in one batch: each
  // result must equal the per-round sense_warm/sense outcome exactly.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 5, 3, 0x3A3);
  const RfPrism variant = make_variant(bed, RankKernel::kFactoredSimd, true);

  // First pass: learn positions to hint with.
  std::vector<SensingResult> cold;
  for (const RoundTrace& round : corpus) {
    cold.push_back(variant.sense(round, bed.tag_id()));
  }
  std::vector<std::optional<Vec3>> hints(corpus.size());
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    if (k % 3 == 0 && cold[k].valid) {
      hints[k] = cold[k].position;  // good hint → warm path
    } else if (k % 3 == 1) {
      hints[k] = Vec3{-50.0, -50.0, 0.0};  // hopeless hint → cold fallback
    }  // else: no hint
  }
  std::vector<std::string> tag_ids(corpus.size(), bed.tag_id());

  std::vector<SensingResult> reference;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    if (hints[k].has_value()) {
      reference.push_back(
          variant.sense_warm(corpus[k], bed.tag_id(), *hints[k]));
    } else {
      reference.push_back(variant.sense(corpus[k], bed.tag_id()));
    }
  }
  for (std::size_t threads : {1u, 4u}) {
    SensingEngine engine(threads);
    const auto batch =
        variant.sense_batch(corpus, tag_ids, engine, nullptr, hints);
    for (std::size_t k = 0; k < corpus.size(); ++k) {
      expect_identical(batch[k], reference[k],
                       "threads=" + std::to_string(threads) + " round " +
                           std::to_string(k));
    }
  }
}

TEST(BatchedSense, PerRoundTagIdsApplyCalibrationsIndividually) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 4, 0, 0x7A6);
  const RfPrism variant = make_variant(bed, RankKernel::kFactoredSimd, true);
  // Alternate calibrated / uncalibrated ids: kt/bt/material compensation
  // differs between them, so cross-tag mixups would show.
  std::vector<std::string> tag_ids;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    tag_ids.push_back(k % 2 == 0 ? bed.tag_id() : "uncalibrated-tag");
  }
  SensingEngine engine(2);
  const auto batch = variant.sense_batch(corpus, tag_ids, engine);
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    expect_identical(batch[k], variant.sense(corpus[k], tag_ids[k]),
                     "round " + std::to_string(k));
  }
}

TEST(BatchedSense, BatchAcquiresTableOnce) {
  // The hoist: one geometry-cache lookup per (deployment, batch), not one
  // per round.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 6, 0, 0x0CE);
  const RfPrism variant = make_variant(bed, RankKernel::kFactoredSimd, true);
  SensingEngine engine(2);
  (void)variant.sense_batch(corpus, engine, bed.tag_id());
  const GridGeometryCache::Stats after = engine.geometry_cache().stats();
  EXPECT_EQ(after.hits + after.misses, 1u)
      << "batched path must acquire the shared table exactly once";
  (void)variant.sense_batch(corpus, engine, bed.tag_id());
  const GridGeometryCache::Stats again = engine.geometry_cache().stats();
  EXPECT_EQ(again.hits + again.misses, 2u);
  EXPECT_EQ(again.builds, 1u);
}

// ---------------------------------------------------------------------------
// solve_position_batch / rank_exhaustive_batch: layer-level contracts
// ---------------------------------------------------------------------------

TEST(BatchedSolve, SolvePositionBatchMatchesPerTag) {
  const Scene scene = make_scene_2d(77);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  config.rank_kernel = RankKernel::kFactoredSimd;
  SolveWorkspace ws;
  GridGeometryCache cache;
  const std::size_t nz = config.grid_nz > 1 ? config.grid_nz : 1;
  const auto table = cache.acquire(
      geometry,
      GridSpec{config.grid_nx, config.grid_ny, nz, config.z_lo, config.z_hi});

  Rng rng(909);
  std::vector<std::vector<AntennaLine>> all_lines;
  for (std::size_t b = 0; b < 6; ++b) {
    const Vec3 truth{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform(),
                     0.0};
    all_lines.push_back(exact_lines(geometry, truth,
                                    planar_polarization(rng.uniform(0.0, kPi)),
                                    2e-9 * rng.uniform(), 1.1));
  }
  std::vector<BatchedRankRequest> requests;
  for (const auto& lines : all_lines) {
    requests.push_back(BatchedRankRequest{lines, nullptr});
  }
  std::vector<PositionSolve> out(requests.size());
  std::vector<std::uint8_t> solved(requests.size(), 0);
  solve_position_batch(geometry, requests, config, ws, nullptr, *table, out,
                       solved);
  for (std::size_t b = 0; b < requests.size(); ++b) {
    SCOPED_TRACE("tag " + std::to_string(b));
    ASSERT_EQ(solved[b], 1);
    const PositionSolve single = solve_position(geometry, all_lines[b], config,
                                                ws, nullptr, &cache, nullptr);
    EXPECT_EQ(out[b].position.x, single.position.x);
    EXPECT_EQ(out[b].position.y, single.position.y);
    EXPECT_EQ(out[b].position.z, single.position.z);
    EXPECT_EQ(out[b].kt, single.kt);
    EXPECT_EQ(out[b].rms, single.rms);
    EXPECT_EQ(out[b].path, single.path);
    EXPECT_EQ(out[b].cells_scanned, single.cells_scanned);
  }
}

TEST(BatchedSolve, TooFewLinesMarksUnsolvedInsteadOfThrowing) {
  const Scene scene = make_scene_2d(78);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  SolveWorkspace ws;
  GridGeometryCache cache;
  const auto table = cache.acquire(
      geometry, GridSpec{config.grid_nx, config.grid_ny, 1, config.z_lo,
                         config.z_hi});

  const auto good = exact_lines(geometry, Vec3{0.7, 1.1, 0.0},
                                planar_polarization(0.4), 1e-9, 0.8);
  std::vector<AntennaLine> starved(good.begin(), good.begin() + 2);
  std::vector<BatchedRankRequest> requests{
      BatchedRankRequest{good, nullptr}, BatchedRankRequest{starved, nullptr},
      BatchedRankRequest{good, nullptr}};
  std::vector<PositionSolve> out(3);
  std::vector<std::uint8_t> solved(3, 9);
  solve_position_batch(geometry, requests, config, ws, nullptr, *table, out,
                       solved);
  EXPECT_EQ(solved[0], 1);
  EXPECT_EQ(solved[1], 0);  // per-tag solve_position would have thrown
  EXPECT_EQ(solved[2], 1);
  EXPECT_EQ(out[0].position.x, out[2].position.x);
  EXPECT_EQ(out[0].rms, out[2].rms);
}

TEST(BatchedSolve, RankExhaustiveBatchMatchesPerTagRank) {
  const Scene scene = make_scene_2d(79);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  SolveWorkspace ws;
  GridGeometryCache cache;
  const auto table = cache.acquire(
      geometry, GridSpec{config.grid_nx, config.grid_ny, 1, config.z_lo,
                         config.z_hi});

  Rng rng(911);
  std::vector<std::vector<AntennaLine>> all_lines;
  for (std::size_t b = 0; b < 5; ++b) {
    const Vec3 truth{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform(),
                     0.0};
    all_lines.push_back(exact_lines(geometry, truth,
                                    planar_polarization(rng.uniform(0.0, kPi)),
                                    1e-9, 0.5));
  }
  for (RankKernel kernel :
       {RankKernel::kFactoredScalar, RankKernel::kFactoredSimd}) {
    SCOPED_TRACE(static_cast<int>(kernel));
    std::vector<BatchedRankRequest> requests;
    for (const auto& lines : all_lines) {
      requests.push_back(BatchedRankRequest{lines, nullptr});
    }
    std::vector<StageARank> out(requests.size());
    rank_exhaustive_batch(geometry, requests, *table, kernel, ws, out);
    for (std::size_t b = 0; b < requests.size(); ++b) {
      const StageARank single =
          rank_exhaustive(geometry, all_lines[b], *table, kernel, ws);
      // The winner is margin-exact; candidate counts may differ (the
      // batch re-scores pass-local supersets) but never shrink.
      EXPECT_EQ(out[b].cell, single.cell) << "tag " << b;
      EXPECT_EQ(out[b].rss, single.rss) << "tag " << b;
      EXPECT_EQ(out[b].kt, single.kt) << "tag " << b;
    }
  }
}

}  // namespace
}  // namespace rfp
