#include "rfp/geom/vec.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1.0, 0.0}), 3.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 a{3.0, 4.0};
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
}

TEST(Vec2, NormalizedZeroThrows) {
  EXPECT_THROW((Vec2{0.0, 0.0}).normalized(), NumericalError);
}

TEST(Vec2, UnitFromAngle) {
  const Vec2 u = unit_from_angle(0.0);
  EXPECT_NEAR(u.x, 1.0, 1e-12);
  EXPECT_NEAR(u.y, 0.0, 1e-12);
  const Vec2 v = unit_from_angle(3.14159265358979323846 / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 a{1.0, 1.0, 1.0};
  a += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(a, (Vec3{2.0, 3.0, 4.0}));
  a -= Vec3{2.0, 3.0, 4.0};
  EXPECT_EQ(a, (Vec3{0.0, 0.0, 0.0}));
}

TEST(Vec3, CrossProductOrthogonality) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Vec3 a{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 b{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 c = a.cross(b);
    ASSERT_NEAR(c.dot(a), 0.0, 1e-9);
    ASSERT_NEAR(c.dot(b), 0.0, 1e-9);
  }
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
}

TEST(Vec3, LagrangeIdentity) {
  // |a x b|^2 + (a.b)^2 == |a|^2 |b|^2
  Rng rng(32);
  for (int i = 0; i < 200; ++i) {
    const Vec3 a{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 b{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const double lhs = a.cross(b).norm2() + a.dot(b) * a.dot(b);
    const double rhs = a.norm2() * b.norm2();
    ASSERT_NEAR(lhs, rhs, 1e-9 * (1.0 + rhs));
  }
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0, 0, 0}, Vec3{2, 3, 6}), 7.0);
}

TEST(Vec3, XyProjection) {
  const Vec3 a{1.5, -2.5, 9.0};
  EXPECT_EQ(a.xy(), (Vec2{1.5, -2.5}));
}

TEST(Vec3, FromVec2Constructor) {
  const Vec3 a{Vec2{1.0, 2.0}, 3.0};
  EXPECT_EQ(a, (Vec3{1.0, 2.0, 3.0}));
}

TEST(VecStream, PrintsReadably) {
  std::ostringstream os;
  os << Vec2{1.5, 2.0} << " " << Vec3{1, 2, 3};
  EXPECT_EQ(os.str(), "(1.5, 2) (1, 2, 3)");
}

}  // namespace
}  // namespace rfp
