/// Integration and property tests: full simulate -> sense cycles over the
/// shared testbed, parameterized across the paper's experimental factors.

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

const Testbed& shared_bed() {
  static const Testbed bed{};
  return bed;
}

// ---- Property sweep: localization accuracy holds for every material ----

class MaterialSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(MaterialSweep, LocalizationUnaffectedByMaterial) {
  // The paper's core claim (Fig. 8 right): the material changes kt/bt,
  // never the inferred position, because kt is solved, not assumed.
  const Testbed& bed = shared_bed();
  const std::string material = GetParam();
  double worst = 0.0;
  int n = 0;
  std::uint64_t trial = 1000;
  for (Vec2 p : {Vec2{0.5, 0.6}, Vec2{1.0, 1.2}, Vec2{1.5, 1.6}}) {
    const SensingResult r =
        bed.sense(bed.tag_state(p, 0.4, material), trial++);
    if (!r.valid) continue;
    worst = std::max(worst, distance(r.position, Vec3{p, 0.0}));
    ++n;
  }
  ASSERT_GE(n, 2) << material;
  EXPECT_LT(worst, 0.30) << material;
}

TEST_P(MaterialSweep, KtEstimateTracksMaterial) {
  const Testbed& bed = shared_bed();
  const std::string material = GetParam();
  const Material& m = bed.scene().materials.get(material);
  double kt_sum = 0.0;
  int n = 0;
  std::uint64_t trial = 2000;
  for (int rep = 0; rep < 6; ++rep) {
    const Vec2 p{0.4 + 0.2 * rep, 1.0};
    const SensingResult r =
        bed.sense(bed.tag_state(p, 0.0, material), trial++);
    if (!r.valid) continue;
    kt_sum += r.kt;
    ++n;
  }
  ASSERT_GE(n, 4) << material;
  // kt estimate within a few rad/GHz of the nominal material value.
  EXPECT_NEAR(kt_sum / n * 1e9, m.kt * 1e9, 4.0) << material;
}

INSTANTIATE_TEST_SUITE_P(AllMaterials, MaterialSweep,
                         ::testing::ValuesIn(paper_materials()),
                         [](const auto& info) { return info.param; });

// ---- Property sweep: orientation recovered across the paper's angles ----

class AngleSweep : public ::testing::TestWithParam<int> {};

TEST_P(AngleSweep, OrientationRecoveredWithinTolerance) {
  const Testbed& bed = shared_bed();
  const double alpha = deg2rad(static_cast<double>(GetParam()));
  double err_sum = 0.0;
  int n = 0;
  std::uint64_t trial = 3000 + static_cast<std::uint64_t>(GetParam()) * 17;
  for (Vec2 p : {Vec2{0.6, 0.8}, Vec2{1.2, 1.0}, Vec2{1.5, 1.5},
                 Vec2{0.8, 1.6}}) {
    const SensingResult r =
        bed.sense(bed.tag_state(p, alpha, "plastic"), trial++);
    if (!r.valid) continue;
    err_sum += rad2deg(planar_angle_error(r.alpha, alpha));
    ++n;
  }
  ASSERT_GE(n, 3);
  EXPECT_LT(err_sum / n, 25.0) << "alpha=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperAngles, AngleSweep,
                         ::testing::Values(0, 30, 60, 90, 120, 150));

// ---- Invariants of the sensing result ----

TEST(Integration, ValidResultsAreWellFormed) {
  const Testbed& bed = shared_bed();
  std::uint64_t trial = 4000;
  for (int rep = 0; rep < 10; ++rep) {
    const Vec2 p{0.3 + 0.15 * rep, 0.4 + 0.14 * rep};
    const SensingResult r = bed.sense(
        bed.tag_state(p, 0.1 * rep, paper_materials()[rep % 8]), trial++);
    if (!r.valid) continue;
    // Position inside (a margin around) the region.
    EXPECT_GT(r.position.x, -0.3);
    EXPECT_LT(r.position.x, 2.3);
    // Alpha normalized to [0, pi).
    EXPECT_GE(r.alpha, 0.0);
    EXPECT_LT(r.alpha, kPi);
    // Polarization is unit and planar in 2D mode.
    EXPECT_NEAR(r.polarization.norm(), 1.0, 1e-9);
    EXPECT_NEAR(r.polarization.z, 0.0, 1e-9);
    // bt wrapped into a sane range by the tag calibration.
    EXPECT_GE(r.bt, -kPi);
    EXPECT_LT(r.bt, kTwoPi);
    // Signature has the channel count and finite entries.
    ASSERT_EQ(r.material_signature.size(), kNumChannels);
    for (double s : r.material_signature) ASSERT_TRUE(std::isfinite(s));
    // Diagnostics present.
    EXPECT_EQ(r.lines.size(), 3u);
    EXPECT_EQ(r.reject_reason, RejectReason::kNone);
  }
}

TEST(Integration, RepeatedTrialsGiveIndependentNoise) {
  const Testbed& bed = shared_bed();
  const TagState state = bed.tag_state({1.1, 0.9}, 0.7, "glass");
  const SensingResult a = bed.sense(state, 5001);
  const SensingResult b = bed.sense(state, 5002);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_NE(a.position, b.position);
  // But both close to truth.
  EXPECT_LT(distance(a.position, state.position), 0.3);
  EXPECT_LT(distance(b.position, state.position), 0.3);
}

TEST(Integration, MultipathSuppressionBeatsNoSuppression) {
  // Paper Fig. 12's central comparison, as a property: with clutter and
  // corrupted channels, enabling channel selection must reduce the mean
  // localization error.
  TestbedConfig config;
  config.multipath_environment = true;
  const Testbed bed(config);

  TestbedConfig raw_config = config;
  Testbed raw_bed(raw_config);
  // Rebuild a pipeline without suppression over the same deployment.
  RfPrismConfig pcfg = bed.prism().config();
  pcfg.fitting.multipath_suppression = false;
  pcfg.enable_error_detector = false;
  const RfPrism plain = bed.make_pipeline_variant(std::move(pcfg));

  double err_suppressed = 0.0, err_plain = 0.0;
  int n = 0;
  std::uint64_t trial = 6000;
  for (int rep = 0; rep < 12; ++rep) {
    const Vec2 p{0.4 + 0.1 * rep, 1.5 - 0.08 * rep};
    const TagState state = bed.tag_state(p, 0.3, "none");
    const RoundTrace round = bed.collect(state, trial++);
    const SensingResult with = bed.prism().sense(round, bed.tag_id());
    const SensingResult without = plain.sense(round, bed.tag_id());
    if (!with.valid || !without.valid) continue;
    err_suppressed += distance(with.position, state.position);
    err_plain += distance(without.position, state.position);
    ++n;
  }
  ASSERT_GE(n, 8);
  EXPECT_LT(err_suppressed, err_plain);
}

TEST(Integration, SensingIn3dMode) {
  TestbedConfig config;
  config.mode_3d = true;
  const Testbed bed(config);
  const TagState state{Vec3{1.2, 1.0, 0.5}, planar_polarization(0.6),
                       "glass"};
  const SensingResult r = bed.prism().sense(bed.collect(state, 7001),
                                            bed.tag_id());
  ASSERT_TRUE(r.valid);
  EXPECT_LT(distance(r.position, state.position), 0.30);
}

}  // namespace
}  // namespace rfp
