#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/rfsim/reader.hpp"

namespace rfp {
namespace {

TEST(MultiTag, OneTraceDividesReadBudget) {
  const Scene scene = make_scene_2d(401);
  ReaderConfig reader;
  reader.reads_per_antenna_per_channel = 24;
  const ChannelConfig channel = ChannelConfig::clean();

  std::vector<TagInstance> tags;
  for (int i = 0; i < 4; ++i) {
    tags.push_back(
        {make_tag_hardware("t" + std::to_string(i), 401),
         MobilityModel::static_tag(TagState{
             Vec3{0.4 + 0.3 * i, 1.0, 0.0}, planar_polarization(0.2 * i),
             "none"})});
  }
  Rng rng(1);
  const auto rounds =
      collect_round_multi(scene, reader, channel, tags, 100, rng);
  ASSERT_EQ(rounds.size(), 4u);
  for (const auto& round : rounds) {
    EXPECT_EQ(round.n_antennas, 3u);
    for (const auto& dwell : round.dwells) {
      EXPECT_EQ(dwell.phases.size(), 6u);  // 24 / 4 tags
    }
  }
}

TEST(MultiTag, AtLeastOneReadPerTagEvenWhenCrowded) {
  const Scene scene = make_scene_2d(402);
  ReaderConfig reader;
  reader.reads_per_antenna_per_channel = 4;
  std::vector<TagInstance> tags;
  for (int i = 0; i < 9; ++i) {
    tags.push_back(
        {make_tag_hardware("t" + std::to_string(i), 402),
         MobilityModel::static_tag(TagState{
             Vec3{0.3 + 0.15 * i, 1.2, 0.0}, planar_polarization(0.0),
             "none"})});
  }
  Rng rng(2);
  const auto rounds = collect_round_multi(scene, reader,
                                          ChannelConfig::clean(), tags, 101,
                                          rng);
  for (const auto& round : rounds) {
    for (const auto& dwell : round.dwells) {
      EXPECT_GE(dwell.phases.size(), 1u);
    }
  }
}

TEST(MultiTag, SharedEnvironmentDistinctTags) {
  // All tags share the trial's hop order; their phases differ by their
  // own geometry/hardware.
  const Scene scene = make_scene_2d(403);
  ReaderConfig reader;
  std::vector<TagInstance> tags{
      {make_tag_hardware("a", 403),
       MobilityModel::static_tag(TagState{Vec3{0.5, 0.5, 0.0},
                                          planar_polarization(0.0), "none"})},
      {make_tag_hardware("b", 403),
       MobilityModel::static_tag(TagState{Vec3{1.5, 1.5, 0.0},
                                          planar_polarization(1.0), "none"})},
  };
  Rng rng(3);
  const auto rounds = collect_round_multi(scene, reader,
                                          ChannelConfig::clean(), tags, 102,
                                          rng);
  // Same channel schedule...
  for (std::size_t d = 0; d < rounds[0].dwells.size(); ++d) {
    ASSERT_EQ(rounds[0].dwells[d].channel, rounds[1].dwells[d].channel);
  }
  // ...different phases.
  EXPECT_NE(rounds[0].dwells[0].phases[0], rounds[1].dwells[0].phases[0]);
}

TEST(MultiTag, EachTagSensedAtItsOwnPose) {
  const Testbed bed{};
  const Scene& scene = bed.scene();

  std::vector<Vec2> truths{{0.5, 0.6}, {1.0, 1.4}, {1.6, 0.9}};
  std::vector<TagInstance> tags;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    tags.push_back(
        {bed.tag(),  // same hardware identity: its calibration applies
         MobilityModel::static_tag(TagState{Vec3{truths[i], 0.0},
                                            planar_polarization(0.3),
                                            "plastic"})});
  }
  Rng rng(4);
  const auto rounds = collect_round_multi(
      scene, bed.config().reader, bed.config().channel, tags, 103, rng);
  for (std::size_t i = 0; i < truths.size(); ++i) {
    const SensingResult r = bed.prism().sense(rounds[i], bed.tag_id());
    ASSERT_TRUE(r.valid) << i;
    EXPECT_LT(distance(r.position, Vec3{truths[i], 0.0}), 0.3) << i;
  }
}

TEST(MultiTag, EmptyPopulationThrows) {
  const Scene scene = make_scene_2d(404);
  Rng rng(5);
  EXPECT_THROW(collect_round_multi(scene, ReaderConfig{},
                                   ChannelConfig::clean(), {}, 1, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace rfp
