/// Drift self-calibration contract (DESIGN.md "Drift self-calibration"):
/// the rfsim drift fault model is deterministic and exposes its ground
/// truth, the DriftEstimator converges to the differential part of a
/// linear or random-walk drift and holds the closed-loop position error
/// near the drift-free baseline while the uncorrected pipeline degrades,
/// burst spikes are MAD-gated out of the EMA, re-survey alarms latch on
/// drifted ports and never on a drift-free corpus, ports beyond the
/// correctable bound fall into the degraded subset-solve path, and with
/// drift disabled every output stays byte-identical to the drift-free
/// pipeline across thread counts and ranking kernels.

#include "rfp/core/drift.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/engine.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/geom/frame.hpp"
#include "rfp/rfsim/faults.hpp"

namespace rfp {
namespace {

/// Exact (bitwise on doubles) equality of everything sensing computes.
/// No tolerances on purpose: bit-identity is the contract.
void expect_identical(const SensingResult& a, const SensingResult& b,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.grade, b.grade);
  EXPECT_EQ(a.excluded_antennas, b.excluded_antennas);
  EXPECT_EQ(a.unhealthy_antennas, b.unhealthy_antennas);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
  EXPECT_EQ(a.position_residual, b.position_residual);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.polarization.x, b.polarization.x);
  EXPECT_EQ(a.polarization.y, b.polarization.y);
  EXPECT_EQ(a.polarization.z, b.polarization.z);
  EXPECT_EQ(a.orientation_residual, b.orientation_residual);
  EXPECT_EQ(a.kt, b.kt);
  EXPECT_EQ(a.bt, b.bt);
  EXPECT_EQ(a.material_signature, b.material_signature);
}

double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  EXPECT_GT(n, 0u);
  if (n == 0) return 0.0;
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  return values[n / 2];
}

class DriftTest : public ::testing::Test {
 protected:
  DriftTest() {
    TestbedConfig config;
    config.n_antennas = 4;
    bed_ = std::make_unique<Testbed>(config);
    state_ = bed_->tag_state({0.8, 1.2}, 0.5, "glass");
  }

  /// The linear-drift fault profile: deployment time 10 s/round, both
  /// channels ramping. Across the 48-round loops below the slope offsets
  /// reach ~1e-8 rad/Hz (≈0.25 m of ranging bias on the worst port) and
  /// the intercepts ~0.2 rad — big enough to visibly damage poses, small
  /// enough to stay inside the correctable bounds.
  static FaultProfile linear_drift_profile() {
    FaultProfile profile;
    profile.drift_round_period_s = 10.0;
    profile.slope_drift_rate = 2e-11;
    profile.intercept_drift_rate = 4e-4;
    return profile;
  }

  /// Closed loop over `n_rounds` rounds of a *wandering* tag: optionally
  /// inject drift faults, optionally run the estimator. With the
  /// estimator in the loop, each round also reads the survey's reference
  /// transponder (same deployment instant — same drift state, fresh noise
  /// realization) and observes its residuals against the known
  /// ReferencePose. That is what makes the loop converge: residuals
  /// against a *solved* pose only see the (n-3)-dimensional part of the
  /// differential drift that the position fit could not absorb, so a
  /// traffic-only estimator is left with persistent blind spots, while
  /// the known pose exposes the full differential every round. The
  /// trajectory is seeded independently of the trial stream, so every
  /// loop walks the same poses and the comparisons are paired. Returns
  /// per-round position errors; invalid rounds count as 1 m so a
  /// drift-induced rejection registers as degradation rather than
  /// silently dropping out.
  std::vector<double> run_loop(const RfPrism& prism,
                               const FaultInjector* injector,
                               DriftEstimator* estimator,
                               std::size_t n_rounds,
                               std::uint64_t trial0 = 0) const {
    std::vector<double> errors;
    Rng rng(mix_seed(4242, 0xD21F7));
    const ReferencePose& ref = bed_->reference_pose();
    const TagState ref_state{ref.position, ref.polarization, "none"};
    for (std::size_t k = 0; k < n_rounds; ++k) {
      const std::uint64_t trial = trial0 + k;
      const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
      const TagState state =
          bed_->tag_state(p, rng.uniform(0.0, kPi), "glass");
      RoundTrace round = bed_->collect(state, trial);
      if (injector != nullptr) round = injector->apply(round, trial);
      DriftCorrections snapshot;
      if (estimator != nullptr) snapshot = estimator->corrections();
      const SensingResult result =
          prism.sense(round, bed_->tag_id(), nullptr,
                      estimator != nullptr ? &snapshot : nullptr);
      if (estimator != nullptr) {
        RoundTrace ref_round = bed_->collect(ref_state, 100000 + trial);
        if (injector != nullptr) {
          ref_round = injector->apply(ref_round, trial);
        }
        const SensingResult ref_result =
            prism.sense(ref_round, bed_->tag_id(), nullptr, &snapshot);
        estimator->observe(ref_result, prism.config().geometry, &ref);
      }
      errors.push_back(result.valid
                           ? distance(result.position, state.position)
                           : 1.0);
    }
    return errors;
  }

  RfPrism drift_enabled_variant(DriftConfig config = {}) const {
    config.enable = true;
    RfPrismConfig prism_config = bed_->prism().config();
    prism_config.disentangle.drift = config;
    return bed_->make_pipeline_variant(std::move(prism_config));
  }

  std::unique_ptr<Testbed> bed_;
  TagState state_;
};

// ---------------------------------------------------------------------------
// rfsim fault model

TEST_F(DriftTest, DriftFaultsDeterministicWithGroundTruthExposed) {
  FaultProfile profile = linear_drift_profile();
  FaultInjector injector(profile);
  const RoundTrace round = bed_->collect(state_, 40);

  const RoundTrace a = injector.apply(round, 40);
  const RoundTrace b = injector.apply(round, 40);
  ASSERT_EQ(a.dwells.size(), b.dwells.size());
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    EXPECT_EQ(a.dwells[i].phases, b.dwells[i].phases);
  }
  EXPECT_GT(injector.last_summary().reads_drifted, 0u);

  // Ground truth matches the perturbation actually applied: undoing
  // dk*f + db read-by-read recovers the clean round.
  std::vector<double> dk, db;
  injector.drift_offsets(round.n_antennas, 40, dk, db);
  ASSERT_EQ(dk.size(), round.n_antennas);
  for (std::size_t d = 0; d < a.dwells.size(); ++d) {
    const std::size_t ant = a.dwells[d].antenna;
    const double offset = dk[ant] * a.dwells[d].frequency_hz + db[ant];
    for (std::size_t i = 0; i < a.dwells[d].phases.size(); ++i) {
      EXPECT_NEAR(
          ang_diff(a.dwells[d].phases[i] - offset, round.dwells[d].phases[i]),
          0.0, 1e-9)
          << "dwell " << d << " read " << i;
    }
  }

  // Drift grows with deployment time and is differential across ports.
  std::vector<double> dk_late, db_late;
  injector.drift_offsets(round.n_antennas, 80, dk_late, db_late);
  double max_early = 0.0, max_late = 0.0;
  for (std::size_t ant = 0; ant < round.n_antennas; ++ant) {
    max_early = std::max(max_early, std::abs(dk[ant]));
    max_late = std::max(max_late, std::abs(dk_late[ant]));
  }
  EXPECT_GT(max_early, 0.0);
  EXPECT_GT(max_late, 1.5 * max_early);

  // A drift-free profile exposes all-zero ground truth and never touches
  // the round.
  FaultInjector clean{FaultProfile{}};
  clean.drift_offsets(round.n_antennas, 40, dk, db);
  for (double v : dk) EXPECT_EQ(v, 0.0);
  for (double v : db) EXPECT_EQ(v, 0.0);
  const RoundTrace untouched = clean.apply(round, 40);
  for (std::size_t i = 0; i < untouched.dwells.size(); ++i) {
    EXPECT_EQ(untouched.dwells[i].phases, round.dwells[i].phases);
  }

  // Restricting drift_antennas leaves the other ports clean.
  profile.drift_antennas = {1};
  FaultInjector partial(profile);
  partial.drift_offsets(round.n_antennas, 40, dk, db);
  for (std::size_t ant = 0; ant < round.n_antennas; ++ant) {
    if (ant == 1) {
      EXPECT_NE(dk[ant], 0.0);
    } else {
      EXPECT_EQ(dk[ant], 0.0);
      EXPECT_EQ(db[ant], 0.0);
    }
  }
}

TEST_F(DriftTest, EstimatorValidatesConfig) {
  EXPECT_THROW(DriftEstimator(0), InvalidArgument);
  DriftConfig config;
  config.ema_alpha = 0.0;
  EXPECT_THROW(DriftEstimator(4, config), InvalidArgument);
  config = {};
  config.warmup_rounds = 0;
  EXPECT_THROW(DriftEstimator(4, config), InvalidArgument);
  config = {};
  config.mad_gate = -1.0;
  EXPECT_THROW(DriftEstimator(4, config), InvalidArgument);
  config = {};
  config.max_correct_slope = 0.0;
  EXPECT_THROW(DriftEstimator(4, config), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Closed-loop convergence

TEST_F(DriftTest, EstimatorConvergesToDifferentialLinearDrift) {
  const FaultInjector injector(linear_drift_profile());
  const RfPrism prism = drift_enabled_variant();
  DriftEstimator estimator(4, prism.config().disentangle.drift);

  constexpr std::size_t kRounds = 48;
  run_loop(prism, &injector, &estimator, kRounds);
  EXPECT_GE(estimator.stats().rounds_observed, kRounds / 2);
  EXPECT_TRUE(estimator.stats().warmed_up);

  // The estimator can only see the zero-common-mode part of the injected
  // drift (the solver absorbs the mean into kt/bt), so compare against
  // the mean-removed ground truth at the last trial. The EMA lags a ramp
  // by ~(1/alpha - 1) rounds, hence the fractional tolerance.
  std::vector<double> dk, db;
  injector.drift_offsets(4, kRounds - 1, dk, db);
  double dk_mean = 0.0, db_mean = 0.0;
  for (std::size_t a = 0; a < 4; ++a) {
    dk_mean += dk[a] / 4.0;
    db_mean += db[a] / 4.0;
  }
  double dk_span = 0.0, db_span = 0.0;
  for (std::size_t a = 0; a < 4; ++a) {
    dk_span = std::max(dk_span, std::abs(dk[a] - dk_mean));
    db_span = std::max(db_span, std::abs(db[a] - db_mean));
  }
  ASSERT_GT(dk_span, 2e-9);  // the scenario actually drifts
  ASSERT_GT(db_span, 0.05);
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(estimator.state()[a].slope, dk[a] - dk_mean,
                0.35 * dk_span + 5e-10)
        << "antenna " << a;
    EXPECT_NEAR(estimator.state()[a].intercept, db[a] - db_mean,
                0.35 * db_span + 0.02)
        << "antenna " << a;
  }
}

TEST_F(DriftTest, CorrectionHoldsErrorNearBaselineUnderLinearDrift) {
  const FaultInjector injector(linear_drift_profile());
  const RfPrism plain = bed_->prism();
  const RfPrism corrected = drift_enabled_variant();
  DriftEstimator estimator(4, corrected.config().disentangle.drift);

  constexpr std::size_t kRounds = 48;
  const std::vector<double> baseline =
      run_loop(plain, nullptr, nullptr, kRounds);
  const std::vector<double> uncorrected =
      run_loop(plain, &injector, nullptr, kRounds);
  const std::vector<double> with_drift =
      run_loop(corrected, &injector, &estimator, kRounds);

  // Judge the steady state: the last third, where the drift is largest
  // and the estimator is long past warm-up.
  const std::size_t tail = kRounds / 3;
  const auto tail_median = [&](const std::vector<double>& e) {
    return median_of(std::vector<double>(e.end() - tail, e.end()));
  };
  const double base = tail_median(baseline);
  const double raw = tail_median(uncorrected);
  const double fixed = tail_median(with_drift);

  // ISSUE acceptance: uncorrected blows up (>= 2x), corrected stays
  // within 25% of the drift-free baseline (plus a small absolute floor —
  // the baseline error is a few millimetres).
  EXPECT_GT(raw, 2.0 * base) << "base " << base << " raw " << raw;
  EXPECT_LT(fixed, 1.25 * base + 0.01)
      << "base " << base << " corrected " << fixed;
}

TEST_F(DriftTest, CorrectionTracksRandomWalkDrift) {
  FaultProfile profile;
  profile.drift_round_period_s = 10.0;
  profile.slope_drift_walk = 8e-10;
  profile.intercept_drift_walk = 0.018;
  const FaultInjector injector(profile);
  const RfPrism plain = bed_->prism();
  // A walk's innovation is itself a walk step, so smoothing hard only adds
  // lag: track it with a snappier EMA than the ramp default.
  DriftConfig drift;
  drift.ema_alpha = 0.4;
  const RfPrism corrected = drift_enabled_variant(drift);
  DriftEstimator estimator(4, corrected.config().disentangle.drift);

  constexpr std::size_t kRounds = 96;
  const std::vector<double> baseline =
      run_loop(plain, nullptr, nullptr, kRounds);
  const std::vector<double> uncorrected =
      run_loop(plain, &injector, nullptr, kRounds);
  const std::vector<double> with_drift =
      run_loop(corrected, &injector, &estimator, kRounds);

  const std::size_t tail = kRounds / 2;
  const auto tail_median = [&](const std::vector<double>& e) {
    return median_of(std::vector<double>(e.end() - tail, e.end()));
  };
  // A random walk cannot be tracked as tightly as a ramp (the innovation
  // is itself a walk step), so the bound is looser: corrected error well
  // under the uncorrected error and within a few centimetres of baseline.
  EXPECT_GT(tail_median(uncorrected), 2.0 * tail_median(baseline));
  EXPECT_LT(tail_median(with_drift), 0.6 * tail_median(uncorrected));
  EXPECT_LT(tail_median(with_drift), tail_median(baseline) + 0.05);
}

// ---------------------------------------------------------------------------
// Outlier gate + alarms (synthetic observe()-level rounds)

/// Exact AntennaLines for a pose with per-port drift baked in: slope
/// k_i = C*d_i + kt + dk_i, intercept b_i = orient_i + bt + db_i.
SensingResult synthetic_result(const DeploymentGeometry& geometry,
                               Vec3 position, Vec3 polarization,
                               const std::vector<double>& dk,
                               const std::vector<double>& db) {
  SensingResult result;
  result.valid = true;
  result.grade = SensingGrade::kFull;
  result.position = position;
  result.polarization = polarization;
  for (std::size_t i = 0; i < geometry.n_antennas(); ++i) {
    AntennaLine line;
    line.antenna = i;
    const double d = distance(geometry.antenna_positions[i], position);
    line.fit.slope = kSlopePerMeter * d + 3e-9 + dk[i];
    line.fit.intercept = wrap_to_2pi(
        polarization_phase_toward(geometry.antenna_frames[i],
                                  geometry.antenna_positions[i], position,
                                  polarization) +
        0.8 + db[i]);
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    result.lines.push_back(line);
  }
  return result;
}

TEST_F(DriftTest, MadGateRejectsBurstSpikesWithoutPoisoningTheEma) {
  const DeploymentGeometry& geometry = bed_->prism().config().geometry;
  const Vec3 position{0.8, 1.2, geometry.tag_plane_z};
  const Vec3 polarization{0.6, 0.8, 0.0};
  // Zero-mean offsets, small enough that the honest step on round 0
  // clears the MAD gate (the floor sigma bounds it from below).
  const std::vector<double> dk = {1.2e-9, -0.8e-9, 0.4e-9, -0.8e-9};
  const std::vector<double> db = {0.2, -0.1, 0.05, -0.15};

  DriftConfig config;
  config.enable = true;
  DriftEstimator estimator(4, config);
  constexpr std::size_t kRounds = 40;
  for (std::size_t k = 0; k < kRounds; ++k) {
    std::vector<double> dk_round = dk;
    if (k % 5 == 4) dk_round[2] += 5e-7;  // burst spike on port 2
    estimator.observe(
        synthetic_result(geometry, position, polarization, dk_round, db),
        geometry);
  }

  const DriftStats stats = estimator.stats();
  EXPECT_EQ(stats.rounds_observed, kRounds);
  EXPECT_GE(stats.outliers_rejected, kRounds / 5 - 1);
  // The spiked port's estimate converged to the truth, not the spike: a
  // single leaked spike would leave alpha * 5e-7 = 7.5e-8 behind.
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(estimator.state()[a].slope, dk[a], 4e-10) << "antenna " << a;
    EXPECT_NEAR(estimator.state()[a].intercept, db[a], 5e-3)
        << "antenna " << a;
  }
}

TEST_F(DriftTest, AlarmLatchesOnDriftedPortAndNeverOnCleanCorpus) {
  const DeploymentGeometry& geometry = bed_->prism().config().geometry;
  const Vec3 position{0.8, 1.2, geometry.tag_plane_z};
  const Vec3 polarization{0.6, 0.8, 0.0};
  // Port 1 ramps far beyond alarm_slope = 8e-9 over 60 rounds, then holds
  // (so the EMA converges and the confidence spread decays); the other
  // ports balance the mean, matching the differential view a real solve
  // would expose. A ramp — not a step — because a sudden jump is
  // indistinguishable from a burst spike and gets MAD-gated.
  const std::vector<double> dk = {-5e-9, 1.5e-8, -5e-9, -5e-9};
  const std::vector<double> db(4, 0.0);

  DriftConfig config;
  config.enable = true;
  DriftEstimator estimator(4, config);
  for (std::size_t k = 0; k < 80; ++k) {
    const double ramp = std::min(1.0, static_cast<double>(k) / 60.0);
    std::vector<double> dk_round = dk;
    for (double& v : dk_round) v *= ramp;
    estimator.observe(
        synthetic_result(geometry, position, polarization, dk_round, db),
        geometry);
  }
  const std::vector<ReSurveyAlarm> alarms = estimator.alarms();
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].antenna, 1u);
  EXPECT_NEAR(alarms[0].slope_drift, 1.5e-8, 2e-9);
  EXPECT_GE(alarms[0].updates, config.alarm_min_updates);
  EXPECT_EQ(estimator.stats().alarms_raised, 1u);
  EXPECT_EQ(estimator.stats().alarms_active, 1u);

  // A drift-free corpus (real rounds, honest noise) never alarms.
  const RfPrism prism = drift_enabled_variant();
  DriftEstimator clean(4, prism.config().disentangle.drift);
  run_loop(prism, nullptr, &clean, 40);
  EXPECT_GE(clean.stats().rounds_observed, 30u);
  EXPECT_TRUE(clean.alarms().empty());
  EXPECT_EQ(clean.stats().alarms_raised, 0u);
  // And its corrections stay tiny — it is not "correcting" noise into
  // a bias anywhere near the alarm scale.
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_LT(std::abs(clean.state()[a].slope), 2e-9) << "antenna " << a;
  }
}

// ---------------------------------------------------------------------------
// Pipeline integration

TEST_F(DriftTest, DroppedPortFallsIntoDegradedSubsetSolve) {
  const RfPrism prism = drift_enabled_variant();
  DriftCorrections corrections;
  corrections.active = true;
  corrections.slope.assign(4, 0.0);
  corrections.intercept.assign(4, 0.0);
  corrections.drop.assign(4, false);
  corrections.drop[2] = true;

  const RoundTrace round = bed_->collect(state_, 7);
  const SensingResult result =
      prism.sense(round, bed_->tag_id(), nullptr, &corrections);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.grade, SensingGrade::kDegraded);
  EXPECT_EQ(result.excluded_antennas, std::vector<std::size_t>{2});
  EXPECT_LT(distance(result.position, state_.position), 0.3);
}

TEST_F(DriftTest, DriftOffIsByteIdenticalAcrossThreadsAndKernels) {
  // Mixed corpus (clean + heavily faulted) so identity is proven across
  // full, degraded, and rejected grades.
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(11, 0xD21F7));
  const auto materials = paper_materials();
  const FaultInjector injector(FaultProfile::scaled(0.8, mix_seed(11, 0xFA17)));
  for (std::size_t k = 0; k < 10; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed_->tag_state(p, rng.uniform(0.0, kPi),
                                           materials[k % materials.size()]);
    RoundTrace round = bed_->collect(state, 7000 + k);
    if (k >= 5) round = injector.apply(round, 7000 + k);
    corpus.push_back(std::move(round));
  }

  const RfPrism& plain = bed_->prism();
  const RfPrism enabled = drift_enabled_variant();
  // Cold estimator: corrections exist but are inactive until warm-up.
  const DriftEstimator cold(4, enabled.config().disentangle.drift);
  const DriftCorrections inactive = cold.corrections();
  ASSERT_FALSE(inactive.active);

  // Forged *active* corrections against a config with drift disabled:
  // the config master switch wins.
  DriftCorrections forged;
  forged.active = true;
  forged.slope.assign(4, 1e-8);
  forged.intercept.assign(4, 0.3);
  forged.drop.assign(4, false);

  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult reference = plain.sense(corpus[k], bed_->tag_id());
    expect_identical(enabled.sense(corpus[k], bed_->tag_id()), reference,
                     "null snapshot, round " + std::to_string(k));
    expect_identical(
        enabled.sense(corpus[k], bed_->tag_id(), nullptr, &inactive),
        reference, "inactive snapshot, round " + std::to_string(k));
    expect_identical(plain.sense(corpus[k], bed_->tag_id(), nullptr, &forged),
                     reference,
                     "config off beats active snapshot, round " +
                         std::to_string(k));
  }

  // Engine paths, threads 1/2/8: drift-enabled config with an inactive
  // snapshot stays identical to the sequential drift-free reference.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SensingEngine engine(threads);
    const std::vector<SensingResult> batch = enabled.sense_batch(
        corpus, engine, bed_->tag_id(), nullptr, &inactive);
    ASSERT_EQ(batch.size(), corpus.size());
    for (std::size_t k = 0; k < corpus.size(); ++k) {
      expect_identical(batch[k], plain.sense(corpus[k], bed_->tag_id()),
                       "threads " + std::to_string(threads) + ", round " +
                           std::to_string(k));
    }
  }

  // Ranking kernels: scalar and SIMD factored variants with drift config
  // present (and off at the snapshot level) match the canonical kernel.
  for (const RankKernel kernel :
       {RankKernel::kFactoredScalar, RankKernel::kFactoredSimd}) {
    RfPrismConfig config = bed_->prism().config();
    config.disentangle.rank_kernel = kernel;
    config.disentangle.drift.enable = true;
    const RfPrism variant = bed_->make_pipeline_variant(std::move(config));
    for (std::size_t k = 0; k < corpus.size(); ++k) {
      expect_identical(
          variant.sense(corpus[k], bed_->tag_id(), nullptr, &inactive),
          plain.sense(corpus[k], bed_->tag_id()),
          "kernel " + std::to_string(static_cast<int>(kernel)) + ", round " +
              std::to_string(k));
    }
  }
}

TEST_F(DriftTest, ActiveCorrectionsAreDeterministicAcrossEnginePaths) {
  // Warm an estimator on drifted rounds, then check the drift-ON solve
  // itself is bit-identical between the sequential and batch paths for
  // any thread count (the same one-snapshot-per-batch discipline the
  // server and StreamingSensor use).
  const FaultInjector injector(linear_drift_profile());
  const RfPrism prism = drift_enabled_variant();
  DriftEstimator estimator(4, prism.config().disentangle.drift);
  run_loop(prism, &injector, &estimator, 24);
  const DriftCorrections snapshot = estimator.corrections();
  ASSERT_TRUE(snapshot.active);

  std::vector<RoundTrace> corpus;
  for (std::size_t k = 0; k < 6; ++k) {
    corpus.push_back(injector.apply(bed_->collect(state_, 24 + k), 24 + k));
  }
  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(
        prism.sense(round, bed_->tag_id(), nullptr, &snapshot));
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SensingEngine engine(threads);
    const std::vector<SensingResult> batch = prism.sense_batch(
        corpus, engine, bed_->tag_id(), nullptr, &snapshot);
    for (std::size_t k = 0; k < corpus.size(); ++k) {
      expect_identical(batch[k], reference[k],
                       "threads " + std::to_string(threads) + ", round " +
                           std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Owners: SensingEngine + StreamingSensor

TEST_F(DriftTest, EngineOwnsASharedEstimator) {
  const RfPrism prism = drift_enabled_variant();
  SensingEngine engine(2);
  EXPECT_FALSE(engine.drift_enabled());
  EXPECT_FALSE(engine.drift_corrections().active);

  engine.enable_drift(4, prism.config().disentangle.drift);
  ASSERT_TRUE(engine.drift_enabled());

  const FaultInjector injector(linear_drift_profile());
  for (std::size_t k = 0; k < 24; ++k) {
    const RoundTrace round =
        injector.apply(bed_->collect(state_, k), k);
    const DriftCorrections snapshot = engine.drift_corrections();
    const SensingResult result =
        prism.sense(round, engine, bed_->tag_id(), nullptr, &snapshot);
    engine.observe_drift(result, prism.config().geometry);
  }
  EXPECT_GE(engine.drift_stats().rounds_observed, 12u);
  EXPECT_TRUE(engine.drift_corrections().active);
  bool any_correction = false;
  engine.with_drift([&](DriftEstimator& estimator) {
    for (const AntennaDriftState& st : estimator.state()) {
      if (std::abs(st.slope) > 1e-9) any_correction = true;
    }
  });
  EXPECT_TRUE(any_correction);
}

TEST_F(DriftTest, StreamingSensorRunsTheLoopAutomatically) {
  RfPrismConfig config = bed_->prism().config();
  config.disentangle.drift.enable = true;
  const RfPrism prism = bed_->make_pipeline_variant(std::move(config));
  StreamingSensor sensor(prism);
  ASSERT_NE(sensor.drift(), nullptr);

  const FaultInjector injector(linear_drift_profile());
  std::size_t emitted_total = 0;
  for (std::size_t k = 0; k < 24; ++k) {
    const RoundTrace round = injector.apply(bed_->collect(state_, k), k);
    sensor.push(round_to_reads(round, bed_->tag_id()));
    emitted_total += sensor.poll().size();
  }
  EXPECT_GT(emitted_total, 0u);
  EXPECT_GE(sensor.drift_stats().rounds_observed, 12u);
  EXPECT_TRUE(sensor.drift()->corrections().active);

  sensor.clear();
  EXPECT_EQ(sensor.drift_stats().rounds_observed, 0u);

  // A sensor over a drift-disabled pipeline owns no estimator at all.
  StreamingSensor plain_sensor(bed_->prism());
  EXPECT_EQ(plain_sensor.drift(), nullptr);
  EXPECT_EQ(plain_sensor.drift_stats().rounds_observed, 0u);
}

// ---------------------------------------------------------------------------
// State restore (the calibration_io round-trip is in test_io.cpp)

TEST_F(DriftTest, RestoreAdoptsStateAndValidates) {
  DriftConfig config;
  config.enable = true;
  DriftEstimator estimator(4, config);

  std::vector<AntennaDriftState> state(4);
  state[1].slope = 5e-9;
  state[1].updates = 20;
  state[1].alarmed = true;
  estimator.restore(state, 30);
  EXPECT_EQ(estimator.rounds_observed(), 30u);
  EXPECT_EQ(estimator.state()[1].slope, 5e-9);
  EXPECT_EQ(estimator.alarms().size(), 1u);
  EXPECT_TRUE(estimator.corrections().active);  // past warm-up already

  EXPECT_THROW(estimator.restore(std::vector<AntennaDriftState>(3), 1),
               InvalidArgument);
  std::vector<AntennaDriftState> bad(4);
  bad[0].intercept = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(estimator.restore(bad, 1), InvalidArgument);

  estimator.reset();
  EXPECT_EQ(estimator.rounds_observed(), 0u);
  EXPECT_TRUE(estimator.alarms().empty());
  EXPECT_FALSE(estimator.corrections().active);
}

}  // namespace
}  // namespace rfp
