#include "rfp/solver/levenberg_marquardt.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(Lm, LinearLeastSquaresExact) {
  // r_i = a*x_i + b - y_i with y from a known line: LM solves in one hop.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0, 9.0};
  const ResidualFn fn = [&](std::span<const double> p,
                            std::span<double> r) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * xs[i] + p[1] - ys[i];
    }
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, xs.size(), options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.params[0], 2.0, 1e-6);
  EXPECT_NEAR(result.params[1], 1.0, 1e-6);
  EXPECT_NEAR(result.cost, 0.0, 1e-10);
}

TEST(Lm, Rosenbrock) {
  // Classic banana valley expressed as two residuals.
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  options.max_iterations = 200;
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{-1.2, 1.0}, 2, options);
  EXPECT_NEAR(result.params[0], 1.0, 1e-4);
  EXPECT_NEAR(result.params[1], 1.0, 1e-4);
}

TEST(Lm, ExponentialDecayFit) {
  // Fit y = A * exp(-k t): nonlinear in k, mildly correlated parameters.
  std::vector<double> ts, ys;
  for (int i = 0; i < 20; ++i) {
    const double t = 0.25 * i;
    ts.push_back(t);
    ys.push_back(3.0 * std::exp(-0.8 * t));
  }
  const ResidualFn fn = [&](std::span<const double> p, std::span<double> r) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * ts[i]) - ys[i];
    }
  };
  LmOptions options;
  options.parameter_scales = {1.0, 0.5};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{1.0, 0.2}, ts.size(), options);
  EXPECT_NEAR(result.params[0], 3.0, 1e-4);
  EXPECT_NEAR(result.params[1], 0.8, 1e-4);
}

TEST(Lm, BadlyScaledParameters) {
  // One parameter lives at 1e-8 scale (like rad/Hz slopes), the other at
  // 1. Per-parameter scales must make this routine.
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = (p[0] - 3e-8) * 1e8;
    r[1] = p[1] - 2.0;
  };
  LmOptions options;
  options.parameter_scales = {1e-8, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, 2, options);
  EXPECT_NEAR(result.params[0], 3e-8, 1e-12);
  EXPECT_NEAR(result.params[1], 2.0, 1e-6);
}

TEST(Lm, CostNeverIncreases) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = std::sin(p[0]) + 0.5 * p[0];
    r[1] = p[1] * p[1] - 0.3;
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{2.0, 2.0}, 2, options);
  EXPECT_LE(result.cost, result.initial_cost);
}

TEST(Lm, AlreadyAtMinimumConverges) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = p[0];
    r[1] = p[1];
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, 2, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 0.0, 1e-15);
}

TEST(Lm, IterationCapRespected) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = std::exp(p[0]) - 1e6;  // far minimum
  };
  LmOptions options;
  options.parameter_scales = {1.0};
  options.max_iterations = 3;
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0}, 1, options);
  EXPECT_LE(result.iterations, 3u);
}

TEST(Lm, MissingScalesThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;  // parameter_scales left empty
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0}, 1, options),
      InvalidArgument);
}

TEST(Lm, NonPositiveScaleThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;
  options.parameter_scales = {0.0};
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0}, 1, options),
      InvalidArgument);
}

TEST(Lm, FewerResidualsThanParamsThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0, 2.0}, 1, options),
      InvalidArgument);
}

// ---- Workspace overload ------------------------------------------------
// The workspace-taking overload must produce exactly the iterates of the
// allocating one (bitwise, not approximately), and a workspace must carry
// no state between calls.

/// Run the same problem through both overloads and require bit-equality.
void expect_overloads_identical(const ResidualFn& fn,
                                const std::vector<double>& initial,
                                std::size_t n_residuals,
                                const LmOptions& options,
                                SolveWorkspace& ws) {
  const LmResult plain =
      levenberg_marquardt(fn, initial, n_residuals, options);
  const LmResult pooled =
      levenberg_marquardt(fn, initial, n_residuals, options, ws);
  EXPECT_EQ(pooled.converged, plain.converged);
  EXPECT_EQ(pooled.iterations, plain.iterations);
  EXPECT_EQ(pooled.cost, plain.cost);
  EXPECT_EQ(pooled.initial_cost, plain.initial_cost);
  EXPECT_EQ(pooled.params, plain.params);
}

TEST(LmWorkspace, MatchesAllocatingOverloadOnFixtures) {
  SolveWorkspace ws;

  {  // Linear least squares
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{1.0, 3.0, 5.0, 7.0, 9.0};
    const ResidualFn fn = [&](std::span<const double> p, std::span<double> r) {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        r[i] = p[0] * xs[i] + p[1] - ys[i];
      }
    };
    LmOptions options;
    options.parameter_scales = {1.0, 1.0};
    expect_overloads_identical(fn, {0.0, 0.0}, xs.size(), options, ws);
  }
  {  // Rosenbrock
    const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
      r[0] = 10.0 * (p[1] - p[0] * p[0]);
      r[1] = 1.0 - p[0];
    };
    LmOptions options;
    options.parameter_scales = {1.0, 1.0};
    options.max_iterations = 200;
    expect_overloads_identical(fn, {-1.2, 1.0}, 2, options, ws);
  }
  {  // Badly scaled parameters
    const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
      r[0] = (p[0] - 3e-8) * 1e8;
      r[1] = p[1] - 2.0;
    };
    LmOptions options;
    options.parameter_scales = {1e-8, 1.0};
    expect_overloads_identical(fn, {0.0, 0.0}, 2, options, ws);
  }
}

TEST(LmWorkspace, ReuseAcrossCallsLeaksNoState) {
  // Solve a large problem, then a small different-shaped one, then the
  // small one again on a fresh workspace: the dirty workspace must give
  // exactly the fresh-workspace result (and exactly the allocating one).
  SolveWorkspace dirty;

  std::vector<double> ts, ys;
  for (int i = 0; i < 20; ++i) {
    const double t = 0.25 * i;
    ts.push_back(t);
    ys.push_back(3.0 * std::exp(-0.8 * t));
  }
  const ResidualFn big = [&](std::span<const double> p, std::span<double> r) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * ts[i]) - ys[i];
    }
  };
  LmOptions big_options;
  big_options.parameter_scales = {1.0, 0.5};
  (void)levenberg_marquardt(big, std::vector<double>{1.0, 0.2}, ts.size(),
                            big_options, dirty);

  const ResidualFn small = [](std::span<const double> p, std::span<double> r) {
    r[0] = std::sin(p[0]) + 0.5 * p[0];
    r[1] = p[1] * p[1] - 0.3;
  };
  LmOptions small_options;
  small_options.parameter_scales = {1.0, 1.0};

  SolveWorkspace fresh;
  const LmResult from_dirty = levenberg_marquardt(
      small, std::vector<double>{2.0, 2.0}, 2, small_options, dirty);
  const LmResult from_fresh = levenberg_marquardt(
      small, std::vector<double>{2.0, 2.0}, 2, small_options, fresh);
  const LmResult allocating = levenberg_marquardt(
      small, std::vector<double>{2.0, 2.0}, 2, small_options);

  EXPECT_EQ(from_dirty.params, from_fresh.params);
  EXPECT_EQ(from_dirty.params, allocating.params);
  EXPECT_EQ(from_dirty.cost, allocating.cost);
  EXPECT_EQ(from_dirty.iterations, allocating.iterations);
  EXPECT_EQ(from_dirty.converged, allocating.converged);

  // And the dirty workspace solves the big problem identically again.
  const LmResult big_again = levenberg_marquardt(
      big, std::vector<double>{1.0, 0.2}, ts.size(), big_options, dirty);
  const LmResult big_plain = levenberg_marquardt(
      big, std::vector<double>{1.0, 0.2}, ts.size(), big_options);
  EXPECT_EQ(big_again.params, big_plain.params);
  EXPECT_EQ(big_again.cost, big_plain.cost);
}

TEST(LmWorkspace, ValidationErrorsStillThrow) {
  SolveWorkspace ws;
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;  // parameter_scales left empty
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0}, 1, options, ws),
      InvalidArgument);
}

}  // namespace
}  // namespace rfp
