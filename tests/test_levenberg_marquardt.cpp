#include "rfp/solver/levenberg_marquardt.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(Lm, LinearLeastSquaresExact) {
  // r_i = a*x_i + b - y_i with y from a known line: LM solves in one hop.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0, 9.0};
  const ResidualFn fn = [&](std::span<const double> p,
                            std::span<double> r) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * xs[i] + p[1] - ys[i];
    }
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, xs.size(), options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.params[0], 2.0, 1e-6);
  EXPECT_NEAR(result.params[1], 1.0, 1e-6);
  EXPECT_NEAR(result.cost, 0.0, 1e-10);
}

TEST(Lm, Rosenbrock) {
  // Classic banana valley expressed as two residuals.
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  options.max_iterations = 200;
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{-1.2, 1.0}, 2, options);
  EXPECT_NEAR(result.params[0], 1.0, 1e-4);
  EXPECT_NEAR(result.params[1], 1.0, 1e-4);
}

TEST(Lm, ExponentialDecayFit) {
  // Fit y = A * exp(-k t): nonlinear in k, mildly correlated parameters.
  std::vector<double> ts, ys;
  for (int i = 0; i < 20; ++i) {
    const double t = 0.25 * i;
    ts.push_back(t);
    ys.push_back(3.0 * std::exp(-0.8 * t));
  }
  const ResidualFn fn = [&](std::span<const double> p, std::span<double> r) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * ts[i]) - ys[i];
    }
  };
  LmOptions options;
  options.parameter_scales = {1.0, 0.5};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{1.0, 0.2}, ts.size(), options);
  EXPECT_NEAR(result.params[0], 3.0, 1e-4);
  EXPECT_NEAR(result.params[1], 0.8, 1e-4);
}

TEST(Lm, BadlyScaledParameters) {
  // One parameter lives at 1e-8 scale (like rad/Hz slopes), the other at
  // 1. Per-parameter scales must make this routine.
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = (p[0] - 3e-8) * 1e8;
    r[1] = p[1] - 2.0;
  };
  LmOptions options;
  options.parameter_scales = {1e-8, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, 2, options);
  EXPECT_NEAR(result.params[0], 3e-8, 1e-12);
  EXPECT_NEAR(result.params[1], 2.0, 1e-6);
}

TEST(Lm, CostNeverIncreases) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = std::sin(p[0]) + 0.5 * p[0];
    r[1] = p[1] * p[1] - 0.3;
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{2.0, 2.0}, 2, options);
  EXPECT_LE(result.cost, result.initial_cost);
}

TEST(Lm, AlreadyAtMinimumConverges) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = p[0];
    r[1] = p[1];
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0, 0.0}, 2, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.cost, 0.0, 1e-15);
}

TEST(Lm, IterationCapRespected) {
  const ResidualFn fn = [](std::span<const double> p, std::span<double> r) {
    r[0] = std::exp(p[0]) - 1e6;  // far minimum
  };
  LmOptions options;
  options.parameter_scales = {1.0};
  options.max_iterations = 3;
  const LmResult result =
      levenberg_marquardt(fn, std::vector<double>{0.0}, 1, options);
  EXPECT_LE(result.iterations, 3u);
}

TEST(Lm, MissingScalesThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;  // parameter_scales left empty
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0}, 1, options),
      InvalidArgument);
}

TEST(Lm, NonPositiveScaleThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;
  options.parameter_scales = {0.0};
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0}, 1, options),
      InvalidArgument);
}

TEST(Lm, FewerResidualsThanParamsThrows) {
  const ResidualFn fn = [](std::span<const double>, std::span<double> r) {
    r[0] = 0.0;
  };
  LmOptions options;
  options.parameter_scales = {1.0, 1.0};
  EXPECT_THROW(
      levenberg_marquardt(fn, std::vector<double>{1.0, 2.0}, 1, options),
      InvalidArgument);
}

}  // namespace
}  // namespace rfp
