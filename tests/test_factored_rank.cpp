/// Randomized equivalence of the factored ranking kernels with the
/// canonical cached scan (ctest label: simd). The margin-exact two-pass
/// contract (DESIGN.md "Vectorized kernels") promises the *same winning
/// cell* with *bit-identical* canonical cost for every RankKernel — this
/// suite hammers that over thousands of random rounds: random geometries,
/// degraded antenna subsets, duplicated antennas (multi-line rounds),
/// slope outliers, and NaN-poisoned lines.

#include "rfp/core/disentangle.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/common/workspace.hpp"
#include "rfp/core/grid_cache.hpp"

namespace rfp {
namespace {

DeploymentGeometry random_geometry(Rng& rng, std::size_t n_antennas) {
  DeploymentGeometry g;
  for (std::size_t a = 0; a < n_antennas; ++a) {
    g.antenna_positions.push_back({rng.uniform(-0.5, 2.5),
                                   rng.uniform(-0.5, 2.5),
                                   rng.uniform(0.8, 1.6)});
    g.antenna_frames.push_back(OrthoFrame{});
  }
  g.working_region = Rect{{0.0, 0.0}, {2.0, 2.0}};
  g.tag_plane_z = 0.0;
  return g;
}

struct CorpusKnobs {
  double drop_prob = 0.0;       ///< degraded subsets: antenna has no line
  double duplicate_prob = 0.0;  ///< streaming-style second line per antenna
  double outlier_prob = 0.0;    ///< gross slope outliers
  double nan_prob = 0.0;        ///< NaN slope with fit.n >= 3 (snapshotted)
  double unusable_prob = 0.0;   ///< fit.n < 3: dropped by the snapshot
};

std::vector<AntennaLine> random_lines(Rng& rng,
                                      const DeploymentGeometry& geometry,
                                      const CorpusKnobs& knobs) {
  const Vec3 truth{rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0), 0.0};
  const double kt = rng.gaussian(0.0, 2e-9);
  std::vector<AntennaLine> lines;
  for (std::size_t a = 0; a < geometry.n_antennas(); ++a) {
    if (rng.uniform() < knobs.drop_prob) continue;
    const std::size_t copies = rng.uniform() < knobs.duplicate_prob ? 2 : 1;
    for (std::size_t c = 0; c < copies; ++c) {
      AntennaLine line;
      line.antenna = a;
      const double d = distance(geometry.antenna_positions[a], truth);
      double slope = kSlopePerMeter * d + kt + rng.gaussian(0.0, 5e-10);
      if (rng.uniform() < knobs.outlier_prob) {
        slope += rng.gaussian(0.0, 50.0 * kSlopePerMeter);
      }
      if (rng.uniform() < knobs.nan_prob) {
        slope = std::numeric_limits<double>::quiet_NaN();
      }
      line.fit.slope = slope;
      line.fit.intercept = rng.uniform(0.0, 2.0 * kPi);
      line.fit.n =
          rng.uniform() < knobs.unusable_prob ? 2 : kNumChannels;
      line.n_channels = line.fit.n;
      lines.push_back(line);
    }
  }
  return lines;
}

std::size_t usable_count(const std::vector<AntennaLine>& lines) {
  std::size_t n = 0;
  for (const auto& line : lines) n += line.fit.n >= 3 ? 1 : 0;
  return n;
}

bool any_usable_nan(const std::vector<AntennaLine>& lines) {
  for (const auto& line : lines) {
    if (line.fit.n >= 3 && std::isnan(line.fit.slope)) return true;
  }
  return false;
}

/// One pre-built random deployment with its cached 21x21 table.
struct Deployment {
  DeploymentGeometry geometry;
  std::shared_ptr<const GridTable> table;
};

std::vector<Deployment> make_deployments(GridGeometryCache& cache) {
  std::vector<Deployment> out;
  Rng rng(mix_seed(23, 0xFAC7));
  for (std::size_t n_antennas : {3u, 4u, 5u, 6u, 8u, 11u}) {
    Deployment d;
    d.geometry = random_geometry(rng, n_antennas);
    d.table = cache.acquire(d.geometry, GridSpec{21, 21, 1, 0.0, 0.0});
    out.push_back(std::move(d));
  }
  return out;
}

void expect_same_rank(const StageARank& canonical, const StageARank& factored,
                      std::size_t n_cells, const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(canonical.cell, factored.cell);
  EXPECT_EQ(canonical.rss, factored.rss);  // bitwise: same canonical re-eval
  EXPECT_EQ(canonical.kt, factored.kt);
  EXPECT_EQ(canonical.candidates, n_cells);
  EXPECT_GE(factored.candidates, 1u);
  EXPECT_LE(factored.candidates, n_cells);
}

TEST(FactoredRank, MatchesCanonicalOverRandomRounds) {
  GridGeometryCache cache;
  SolveWorkspace ws;
  const std::vector<Deployment> deployments = make_deployments(cache);
  Rng rng(mix_seed(23, 0xA11));

  CorpusKnobs knobs;
  knobs.drop_prob = 0.25;
  knobs.duplicate_prob = 0.2;
  knobs.outlier_prob = 0.1;
  knobs.unusable_prob = 0.1;

  constexpr std::size_t kRounds = 10000;
  std::size_t ranked = 0;
  std::size_t max_candidates = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const Deployment& dep = deployments[round % deployments.size()];
    const auto lines = random_lines(rng, dep.geometry, knobs);
    if (usable_count(lines) < 3) continue;  // solver precondition
    const StageARank canonical = rank_exhaustive(
        dep.geometry, lines, *dep.table, RankKernel::kCanonical, ws);
    const StageARank scalar = rank_exhaustive(
        dep.geometry, lines, *dep.table, RankKernel::kFactoredScalar, ws);
    const StageARank simd = rank_exhaustive(
        dep.geometry, lines, *dep.table, RankKernel::kFactoredSimd, ws);
    const std::string where = "round " + std::to_string(round);
    expect_same_rank(canonical, scalar, dep.table->n_cells(),
                     where + " scalar");
    expect_same_rank(canonical, simd, dep.table->n_cells(), where + " simd");
    max_candidates = std::max(max_candidates,
                              std::max(scalar.candidates, simd.candidates));
    ++ranked;
    if (HasFailure()) break;  // one detailed round beats 10k cascades
  }
  EXPECT_GE(ranked, kRounds / 2);
  // The margin is conservative but must stay *selective*: re-scoring
  // nearly the whole grid would silently erase the speedup.
  EXPECT_LE(max_candidates, 64u);
}

TEST(FactoredRank, SingleAntennaRoundsStillAgree) {
  // Every usable line on one antenna (count_a = n): the factored closed
  // form collapses to a single-antenna polynomial; must still match.
  GridGeometryCache cache;
  SolveWorkspace ws;
  Rng rng(mix_seed(23, 0x0451));
  const DeploymentGeometry geometry = random_geometry(rng, 4);
  const auto table = cache.acquire(geometry, GridSpec{21, 21, 1, 0.0, 0.0});

  std::vector<AntennaLine> lines;
  for (std::size_t c = 0; c < 4; ++c) {
    AntennaLine line;
    line.antenna = 2;
    line.fit.slope = kSlopePerMeter * (1.0 + 0.1 * static_cast<double>(c));
    line.fit.intercept = 0.3;
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    lines.push_back(line);
  }
  const StageARank canonical =
      rank_exhaustive(geometry, lines, *table, RankKernel::kCanonical, ws);
  const StageARank simd =
      rank_exhaustive(geometry, lines, *table, RankKernel::kFactoredSimd, ws);
  expect_same_rank(canonical, simd, table->n_cells(), "single antenna");
}

TEST(FactoredRank, NaNPoisonedRoundsThrowForEveryKernel) {
  // A NaN slope poisons every cell's cost in the canonical scan; the
  // factored kernels must reach the same no-finite-cell conclusion, not
  // pick an arbitrary winner.
  GridGeometryCache cache;
  SolveWorkspace ws;
  Rng rng(mix_seed(23, 0xBAD));
  const DeploymentGeometry geometry = random_geometry(rng, 5);
  const auto table = cache.acquire(geometry, GridSpec{21, 21, 1, 0.0, 0.0});
  CorpusKnobs knobs;
  knobs.nan_prob = 1.0;  // every line NaN
  const auto lines = random_lines(rng, geometry, knobs);
  ASSERT_GE(usable_count(lines), 3u);
  ASSERT_TRUE(any_usable_nan(lines));
  for (RankKernel kernel :
       {RankKernel::kCanonical, RankKernel::kFactoredScalar,
        RankKernel::kFactoredSimd}) {
    EXPECT_THROW(rank_exhaustive(geometry, lines, *table, kernel, ws),
                 InvalidArgument)
        << "kernel " << static_cast<int>(kernel);
  }
}

TEST(FactoredRank, RejectsTooFewLinesAndMismatchedTable) {
  GridGeometryCache cache;
  SolveWorkspace ws;
  Rng rng(mix_seed(23, 0x7AB));
  const DeploymentGeometry geometry = random_geometry(rng, 4);
  const auto table = cache.acquire(geometry, GridSpec{21, 21, 1, 0.0, 0.0});

  CorpusKnobs clean;
  const auto lines = random_lines(rng, geometry, clean);
  const std::vector<AntennaLine> two(lines.begin(), lines.begin() + 2);
  EXPECT_THROW(rank_exhaustive(geometry, two, *table,
                               RankKernel::kFactoredSimd, ws),
               InvalidArgument);

  const DeploymentGeometry other = random_geometry(rng, 6);
  const auto other_table = cache.acquire(other, GridSpec{21, 21, 1, 0.0, 0.0});
  EXPECT_THROW(rank_exhaustive(geometry, lines, *other_table,
                               RankKernel::kFactoredSimd, ws),
               InvalidArgument);
}

}  // namespace
}  // namespace rfp
