#include "rfp/core/survey.hpp"

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/core/fitting.hpp"
#include "rfp/core/pipeline.hpp"
#include "rfp/core/preprocess.hpp"
#include "rfp/exp/testbed.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;

/// Synthetic observation with exact slopes from candidate antenna truth.
SurveyObservation exact_observation(const std::vector<Vec3>& antennas,
                                    Vec3 reference, double kt) {
  SurveyObservation obs;
  obs.reference_position = reference;
  for (std::size_t i = 0; i < antennas.size(); ++i) {
    AntennaLine line;
    line.antenna = i;
    line.fit.slope = kSlopePerMeter * distance(antennas[i], reference) + kt;
    line.fit.n = kNumChannels;
    obs.lines.push_back(line);
  }
  return obs;
}

std::vector<Vec3> true_antennas() {
  return {{0.5, -0.7, 0.5}, {1.0, -0.7, 1.9}, {1.5, -0.7, 1.1}};
}

DeploymentGeometry perturbed_geometry(const std::vector<Vec3>& truth,
                                      double offset) {
  // Independent x/y survey errors per antenna (a common translation of
  // the whole array is a near-gauge mode the per-round kt absorbs, so it
  // is deliberately not exercised here); z errors are not refined by
  // default (masts are the easy part of a survey; coplanar references
  // cannot observe z anyway).
  const Vec3 offsets[] = {{1.0, -0.7, 0.0}, {-0.9, 1.0, 0.0}, {0.6, 0.9, 0.0}};
  DeploymentGeometry g;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    g.antenna_positions.push_back(truth[i] + offsets[i % 3] * offset);
    g.antenna_frames.push_back(make_frame({0.0, 1.0, -0.5}));
  }
  g.working_region = Rect{{0.0, 0.0}, {2.0, 2.0}};
  return g;
}

std::vector<SurveyObservation> reference_grid(const std::vector<Vec3>& truth) {
  std::vector<SurveyObservation> observations;
  int r = 0;
  for (double x : {0.3, 1.0, 1.7}) {
    for (double y : {0.4, 1.1, 1.8}) {
      observations.push_back(exact_observation(
          truth, Vec3{x, y, 0.0}, 1e-9 * static_cast<double>(r % 3)));
      ++r;
    }
  }
  return observations;
}

TEST(SurveyRefinement, RecoversExactAntennaPositions) {
  const auto truth = true_antennas();
  const DeploymentGeometry geometry = perturbed_geometry(truth, 0.04);
  const auto observations = reference_grid(truth);

  const SurveyRefinementResult result =
      refine_antenna_positions(geometry, observations);
  ASSERT_EQ(result.antenna_positions.size(), 3u);
  EXPECT_LT(result.refined_rms, result.initial_rms * 0.2);
  // Slope-only geometry leaves some weakly-observable directions (the
  // near-gauge combinations kt_r can absorb), so full recovery is not
  // possible even with exact data; require every antenna to improve and
  // the aggregate error to halve.
  double started_total = 0.0, refined_total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double started = distance(geometry.antenna_positions[i], truth[i]);
    const double refined = distance(result.antenna_positions[i], truth[i]);
    EXPECT_LT(refined, 0.8 * started) << "antenna " << i;
    started_total += started;
    refined_total += refined;
  }
  EXPECT_LT(refined_total, 0.55 * started_total);
}

TEST(SurveyRefinement, NoOpWhenAlreadyExact) {
  const auto truth = true_antennas();
  const DeploymentGeometry geometry = perturbed_geometry(truth, 0.0);
  const auto observations = reference_grid(truth);
  const SurveyRefinementResult result =
      refine_antenna_positions(geometry, observations);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(distance(result.antenna_positions[i], truth[i]), 1e-4);
  }
}

TEST(SurveyRefinement, UnderdeterminedThrows) {
  const auto truth = true_antennas();
  const DeploymentGeometry geometry = perturbed_geometry(truth, 0.02);
  // With z refined too: 3 rounds x 3 antennas = 9 observations < 9 + 3
  // unknowns.
  std::vector<SurveyObservation> observations{
      exact_observation(truth, {0.3, 0.4, 0.0}, 0.0),
      exact_observation(truth, {1.0, 1.1, 0.0}, 0.0),
      exact_observation(truth, {1.7, 1.8, 0.0}, 0.0)};
  SurveyConfig config;
  config.refine_z = true;
  EXPECT_THROW(refine_antenna_positions(geometry, observations, config),
               InvalidArgument);
}

TEST(SurveyRefinement, TooFewRoundsThrows) {
  const auto truth = true_antennas();
  const DeploymentGeometry geometry = perturbed_geometry(truth, 0.02);
  std::vector<SurveyObservation> observations{
      exact_observation(truth, {0.3, 0.4, 0.0}, 0.0)};
  EXPECT_THROW(refine_antenna_positions(geometry, observations),
               InvalidArgument);
}

TEST(SurveyRefinement, EndToEndImprovesLocalization) {
  // Full cycle on the simulated testbed: collect rounds at 9 known
  // reference positions, refine the surveyed antenna coordinates, rebuild
  // the pipeline, and verify localization improves.
  TestbedConfig config;
  config.survey_position_sigma = 0.04;  // sloppy tape measure
  const Testbed bed(config);

  std::vector<SurveyObservation> observations;
  std::uint64_t trial = 800;
  for (double x : {0.3, 1.0, 1.7}) {
    for (double y : {0.4, 1.1, 1.8}) {
      SurveyObservation obs;
      obs.reference_position = {x, y, 0.0};
      const RoundTrace round =
          bed.collect(bed.tag_state({x, y}, 0.0, "none"), trial++);
      // Use the pipeline's own fitting + reader calibration path.
      const SensingResult sensed = bed.prism().sense(round, bed.tag_id());
      if (!sensed.valid) continue;
      obs.lines = sensed.lines;
      observations.push_back(std::move(obs));
    }
  }
  ASSERT_GE(observations.size(), 7u);

  const DeploymentGeometry& measured = bed.prism().config().geometry;
  const SurveyRefinementResult refinement =
      refine_antenna_positions(measured, observations);
  EXPECT_LT(refinement.refined_rms, refinement.initial_rms);

  // Refined coordinates should be closer to the true ones.
  double measured_err = 0.0, refined_err = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    measured_err +=
        distance(measured.antenna_positions[i], bed.scene().antennas[i].position);
    refined_err += distance(refinement.antenna_positions[i],
                            bed.scene().antennas[i].position);
  }
  EXPECT_LT(refined_err, measured_err);

  // And the rebuilt pipeline should localize better.
  RfPrismConfig refined_config = bed.prism().config();
  refined_config.geometry.antenna_positions = refinement.antenna_positions;
  RfPrism refined(refined_config);
  refined.import_calibrations(bed.prism().calibrations());

  double before = 0.0, after = 0.0;
  int n = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const Vec2 p{0.4 + 0.1 * rep, 1.6 - 0.09 * rep};
    const TagState state = bed.tag_state(p, 0.5, "plastic");
    const RoundTrace round = bed.collect(state, trial++);
    const SensingResult a = bed.prism().sense(round, bed.tag_id());
    const SensingResult b = refined.sense(round, bed.tag_id());
    if (!a.valid || !b.valid) continue;
    before += distance(a.position, state.position);
    after += distance(b.position, state.position);
    ++n;
  }
  ASSERT_GE(n, 9);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace rfp
