#include "rfp/core/pipeline.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;
using testutil::noiseless_channel;
using testutil::noiseless_reader;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : scene_(make_scene_2d(101)), tag_(make_tag_hardware("t", 101)) {
    RfPrismConfig config;
    config.geometry = exact_geometry(scene_);
    prism_ = std::make_unique<RfPrism>(config);
    reference_ = ReferencePose{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.0)};
  }

  void calibrate() {
    Rng rng(1);
    const TagHardware ref = make_tag_hardware("ref", 101);
    const TagState state{reference_.position, reference_.polarization, "none"};
    prism_->calibrate_reader(collect_round(scene_, noiseless_reader(),
                                           noiseless_channel(), ref, state, 1,
                                           rng),
                             reference_);
    prism_->calibrate_tag("t",
                          collect_round(scene_, noiseless_reader(),
                                        noiseless_channel(), tag_, state, 2,
                                        rng),
                          reference_);
  }

  SensingResult sense(const TagState& state, std::uint64_t trial) {
    Rng rng(trial);
    return prism_->sense(collect_round(scene_, noiseless_reader(),
                                       noiseless_channel(), tag_, state,
                                       trial, rng),
                         "t");
  }

  Scene scene_;
  TagHardware tag_;
  std::unique_ptr<RfPrism> prism_;
  ReferencePose reference_;
};

TEST_F(PipelineTest, NoiselessEndToEndIsNearExact) {
  calibrate();
  const TagState state{Vec3{0.6, 1.3, 0.0}, planar_polarization(1.1), "glass"};
  const SensingResult r = sense(state, 10);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(distance(r.position, state.position), 0.01);
  EXPECT_LT(rad2deg(planar_angle_error(r.alpha, 1.1)), 2.0);
  // kt = material + (antenna-0 port + tag device slope were calibrated out)
  EXPECT_NEAR(r.kt, scene_.materials.get("glass").kt, 3e-10);
  EXPECT_EQ(r.lines.size(), 3u);
}

TEST_F(PipelineTest, CalibrationFreeLocalization) {
  // Localization and orientation need NO per-tag / per-material
  // calibration (the paper's headline claim) — only the one-time
  // antenna-port equalization of §IV-C, which is a deployment constant.
  Rng rng(1);
  const TagHardware ref = make_tag_hardware("ref", 101);
  const TagState ref_state{reference_.position, reference_.polarization,
                           "none"};
  prism_->calibrate_reader(
      collect_round(scene_, noiseless_reader(), noiseless_channel(), ref,
                    ref_state, 1, rng),
      reference_);
  // Never-calibrated tag on an unknown material: sense with no tag id.
  const TagState state{Vec3{1.4, 0.8, 0.0}, planar_polarization(0.4), "wood"};
  Rng rng2(11);
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_, state, 11, rng2);
  const SensingResult r = prism_->sense(round);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(distance(r.position, state.position), 0.08);
  EXPECT_LT(rad2deg(planar_angle_error(r.alpha, 0.4)), 8.0);
}

TEST_F(PipelineTest, MaterialSignatureProduced) {
  calibrate();
  const TagState state{Vec3{1.0, 1.2, 0.0}, planar_polarization(0.0), "metal"};
  const SensingResult r = sense(state, 12);
  ASSERT_TRUE(r.valid);
  ASSERT_FALSE(r.material_signature.empty());
  // Metal's frequency-selective signature should be visible.
  double energy = 0.0;
  for (double s : r.material_signature) energy += s * s;
  EXPECT_GT(energy, 1e-4);
}

TEST_F(PipelineTest, MovingTagRejectedWithReason) {
  calibrate();
  Rng rng(13);
  const TagState start{Vec3{0.8, 1.0, 0.0}, planar_polarization(0.3), "none"};
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_,
      MobilityModel::linear_motion(start, Vec3{0.04, 0.0, 0.0}), 13, rng);
  const SensingResult r = prism_->sense(round, "t");
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.reject_reason, RejectReason::kNone);
}

TEST_F(PipelineTest, ErrorDetectorCanBeDisabled) {
  RfPrismConfig config;
  config.geometry = exact_geometry(scene_);
  config.enable_error_detector = false;
  RfPrism no_detector(config);
  Rng rng(14);
  const TagState start{Vec3{0.8, 1.0, 0.0}, planar_polarization(0.3), "none"};
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_,
      MobilityModel::linear_motion(start, Vec3{0.03, 0.0, 0.0}), 14, rng);
  const SensingResult r = no_detector.sense(round);
  // Without the detector the pipeline produces *something* (likely badly
  // wrong) instead of a rejection — unless the solve itself fails.
  if (!r.valid) {
    EXPECT_EQ(r.reject_reason, RejectReason::kSolverFailure);
  }
}

TEST_F(PipelineTest, UncalibratedTagIdIsHarmless) {
  calibrate();
  const TagState state{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.2), "oil"};
  Rng rng(15);
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_, state, 15, rng);
  const SensingResult r = prism_->sense(round, "never-calibrated");
  EXPECT_TRUE(r.valid);
}

TEST_F(PipelineTest, TagCalibrationRequiresReaderCalibration) {
  Rng rng(16);
  const TagState state{reference_.position, reference_.polarization, "none"};
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_, state, 16, rng);
  EXPECT_THROW(prism_->calibrate_tag("t", round, reference_), Error);
}

TEST_F(PipelineTest, EmptyTagIdInCalibrateThrows) {
  calibrate();
  Rng rng(17);
  const TagState state{reference_.position, reference_.polarization, "none"};
  const RoundTrace round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_, state, 17, rng);
  EXPECT_THROW(prism_->calibrate_tag("", round, reference_), InvalidArgument);
}

TEST_F(PipelineTest, AntennaCountMismatchThrows) {
  calibrate();
  RoundTrace round;
  round.n_antennas = 2;
  EXPECT_THROW(prism_->sense(round), InvalidArgument);
}

TEST_F(PipelineTest, ReaderCalibratedFlag) {
  EXPECT_FALSE(prism_->reader_calibrated());
  calibrate();
  EXPECT_TRUE(prism_->reader_calibrated());
  EXPECT_TRUE(prism_->calibrations().has_tag("t"));
}

TEST(PipelineConfig, TooFewAntennasThrows) {
  RfPrismConfig config;
  config.geometry.antenna_positions = {Vec3{0, 0, 1}, Vec3{1, 0, 1}};
  config.geometry.antenna_frames = {make_frame({0, 1, 0}),
                                    make_frame({0, 1, 0})};
  EXPECT_THROW(RfPrism{config}, InvalidArgument);
}

TEST(PipelineConfig, FramePositionMismatchThrows) {
  RfPrismConfig config;
  config.geometry.antenna_positions = {Vec3{0, 0, 1}, Vec3{1, 0, 1},
                                       Vec3{2, 0, 1}};
  config.geometry.antenna_frames = {make_frame({0, 1, 0})};
  EXPECT_THROW(RfPrism{config}, InvalidArgument);
}

TEST(RejectReasonNames, Stable) {
  EXPECT_STREQ(to_string(RejectReason::kNone), "none");
  EXPECT_STREQ(to_string(RejectReason::kMobility), "mobility");
  EXPECT_STREQ(to_string(RejectReason::kTooFewChannels), "too_few_channels");
  EXPECT_STREQ(to_string(RejectReason::kSolverFailure), "solver_failure");
}

}  // namespace
}  // namespace rfp
