#include "rfp/ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(DecisionTree, AxisAlignedSplitLearned) {
  Dataset d({"lo", "hi"});
  for (int i = 0; i < 20; ++i) {
    d.add({static_cast<double>(i)}, i < 10 ? 0 : 1);
  }
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{15.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{9.4}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{9.6}), 1);
}

TEST(DecisionTree, IntervalClassesNeedTwoSplits) {
  // Class b occupies the middle interval — linear methods struggle, the
  // tree nails it (the paper's DT advantage in kt space).
  Dataset d({"a", "b", "c"});
  for (int i = 0; i < 60; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    d.add({x}, x < 2.0 ? 0 : (x < 4.0 ? 1 : 2));
  }
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{5.0}), 2);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Dataset d({"only"});
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 0);
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 1u);
}

TEST(DecisionTree, MaxDepthRespected) {
  Rng rng(141);
  Dataset d({"a", "b"});
  for (int i = 0; i < 200; ++i) {
    d.add({rng.uniform(), rng.uniform()}, static_cast<int>(rng.uniform_index(2)));
  }
  DecisionTreeConfig config;
  config.max_depth = 3;
  config.min_impurity_decrease = 0.0;
  DecisionTreeClassifier tree(config);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Dataset d({"a", "b"});
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  d.add({2.0}, 1);
  DecisionTreeConfig config;
  config.min_samples_leaf = 2;
  config.min_samples_split = 2;
  DecisionTreeClassifier tree(config);
  tree.fit(d);
  // A split would leave a 1-sample leaf, so the root stays a leaf.
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, IgnoresPureNoiseFeatureWhenSignalExists) {
  Rng rng(142);
  Dataset train({"a", "b"});
  Dataset test({"a", "b"});
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    std::vector<double> x{cls * 2.0 + rng.gaussian(0.0, 0.2),
                          rng.gaussian(0.0, 1.0)};
    (i < 140 ? train : test).add(x, cls);
  }
  DecisionTreeClassifier tree;
  tree.fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.predict(test.features(i)) == test.label(i);
  }
  EXPECT_GE(correct, 56);  // >= ~93%
}

TEST(DecisionTree, TrainingAccuracyHighOnSeparableData) {
  Rng rng(143);
  Dataset d({"a", "b", "c", "d"});
  for (int i = 0; i < 120; ++i) {
    const int cls = i % 4;
    d.add({cls + rng.gaussian(0.0, 0.1), -cls + rng.gaussian(0.0, 0.1)}, cls);
  }
  DecisionTreeClassifier tree;
  tree.fit(d);
  int correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += tree.predict(d.features(i)) == d.label(i);
  }
  EXPECT_GE(correct, 118);
}

TEST(DecisionTree, DeterministicFit) {
  Rng rng(144);
  Dataset d({"a", "b"});
  for (int i = 0; i < 50; ++i) {
    d.add({rng.gaussian(), rng.gaussian()}, static_cast<int>(rng.uniform_index(2)));
  }
  DecisionTreeClassifier a, b;
  a.fit(d);
  b.fit(d);
  EXPECT_EQ(a.node_count(), b.node_count());
  Rng probe(145);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.gaussian(), probe.gaussian()};
    ASSERT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(DecisionTree, RefitResetsState) {
  Dataset d1({"a", "b"});
  for (int i = 0; i < 20; ++i) d1.add({static_cast<double>(i)}, i < 10 ? 0 : 1);
  Dataset d2({"a", "b"});
  for (int i = 0; i < 20; ++i) d2.add({static_cast<double>(i)}, i < 10 ? 1 : 0);
  DecisionTreeClassifier tree;
  tree.fit(d1);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
  tree.fit(d2);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 1);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), Error);
}

TEST(DecisionTree, DimMismatchThrows) {
  Dataset d({"a"});
  d.add({1.0, 2.0}, 0);
  d.add({2.0, 1.0}, 0);
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), InvalidArgument);
}

TEST(DecisionTree, BadConfigThrows) {
  DecisionTreeConfig config;
  config.max_depth = 0;
  EXPECT_THROW(DecisionTreeClassifier{config}, InvalidArgument);
}

TEST(DecisionTree, Name) {
  DecisionTreeClassifier tree;
  EXPECT_EQ(tree.name(), "decision_tree");
}

}  // namespace
}  // namespace rfp
