#include "rfp/ml/knn.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

Dataset gaussian_blobs(std::size_t per_class, double separation, Rng& rng) {
  Dataset d({"c0", "c1", "c2"});
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      d.add({separation * cls + rng.gaussian(0.0, 0.3),
             -separation * cls + rng.gaussian(0.0, 0.3)},
            cls);
    }
  }
  return d;
}

TEST(Knn, NearestNeighborMemorizesTraining) {
  Rng rng(121);
  const Dataset d = gaussian_blobs(20, 5.0, rng);
  KnnClassifier knn(1);
  knn.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(knn.predict(d.features(i)), d.label(i));
  }
}

TEST(Knn, SeparatedBlobsClassifiedPerfectly) {
  Rng rng(122);
  const Dataset train = gaussian_blobs(30, 5.0, rng);
  const Dataset test = gaussian_blobs(30, 5.0, rng);
  KnnClassifier knn(5);
  knn.fit(train);
  for (std::size_t i = 0; i < test.size(); ++i) {
    ASSERT_EQ(knn.predict(test.features(i)), test.label(i));
  }
}

TEST(Knn, MajorityVoteBeatsSingleOutlier) {
  Dataset d({"a", "b"});
  // Three 'a' points around origin, one mislabelled 'b' at the origin.
  d.add({0.0, 0.1}, 0);
  d.add({0.1, 0.0}, 0);
  d.add({-0.1, 0.0}, 0);
  d.add({0.0, 0.0}, 1);
  d.add({5.0, 5.0}, 1);
  KnnClassifier knn(3);
  knn.fit(d);
  EXPECT_EQ(knn.predict(std::vector<double>{0.0, 0.05}), 0);
}

TEST(Knn, ScaleSensitiveWithoutStandardization) {
  // Class information lives in a small-scale feature; a large-scale noise
  // feature drowns it for plain KNN — the failure mode the paper's KNN
  // comparison exhibits.
  Rng rng(123);
  Dataset train({"a", "b"});
  Dataset test({"a", "b"});
  for (int i = 0; i < 60; ++i) {
    const int cls = i % 2;
    const double info = cls == 0 ? 0.0 : 0.5;
    std::vector<double> x{info + rng.gaussian(0.0, 0.05),
                          rng.gaussian(0.0, 100.0)};
    (i < 40 ? train : test).add(x, cls);
  }
  KnnClassifier raw(5, false);
  raw.fit(train);
  KnnClassifier scaled(5, true);
  scaled.fit(train);
  int raw_correct = 0, scaled_correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    raw_correct += raw.predict(test.features(i)) == test.label(i);
    scaled_correct += scaled.predict(test.features(i)) == test.label(i);
  }
  EXPECT_GT(scaled_correct, raw_correct);
}

TEST(Knn, KLargerThanTrainingSetClamped) {
  Dataset d({"a", "b"});
  d.add({0.0}, 0);
  d.add({1.0}, 1);
  KnnClassifier knn(50);
  knn.fit(d);
  EXPECT_NO_THROW(knn.predict(std::vector<double>{0.2}));
}

TEST(Knn, PredictBeforeFitThrows) {
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), Error);
}

TEST(Knn, DimMismatchThrows) {
  Rng rng(124);
  const Dataset d = gaussian_blobs(5, 3.0, rng);
  KnnClassifier knn(1);
  knn.fit(d);
  EXPECT_THROW(knn.predict(std::vector<double>{1.0, 2.0, 3.0}),
               InvalidArgument);
}

TEST(Knn, ZeroKThrows) { EXPECT_THROW(KnnClassifier(0), InvalidArgument); }

TEST(Knn, EmptyFitThrows) {
  KnnClassifier knn(3);
  EXPECT_THROW(knn.fit(Dataset{}), InvalidArgument);
}

TEST(Knn, Name) {
  KnnClassifier knn;
  EXPECT_EQ(knn.name(), "knn");
}

}  // namespace
}  // namespace rfp
