#include "rfp/core/features.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

AntennaLine line_with_residuals(std::size_t antenna,
                                const std::vector<double>& residuals) {
  AntennaLine line;
  line.antenna = antenna;
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    line.frequency_hz.push_back(channel_frequency(i));
    line.residual.push_back(residuals[i]);
    line.channel_inlier.push_back(true);
  }
  line.n_channels = residuals.size();
  line.fit.n = residuals.size();
  return line;
}

TEST(MaterialSignatureFeature, AveragesOverAntennas) {
  std::vector<double> r0(kNumChannels, 0.1);
  std::vector<double> r1(kNumChannels, 0.3);
  const std::vector<AntennaLine> lines{line_with_residuals(0, r0),
                                       line_with_residuals(1, r1)};
  const std::vector<double> sig = material_signature(lines);
  ASSERT_EQ(sig.size(), kNumChannels);
  for (double s : sig) EXPECT_NEAR(s, 0.2, 1e-12);
}

TEST(MaterialSignatureFeature, OutlierChannelsExcluded) {
  std::vector<double> r0(kNumChannels, 0.1);
  AntennaLine line = line_with_residuals(0, r0);
  line.residual[5] = 99.0;
  line.channel_inlier[5] = false;
  const std::vector<AntennaLine> lines{line};
  const std::vector<double> sig = material_signature(lines);
  EXPECT_DOUBLE_EQ(sig[5], 0.0);  // no inlier observation -> 0
  EXPECT_DOUBLE_EQ(sig[6], 0.1);
}

TEST(MaterialSignatureFeature, PartialChannelCoverage) {
  // An antenna that only saw the first 10 channels contributes only
  // there.
  std::vector<double> partial(10, 0.4);
  std::vector<double> full(kNumChannels, 0.2);
  const std::vector<AntennaLine> lines{line_with_residuals(0, partial),
                                       line_with_residuals(1, full)};
  const std::vector<double> sig = material_signature(lines);
  EXPECT_NEAR(sig[5], 0.3, 1e-12);
  EXPECT_NEAR(sig[30], 0.2, 1e-12);
}

TEST(MaterialSignatureFeature, EmptyThrows) {
  EXPECT_THROW(material_signature(std::vector<AntennaLine>{}),
               InvalidArgument);
}

TEST(ApplyTagCalibration, SubtractsDeviceResponse) {
  TagCalibration cal;
  cal.kd = 1.5e-9;
  cal.bd = 0.4;
  cal.residual_curve.assign(kNumChannels, 0.05);

  double kt = 4.0e-9;
  double bt = 1.0;
  std::vector<double> signature(kNumChannels, 0.15);
  apply_tag_calibration(cal, kt, bt, signature);

  EXPECT_NEAR(kt, 2.5e-9, 1e-15);
  EXPECT_NEAR(bt, 0.6, 1e-12);
  for (double s : signature) EXPECT_NEAR(s, 0.10, 1e-12);
}

TEST(ApplyTagCalibration, BtWrapsToSignedRange) {
  TagCalibration cal;
  cal.bd = 2.0;
  double kt = 0.0;
  double bt = 0.5;  // 0.5 - 2.0 = -1.5 (kept signed, no 2*pi jump)
  std::vector<double> signature;
  apply_tag_calibration(cal, kt, bt, signature);
  EXPECT_NEAR(bt, -1.5, 1e-12);
  EXPECT_GE(bt, -kPi);
  EXPECT_LT(bt, kPi);
}

TEST(ApplyTagCalibration, EmptyCurveSkipsSignature) {
  TagCalibration cal;  // no residual curve
  double kt = 1e-9;
  double bt = 0.0;
  std::vector<double> signature(kNumChannels, 0.2);
  apply_tag_calibration(cal, kt, bt, signature);
  for (double s : signature) EXPECT_DOUBLE_EQ(s, 0.2);
}

TEST(ApplyTagCalibration, CurveLengthMismatchThrows) {
  TagCalibration cal;
  cal.residual_curve.assign(10, 0.0);
  double kt = 0.0, bt = 0.0;
  std::vector<double> signature(kNumChannels, 0.0);
  EXPECT_THROW(apply_tag_calibration(cal, kt, bt, signature),
               InvalidArgument);
}

TEST(MaterialFeatures, LayoutAndScaling) {
  const std::vector<double> signature{0.1, -0.2, 0.3};
  const std::vector<double> f = material_features(2.5e-9, 1.2, signature);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_NEAR(f[0], 2.5, 1e-12);  // rad/GHz
  EXPECT_DOUBLE_EQ(f[1], 1.2);
  EXPECT_DOUBLE_EQ(f[2], 0.1);
  EXPECT_DOUBLE_EQ(f[4], 0.3);
}

TEST(MaterialFeatures, PaperDimensionality) {
  // kt + bt + 50 channels = the 52-dimensional vector of paper Eq. 9.
  const std::vector<double> signature(kNumChannels, 0.0);
  EXPECT_EQ(material_features(0.0, 0.0, signature).size(), 52u);
}

}  // namespace
}  // namespace rfp
