#include "rfp/dsp/robust.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

struct NoisyLine {
  std::vector<double> x;
  std::vector<double> y;
};

NoisyLine make_line(std::size_t n, double slope, double intercept,
                    double noise_sigma, Rng& rng) {
  NoisyLine line;
  for (std::size_t i = 0; i < n; ++i) {
    line.x.push_back(static_cast<double>(i));
    line.y.push_back(slope * line.x.back() + intercept +
                     rng.gaussian(0.0, noise_sigma));
  }
  return line;
}

TEST(RansacLine, RecoversLineUnderHeavyOutliers) {
  Rng rng(71);
  NoisyLine line = make_line(50, 0.7, -2.0, 0.02, rng);
  // Corrupt 30% of points grossly.
  for (std::size_t i = 0; i < line.y.size(); i += 3) {
    line.y[i] += rng.uniform(3.0, 10.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  const RobustLineFit fit = ransac_line(line.x, line.y, rng, 256, 0.1);
  EXPECT_NEAR(fit.fit.slope, 0.7, 0.01);
  EXPECT_NEAR(fit.fit.intercept, -2.0, 0.2);
  EXPECT_GE(fit.n_inliers, 30u);
}

TEST(RansacLine, AllInliersOnCleanData) {
  Rng rng(72);
  const NoisyLine line = make_line(40, -0.3, 5.0, 0.01, rng);
  const RobustLineFit fit = ransac_line(line.x, line.y, rng, 128, 0.1);
  EXPECT_EQ(fit.n_inliers, 40u);
}

TEST(RansacLine, InlierMaskMatchesCount) {
  Rng rng(73);
  NoisyLine line = make_line(30, 1.0, 0.0, 0.05, rng);
  line.y[5] += 50.0;
  const RobustLineFit fit = ransac_line(line.x, line.y, rng, 128, 0.3);
  std::size_t count = 0;
  for (bool b : fit.inlier) count += b ? 1 : 0;
  EXPECT_EQ(count, fit.n_inliers);
  EXPECT_FALSE(fit.inlier[5]);
}

TEST(RansacLine, TooFewPointsThrows) {
  Rng rng(74);
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(ransac_line(x, y, rng), InvalidArgument);
}

TEST(RansacLine, DegenerateAbscissaThrows) {
  Rng rng(75);
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{0.0, 1.0, 2.0};
  EXPECT_THROW(ransac_line(x, y, rng, 64, 0.1), NumericalError);
}

TEST(TrimmedLineFit, DropsSingleOutlier) {
  Rng rng(76);
  NoisyLine line = make_line(30, 2.0, 1.0, 0.02, rng);
  line.y[12] += 5.0;
  const RobustLineFit fit = trimmed_line_fit(line.x, line.y);
  EXPECT_FALSE(fit.inlier[12]);
  EXPECT_EQ(fit.n_inliers, 29u);
  EXPECT_NEAR(fit.fit.slope, 2.0, 0.01);
}

TEST(TrimmedLineFit, KeepsEverythingOnCleanData) {
  Rng rng(77);
  const NoisyLine line = make_line(25, 0.5, 0.0, 0.03, rng);
  const RobustLineFit fit = trimmed_line_fit(line.x, line.y);
  EXPECT_EQ(fit.n_inliers, 25u);
}

TEST(TrimmedLineFit, RespectsMaxDropFraction) {
  Rng rng(78);
  NoisyLine line = make_line(20, 1.0, 0.0, 0.01, rng);
  // Corrupt half the points; with max_drop_fraction 0.2 at most 4 drop.
  for (std::size_t i = 0; i < 10; ++i) line.y[i] += 10.0 + static_cast<double>(i);
  const RobustLineFit fit = trimmed_line_fit(line.x, line.y, 3.5, 0.2);
  EXPECT_GE(fit.n_inliers, 16u);
}

TEST(TrimmedLineFit, BadParametersThrow) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 1.0, 2.0};
  EXPECT_THROW(trimmed_line_fit(x, y, -1.0), InvalidArgument);
  EXPECT_THROW(trimmed_line_fit(x, y, 3.0, 1.0), InvalidArgument);
}

TEST(SnapToLine, MapsToNearestCongruentValue) {
  LineFit fit;
  fit.slope = 0.0;
  fit.intercept = 10.0;
  const std::vector<double> x{0.0, 1.0, 2.0};
  // Values off by multiples of the period.
  const std::vector<double> y{10.0 - kTwoPi, 10.3, 10.0 + 2.0 * kTwoPi + 0.1};
  const std::vector<double> snapped = snap_to_line(fit, x, y, kTwoPi);
  EXPECT_NEAR(snapped[0], 10.0, 1e-12);
  EXPECT_NEAR(snapped[1], 10.3, 1e-12);
  EXPECT_NEAR(snapped[2], 10.1, 1e-12);
}

TEST(SnapToLine, ResidualsBoundedByHalfPeriod) {
  Rng rng(79);
  LineFit fit;
  fit.slope = 0.4;
  fit.intercept = -3.0;
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(rng.uniform(-50.0, 50.0));
  }
  const std::vector<double> snapped = snap_to_line(fit, x, y, 2.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_LE(std::abs(snapped[i] - fit.at(x[i])), 1.0 + 1e-9);
  }
}

TEST(SnapToLine, BadPeriodThrows) {
  LineFit fit;
  const std::vector<double> x{0.0};
  const std::vector<double> y{0.0};
  EXPECT_THROW(snap_to_line(fit, x, y, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace rfp
