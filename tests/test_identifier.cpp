#include "rfp/core/identifier.hpp"

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

/// Synthetic sensing result with a class-dependent kt/bt/signature.
SensingResult result_for(int cls, Rng& rng) {
  SensingResult r;
  r.valid = true;
  r.reject_reason = RejectReason::kNone;
  r.kt = cls * 2e-9 + rng.gaussian(0.0, 2e-10);
  r.bt = 0.3 * cls + rng.gaussian(0.0, 0.05);
  r.material_signature.assign(kNumChannels, 0.0);
  for (std::size_t ch = 0; ch < kNumChannels; ++ch) {
    r.material_signature[ch] =
        0.1 * std::sin(0.3 * static_cast<double>(ch) + cls) +
        rng.gaussian(0.0, 0.02);
  }
  return r;
}

TEST(MaterialIdentifier, TrainsAndPredicts) {
  Rng rng(91);
  MaterialIdentifier id(ClassifierKind::kDecisionTree);
  const std::vector<std::string> names{"wood", "glass", "water"};
  for (int rep = 0; rep < 30; ++rep) {
    for (int cls = 0; cls < 3; ++cls) {
      id.add_sample(result_for(cls, rng), names[cls]);
    }
  }
  EXPECT_EQ(id.n_samples(), 90u);
  id.train();
  int correct = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (int cls = 0; cls < 3; ++cls) {
      correct += id.predict(result_for(cls, rng)) == names[cls];
    }
  }
  EXPECT_GE(correct, 55);
}

TEST(MaterialIdentifier, EvaluateBuildsConfusionMatrix) {
  Rng rng(92);
  MaterialIdentifier id;
  for (int rep = 0; rep < 20; ++rep) {
    id.add_sample(result_for(0, rng), "a");
    id.add_sample(result_for(1, rng), "b");
  }
  id.train();
  std::vector<std::pair<SensingResult, std::string>> test;
  for (int rep = 0; rep < 10; ++rep) {
    test.push_back({result_for(0, rng), "a"});
    test.push_back({result_for(1, rng), "b"});
  }
  const ConfusionMatrix cm = id.evaluate(test);
  EXPECT_EQ(cm.total(), 20u);
  EXPECT_GT(cm.accuracy(), 0.8);
}

TEST(MaterialIdentifier, AllThreeBackendsWork) {
  for (ClassifierKind kind : {ClassifierKind::kKnn, ClassifierKind::kSvm,
                              ClassifierKind::kDecisionTree}) {
    Rng rng(93);
    MaterialIdentifier id(kind);
    for (int rep = 0; rep < 25; ++rep) {
      id.add_sample(result_for(0, rng), "a");
      id.add_sample(result_for(2, rng), "c");
    }
    id.train();
    int correct = 0;
    for (int rep = 0; rep < 10; ++rep) {
      correct += id.predict(result_for(0, rng)) == "a";
      correct += id.predict(result_for(2, rng)) == "c";
    }
    EXPECT_GE(correct, 17) << to_string(kind);
  }
}

TEST(MaterialIdentifier, InvalidResultThrows) {
  MaterialIdentifier id;
  SensingResult invalid;
  invalid.valid = false;
  EXPECT_THROW(id.add_sample(invalid, "a"), InvalidArgument);
}

TEST(MaterialIdentifier, MissingSignatureThrows) {
  MaterialIdentifier id;
  SensingResult r;
  r.valid = true;  // but no signature
  EXPECT_THROW(id.add_sample(r, "a"), InvalidArgument);
}

TEST(MaterialIdentifier, EmptyMaterialNameThrows) {
  Rng rng(94);
  MaterialIdentifier id;
  EXPECT_THROW(id.add_sample(result_for(0, rng), ""), InvalidArgument);
}

TEST(MaterialIdentifier, PredictBeforeTrainThrows) {
  Rng rng(95);
  MaterialIdentifier id;
  id.add_sample(result_for(0, rng), "a");
  EXPECT_THROW(id.predict(result_for(0, rng)), Error);
}

TEST(MaterialIdentifier, TrainWithoutSamplesThrows) {
  MaterialIdentifier id;
  EXPECT_THROW(id.train(), InvalidArgument);
}

TEST(MaterialIdentifier, ClassNamesTracked) {
  Rng rng(96);
  MaterialIdentifier id;
  id.add_sample(result_for(0, rng), "x");
  id.add_sample(result_for(1, rng), "y");
  id.add_sample(result_for(0, rng), "x");
  ASSERT_EQ(id.class_names().size(), 2u);
  EXPECT_EQ(id.class_names()[0], "x");
  EXPECT_EQ(id.class_names()[1], "y");
}

TEST(MakeClassifier, ProducesCorrectBackends) {
  EXPECT_EQ(make_classifier(ClassifierKind::kKnn)->name(), "knn");
  EXPECT_EQ(make_classifier(ClassifierKind::kSvm)->name(), "svm");
  EXPECT_EQ(make_classifier(ClassifierKind::kDecisionTree)->name(),
            "decision_tree");
}

TEST(ClassifierKindNames, Stable) {
  EXPECT_STREQ(to_string(ClassifierKind::kKnn), "knn");
  EXPECT_STREQ(to_string(ClassifierKind::kSvm), "svm");
  EXPECT_STREQ(to_string(ClassifierKind::kDecisionTree), "decision_tree");
}

}  // namespace
}  // namespace rfp
