#include "rfp/core/fitting.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::noiseless_channel;
using testutil::noiseless_reader;

/// Build a synthetic AntennaTrace with wrapped phases k*f + b (+ optional
/// per-channel corruption).
AntennaTrace synthetic_trace(double k, double b,
                             const std::vector<std::pair<std::size_t, double>>&
                                 corruption = {}) {
  std::vector<double> raw(kNumChannels);
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    raw[i] = k * channel_frequency(i) + b;
  }
  for (const auto& [idx, delta] : corruption) raw[idx] += delta;

  AntennaTrace trace;
  trace.antenna = 0;
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    trace.trace.frequency_hz.push_back(channel_frequency(i));
    trace.wrapped_phase.push_back(wrap_to_2pi(raw[i]));
    trace.mean_rssi_dbm.push_back(-55.0);
    trace.phase_spread.push_back(0.01);
  }
  trace.trace.phase = unwrap(trace.wrapped_phase);
  return trace;
}

TEST(FitAntennaLine, ExactLineRecoveredIncludingParity) {
  const double k = 9.2e-8;
  for (double b : {0.4, 2.0, 4.0, 5.9}) {
    const AntennaTrace trace = synthetic_trace(k, b);
    const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
    EXPECT_NEAR(line.fit.slope, k, 1e-12) << "b=" << b;
    // Intercept congruent to b modulo 2*pi (parity resolved).
    EXPECT_NEAR(std::abs(ang_diff(line.fit.intercept, b)), 0.0, 1e-9)
        << "b=" << b;
    EXPECT_EQ(line.fit.n, kNumChannels);
  }
}

TEST(FitAntennaLine, SlopeSweepAcrossPhysicalRange) {
  // Distances 0.3 .. 5 m (plus material slopes) must all be resolvable.
  for (double d = 0.3; d <= 5.0; d += 0.47) {
    const double k = kSlopePerMeter * d + 3e-9;
    const AntennaTrace trace = synthetic_trace(k, 1.0);
    const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
    ASSERT_NEAR(line.fit.slope, k, 1e-11) << "d=" << d;
  }
}

TEST(FitAntennaLine, GrossOutliersExcluded) {
  const double k = 8.5e-8;
  const AntennaTrace trace =
      synthetic_trace(k, 1.0, {{5, 1.4}, {20, -1.1}, {33, 0.9}});
  const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
  EXPECT_FALSE(line.channel_inlier[5]);
  EXPECT_FALSE(line.channel_inlier[20]);
  EXPECT_FALSE(line.channel_inlier[33]);
  EXPECT_NEAR(line.fit.slope, k, 1e-11);
  EXPECT_EQ(line.fit.n, kNumChannels - 3);
}

TEST(FitAntennaLine, SurvivesManyCorruptedChannels) {
  // Paper Fig. 12 regime: ~16% of channels corrupted.
  Rng rng(51);
  const double k = 1.1e-7;
  std::vector<std::pair<std::size_t, double>> corruption;
  for (std::size_t i = 0; i < kNumChannels; i += 6) {
    corruption.push_back({i, rng.uniform(0.8, 1.8) *
                                 (rng.bernoulli(0.5) ? 1.0 : -1.0)});
  }
  const AntennaTrace trace = synthetic_trace(k, 2.5, corruption);
  const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
  EXPECT_NEAR(line.fit.slope, k, 5e-11);
  EXPECT_NEAR(std::abs(ang_diff(line.fit.intercept, 2.5)), 0.0, 0.02);
}

TEST(FitAntennaLine, PiStaircaseDoesNotBreakSlope) {
  // A pi-level dwell error midway must not fold the fit (the failure mode
  // of sequential unwrapping).
  const double k = 9.9e-8;
  std::vector<std::pair<std::size_t, double>> corruption;
  corruption.push_back({25, kPi});
  const AntennaTrace trace = synthetic_trace(k, 0.8, corruption);
  const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
  EXPECT_NEAR(line.fit.slope, k, 1e-11);
}

TEST(FitAntennaLine, ResidualsCoverAllChannels) {
  const AntennaTrace trace = synthetic_trace(9e-8, 1.0, {{7, 1.2}});
  const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
  ASSERT_EQ(line.residual.size(), kNumChannels);
  // The corrupted channel's residual is big; clean ones are ~0 (mod pi).
  EXPECT_GT(std::abs(line.residual[7]), 0.5);
  EXPECT_NEAR(line.residual[8], 0.0, 1e-9);
}

TEST(FitAntennaLine, RandomScatterYieldsUnusableLine) {
  // Mobility-grade scatter: no linear consensus should be found, or only
  // a small accidental one.
  Rng rng(52);
  AntennaTrace trace;
  trace.antenna = 0;
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    trace.trace.frequency_hz.push_back(channel_frequency(i));
    trace.wrapped_phase.push_back(rng.uniform(0.0, kTwoPi));
    trace.mean_rssi_dbm.push_back(-55.0);
    trace.phase_spread.push_back(0.01);
  }
  trace.trace.phase = unwrap(trace.wrapped_phase);
  const AntennaLine line = fit_antenna_line(trace, FittingConfig{});
  EXPECT_LT(line.fit.n, 25u);
}

TEST(FitAntennaLine, PlainModeFitsCleanData) {
  FittingConfig config;
  config.multipath_suppression = false;
  const double k = 8.8e-8;
  const AntennaTrace trace = synthetic_trace(k, 1.7);
  const AntennaLine line = fit_antenna_line(trace, config);
  EXPECT_NEAR(line.fit.slope, k, 1e-11);
  EXPECT_NEAR(std::abs(ang_diff(line.fit.intercept, 1.7)), 0.0, 1e-6);
  EXPECT_EQ(line.fit.n, kNumChannels);
}

TEST(FitAntennaLine, PlainModeDegradedByOutliers) {
  FittingConfig robust_config;
  FittingConfig plain_config;
  plain_config.multipath_suppression = false;
  const double k = 8.8e-8;
  const AntennaTrace trace =
      synthetic_trace(k, 1.7, {{10, 1.5}, {11, 1.5}, {30, -1.2}});
  const double robust_err =
      std::abs(fit_antenna_line(trace, robust_config).fit.slope - k);
  const double plain_err =
      std::abs(fit_antenna_line(trace, plain_config).fit.slope - k);
  EXPECT_LT(robust_err, plain_err);
}

TEST(FitAntennaLine, EndToEndAgainstSimulatorTruth) {
  const Scene scene = make_scene_2d(53);
  const TagHardware tag = make_tag_hardware("t", 53);
  const TagState state{Vec3{0.7, 1.3, 0.0}, planar_polarization(0.9), "oil"};
  Rng rng(54);
  const auto lines =
      testutil::fit_round(scene, noiseless_reader(), noiseless_channel(),
                          tag, state, 99, rng);
  ASSERT_EQ(lines.size(), 3u);
  const ChannelModel model(scene, noiseless_channel(), 99);
  std::vector<double> b_err;
  for (const auto& line : lines) {
    const double d =
        distance(scene.antennas[line.antenna].position, state.position);
    const double k_true = kSlopePerMeter * d + tag.kd +
                          scene.materials.get("oil").kt +
                          scene.antennas[line.antenna].kr;
    ASSERT_NEAR(line.fit.slope, k_true, 1e-10);
    // Intercept (mod 2*pi) = orientation + device + reader intercepts,
    // plus a small common-mode shift from the material signature's
    // intercept leakage (absorbed into bt downstream).
    const double b_true =
        model.orientation_phase(line.antenna, state) + tag.bd +
        scene.materials.get("oil").bt + scene.antennas[line.antenna].br;
    b_err.push_back(ang_diff(line.fit.intercept, b_true));
    ASSERT_NEAR(std::abs(b_err.back()), 0.0, 0.15);
  }
  // The common-mode part cancels in cross-antenna differences, which is
  // what the orientation solve actually consumes.
  ASSERT_NEAR(b_err[0], b_err[1], 0.01);
  ASSERT_NEAR(b_err[0], b_err[2], 0.01);
}

TEST(FitAntennaLine, TooFewChannelsThrows) {
  AntennaTrace trace;
  trace.antenna = 0;
  trace.trace.frequency_hz = {903e6, 904e6};
  trace.trace.phase = {0.1, 0.2};
  trace.wrapped_phase = {0.1, 0.2};
  EXPECT_THROW(fit_antenna_line(trace, FittingConfig{}), InvalidArgument);
}

TEST(FitAllAntennas, ShortTraceMarkedUnusable) {
  AntennaTrace good;
  good.antenna = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    good.trace.frequency_hz.push_back(channel_frequency(i));
    good.wrapped_phase.push_back(wrap_to_2pi(9e-8 * channel_frequency(i)));
  }
  good.trace.phase = unwrap(good.wrapped_phase);
  AntennaTrace empty;
  empty.antenna = 1;
  const std::vector<AntennaTrace> traces{good, empty};
  const auto lines = fit_all_antennas(traces, FittingConfig{});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_GE(lines[0].fit.n, 8u);
  EXPECT_EQ(lines[1].fit.n, 0u);
}

TEST(FitAntennaLine, BadSlopeBoundsThrow) {
  FittingConfig config;
  config.slope_min = 1.0;
  config.slope_max = 0.5;
  const AntennaTrace trace = synthetic_trace(9e-8, 1.0);
  EXPECT_THROW(fit_antenna_line(trace, config), InvalidArgument);
}

}  // namespace
}  // namespace rfp
