/// rfp::simd contract tests (ctest label: simd — the sanitizer jobs run
/// these suites with RFP_FORCE_SCALAR both unset and set):
///  - dispatch resolution (cpuid level, RFP_FORCE_SCALAR parsing, the
///    per-call force-scalar hook);
///  - bit-identity of the scalar and AVX2 kernels over unaligned starts,
///    ragged tails, and padded strides — the property the ranking layer's
///    determinism contract stands on;
///  - skip-NaN minimum and collect_below selection semantics at every
///    level.

#include "rfp/simd/kernels.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/aligned.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/simd/dispatch.hpp"

namespace rfp::simd {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Owning random factored-stats fixture: plausible magnitudes for the
/// solver's coefficients (K ~ 1e-7, distances ~ metres), but the kernel
/// contract is pure arithmetic — any finite values must agree bitwise.
struct StatsFixture {
  std::vector<double> q1, p1, p2;
  FactoredStats stats;

  StatsFixture(Rng& rng, std::size_t n_antennas) {
    q1.resize(n_antennas);
    p1.resize(n_antennas);
    p2.resize(n_antennas);
    double c1 = 0.0, c2 = 0.0;
    std::size_t n_lines = 0;
    for (std::size_t a = 0; a < n_antennas; ++a) {
      const double count = 1.0 + static_cast<double>(rng.uniform_index(3));
      const double k = 1e-7 * (0.5 + rng.uniform());
      const double s1 = count * k * (1.0 + 4.0 * rng.uniform());
      q1[a] = -count * k;
      p1[a] = -2.0 * k * s1;
      p2[a] = count * k * k;
      c1 += s1;
      c2 += s1 * s1 / count * (1.0 + 0.1 * rng.uniform());
      n_lines += static_cast<std::size_t>(count);
    }
    stats.n_antennas = n_antennas;
    stats.c1 = c1;
    stats.c2 = c2;
    stats.inv_n = 1.0 / static_cast<double>(n_lines);
    stats.q1 = q1.data();
    stats.p1 = p1.data();
    stats.p2 = p2.data();
  }
};

/// Antenna-major distance planes with the GridTable's padded layout:
/// stride rounds n_cells up to a multiple of 8, padding holds finite
/// values.
AlignedVector<double> random_planes(Rng& rng, std::size_t n_antennas,
                                    std::size_t stride) {
  AlignedVector<double> dist(n_antennas * stride);
  for (double& d : dist) d = 0.3 + 2.5 * rng.uniform();
  return dist;
}

std::size_t padded_stride(std::size_t n_cells) { return (n_cells + 7) / 8 * 8; }

bool avx2_runnable() { return compiled_avx2() && detected() >= Level::kAvx2; }
bool avx512_runnable() {
  return compiled_avx512() && detected() == Level::kAvx512;
}

/// Every level this host/build can actually execute.
std::vector<Level> runnable_levels() {
  std::vector<Level> levels{Level::kScalar};
  if (avx2_runnable()) levels.push_back(Level::kAvx2);
  if (avx512_runnable()) levels.push_back(Level::kAvx512);
  return levels;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

TEST(SimdDispatch, NamesAreStable) {
  EXPECT_STREQ(name(Level::kScalar), "scalar");
  EXPECT_STREQ(name(Level::kAvx2), "avx2");
  EXPECT_STREQ(name(Level::kAvx512), "avx512");
}

TEST(SimdDispatch, DetectedNeverExceedsCompiledSupport) {
  if (!compiled_avx2()) {
    EXPECT_EQ(detected(), Level::kScalar)
        << "build has no AVX2 translation unit, nothing else may be detected";
  }
  if (!compiled_avx512()) {
    EXPECT_NE(detected(), Level::kAvx512)
        << "build has no AVX-512 translation unit";
  }
  // active() can only ever narrow detected(), never widen it.
  EXPECT_TRUE(active() <= detected());
}

TEST(SimdDispatch, LevelFromEnvParsesOverride) {
  // Unset / explicit "no" spellings pass the detected level through.
  for (const char* off : {static_cast<const char*>(nullptr), "", "0", "false",
                          "off"}) {
    EXPECT_EQ(level_from_env(Level::kAvx2, off), Level::kAvx2)
        << "value: " << (off ? off : "<unset>");
    EXPECT_EQ(level_from_env(Level::kScalar, off), Level::kScalar);
  }
  // Anything else demands the scalar path.
  for (const char* on : {"1", "true", "yes", "scalar", "anything"}) {
    EXPECT_EQ(level_from_env(Level::kAvx2, on), Level::kScalar)
        << "value: " << on;
  }
  // Forcing scalar on a scalar-only machine is a no-op, not an error.
  EXPECT_EQ(level_from_env(Level::kScalar, "1"), Level::kScalar);
}

TEST(SimdDispatch, ActiveHonorsForceScalarEnvironment) {
  // active() is pinned at first use; it must equal re-resolving the
  // current environment (the variables cannot have changed under a test
  // runner). With RFP_FORCE_SCALAR=1 in the environment — the CI
  // forced-scalar lanes — this asserts the scalar path actually engaged,
  // and with RFP_SIMD_LEVEL pinned the named level (clamped) engaged.
  const char* force = std::getenv("RFP_FORCE_SCALAR");
  const char* pin = std::getenv("RFP_SIMD_LEVEL");
  EXPECT_EQ(active(), resolve_level(detected(), force, pin));
  if (force != nullptr && std::string(force) == "1") {
    EXPECT_EQ(active(), Level::kScalar);
  }
}

TEST(SimdDispatch, ResolveLevelParsesSimdLevelOverride) {
  // Exact level names pin the level...
  EXPECT_EQ(resolve_level(Level::kAvx512, nullptr, "scalar"), Level::kScalar);
  EXPECT_EQ(resolve_level(Level::kAvx512, nullptr, "avx2"), Level::kAvx2);
  EXPECT_EQ(resolve_level(Level::kAvx512, nullptr, "avx512"), Level::kAvx512);
  // ...but never above what the machine can run (clamped, not an error).
  EXPECT_EQ(resolve_level(Level::kAvx2, nullptr, "avx512"), Level::kAvx2);
  EXPECT_EQ(resolve_level(Level::kScalar, nullptr, "avx512"), Level::kScalar);
  EXPECT_EQ(resolve_level(Level::kScalar, nullptr, "avx2"), Level::kScalar);
  // Unset / empty / unrecognized fall through to the detected level.
  EXPECT_EQ(resolve_level(Level::kAvx512, nullptr, nullptr), Level::kAvx512);
  EXPECT_EQ(resolve_level(Level::kAvx512, nullptr, ""), Level::kAvx512);
  EXPECT_EQ(resolve_level(Level::kAvx2, nullptr, "AVX2"), Level::kAvx2);
  EXPECT_EQ(resolve_level(Level::kAvx2, nullptr, "sse"), Level::kAvx2);
  // RFP_FORCE_SCALAR beats RFP_SIMD_LEVEL outright.
  EXPECT_EQ(resolve_level(Level::kAvx512, "1", "avx512"), Level::kScalar);
  EXPECT_EQ(resolve_level(Level::kAvx512, "yes", "avx2"), Level::kScalar);
  // ...unless it spells one of the documented "off" values.
  EXPECT_EQ(resolve_level(Level::kAvx512, "0", "avx2"), Level::kAvx2);
  EXPECT_EQ(resolve_level(Level::kAvx512, "false", nullptr), Level::kAvx512);
  EXPECT_EQ(resolve_level(Level::kAvx512, "off", nullptr), Level::kAvx512);
}

TEST(SimdDispatch, ChooseForcesScalarPerCall) {
  EXPECT_EQ(choose(true), Level::kScalar);
  EXPECT_EQ(choose(false), active());
}

// ---------------------------------------------------------------------------
// Kernel bit-identity across dispatch levels
// ---------------------------------------------------------------------------

TEST(SimdKernels, ScalarRunMatchesSingleCell) {
  Rng rng(4101);
  for (std::size_t n_antennas : {1u, 3u, 4u, 9u}) {
    const std::size_t n_cells = 37;
    const std::size_t stride = padded_stride(n_cells);
    const StatsFixture fx(rng, n_antennas);
    const AlignedVector<double> dist = random_planes(rng, n_antennas, stride);
    std::vector<double> out(n_cells);
    const double min = factored_rss_run(Level::kScalar, fx.stats, dist.data(),
                                        stride, 0, n_cells, out.data());
    double expect_min = kInf;
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
      const double rss = factored_rss_cell(fx.stats, dist.data(), stride, cell);
      EXPECT_EQ(out[cell], rss) << "cell " << cell;
      expect_min = rss < expect_min ? rss : expect_min;
    }
    EXPECT_EQ(min, expect_min);
  }
}

TEST(SimdKernels, Avx2MatchesScalarBitExact) {
  if (!avx2_runnable()) GTEST_SKIP() << "AVX2 unavailable on this host/build";
  Rng rng(4102);
  // Every loop regime of the AVX2 kernel: below one 4-lane vector, the
  // 4/8/16-wide bodies, and ragged tails of each — plus unaligned begins
  // (window scans start mid-row) and the padded full-stride run.
  for (std::size_t n_antennas : {1u, 2u, 4u, 7u, 12u}) {
    for (std::size_t n_cells :
         {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 41u,
          64u, 100u}) {
      const std::size_t stride = padded_stride(n_cells + 6);
      const StatsFixture fx(rng, n_antennas);
      const AlignedVector<double> dist =
          random_planes(rng, n_antennas, stride);
      for (std::size_t begin : {0u, 1u, 2u, 3u, 5u}) {
        if (begin + n_cells > stride) continue;
        std::vector<double> scalar_out(n_cells, -1.0);
        std::vector<double> avx2_out(n_cells, -2.0);
        const double scalar_min = factored_rss_run(
            Level::kScalar, fx.stats, dist.data(), stride, begin,
            begin + n_cells, scalar_out.data());
        const double avx2_min = factored_rss_run(
            Level::kAvx2, fx.stats, dist.data(), stride, begin,
            begin + n_cells, avx2_out.data());
        ASSERT_EQ(std::memcmp(scalar_out.data(), avx2_out.data(),
                              n_cells * sizeof(double)),
                  0)
            << "antennas=" << n_antennas << " cells=" << n_cells
            << " begin=" << begin;
        ASSERT_EQ(scalar_min, avx2_min);
      }
    }
  }
}

TEST(SimdKernels, Avx512MatchesScalarBitExact) {
  if (!avx512_runnable()) {
    GTEST_SKIP() << "AVX-512 unavailable on this host/build";
  }
  Rng rng(4112);
  // Every loop regime of the AVX-512 kernel: below one 8-lane vector, the
  // 8/32-wide bodies, and ragged tails of each — plus unaligned begins.
  for (std::size_t n_antennas : {1u, 2u, 4u, 7u, 12u}) {
    for (std::size_t n_cells :
         {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u,
          100u}) {
      const std::size_t stride = padded_stride(n_cells + 6);
      const StatsFixture fx(rng, n_antennas);
      const AlignedVector<double> dist =
          random_planes(rng, n_antennas, stride);
      for (std::size_t begin : {0u, 1u, 3u, 5u}) {
        if (begin + n_cells > stride) continue;
        std::vector<double> scalar_out(n_cells, -1.0);
        std::vector<double> wide_out(n_cells, -2.0);
        const double scalar_min = factored_rss_run(
            Level::kScalar, fx.stats, dist.data(), stride, begin,
            begin + n_cells, scalar_out.data());
        const double wide_min = factored_rss_run(
            Level::kAvx512, fx.stats, dist.data(), stride, begin,
            begin + n_cells, wide_out.data());
        ASSERT_EQ(std::memcmp(scalar_out.data(), wide_out.data(),
                              n_cells * sizeof(double)),
                  0)
            << "antennas=" << n_antennas << " cells=" << n_cells
            << " begin=" << begin;
        ASSERT_EQ(scalar_min, wide_min);
      }
    }
  }
}

TEST(SimdKernels, BatchedRunMatchesPerTagAtEveryLevel) {
  Rng rng(4113);
  // The batched entry must write the exact doubles of B independent
  // single-tag runs over the shared table — including around the pair
  // (AVX2), quad and oct (AVX-512) tile boundaries and their remainders.
  const std::size_t n_antennas = 6;
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    for (std::size_t batch :
         {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 11u, 12u, 16u}) {
      for (std::size_t n_cells : {1u, 7u, 16u, 33u, 100u}) {
        const std::size_t stride = padded_stride(n_cells + 6);
        const AlignedVector<double> dist =
            random_planes(rng, n_antennas, stride);
        std::vector<StatsFixture> tags;
        tags.reserve(batch);
        std::vector<FactoredStats> stats;
        for (std::size_t b = 0; b < batch; ++b) {
          tags.emplace_back(rng, n_antennas);
          stats.push_back(tags.back().stats);
        }
        for (std::size_t begin : {0u, 3u}) {
          if (begin + n_cells > stride) continue;
          std::vector<std::vector<double>> batch_out(
              batch, std::vector<double>(n_cells, -2.0));
          std::vector<double*> outs;
          for (auto& o : batch_out) outs.push_back(o.data());
          std::vector<double> mins(batch, -3.0);
          factored_rss_run_batch(level, stats.data(), batch, dist.data(),
                                 stride, begin, begin + n_cells, outs.data(),
                                 mins.data());
          for (std::size_t b = 0; b < batch; ++b) {
            std::vector<double> single(n_cells, -1.0);
            const double single_min = factored_rss_run(
                level, stats[b], dist.data(), stride, begin, begin + n_cells,
                single.data());
            ASSERT_EQ(std::memcmp(single.data(), batch_out[b].data(),
                                  n_cells * sizeof(double)),
                      0)
                << "tag=" << b << " batch=" << batch << " cells=" << n_cells
                << " begin=" << begin;
            ASSERT_EQ(single_min, mins[b]) << "tag=" << b;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, BatchedRunFallsBackOnMixedAntennaCounts) {
  Rng rng(4114);
  // Tags with different antenna counts cannot share a pair/quad tile;
  // the batch must quietly fall back to single-tag runs for them.
  const std::size_t n_cells = 41, stride = padded_stride(n_cells);
  const std::size_t counts[] = {6, 3, 6, 6, 2, 6, 6, 6};
  const AlignedVector<double> dist = random_planes(rng, 6, stride);
  std::vector<StatsFixture> tags;
  tags.reserve(std::size(counts));
  std::vector<FactoredStats> stats;
  for (std::size_t c : counts) {
    tags.emplace_back(rng, c);
    stats.push_back(tags.back().stats);
  }
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::vector<std::vector<double>> batch_out(
        stats.size(), std::vector<double>(n_cells, -2.0));
    std::vector<double*> outs;
    for (auto& o : batch_out) outs.push_back(o.data());
    std::vector<double> mins(stats.size(), -3.0);
    factored_rss_run_batch(level, stats.data(), stats.size(), dist.data(),
                           stride, 0, n_cells, outs.data(), mins.data());
    for (std::size_t b = 0; b < stats.size(); ++b) {
      std::vector<double> single(n_cells, -1.0);
      const double single_min = factored_rss_run(
          level, stats[b], dist.data(), stride, 0, n_cells, single.data());
      ASSERT_EQ(std::memcmp(single.data(), batch_out[b].data(),
                            n_cells * sizeof(double)),
                0)
          << "tag=" << b;
      ASSERT_EQ(single_min, mins[b]) << "tag=" << b;
    }
  }
}

TEST(SimdKernels, BatchedRunOctTileThenMixedGroupFallsBack) {
  Rng rng(4117);
  // First eight tags share an antenna count (the AVX-512 oct tile takes
  // them); the next group mixes counts, so the dispatcher must degrade
  // through the narrower tiles/single runs without disturbing the first
  // group's outputs.
  const std::size_t n_cells = 53, stride = padded_stride(n_cells);
  const std::size_t counts[] = {6, 6, 6, 6, 6, 6, 6, 6, 6, 3, 6, 6, 2, 6};
  const AlignedVector<double> dist = random_planes(rng, 6, stride);
  std::vector<StatsFixture> tags;
  tags.reserve(std::size(counts));
  std::vector<FactoredStats> stats;
  for (std::size_t c : counts) {
    tags.emplace_back(rng, c);
    stats.push_back(tags.back().stats);
  }
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::vector<std::vector<double>> batch_out(
        stats.size(), std::vector<double>(n_cells, -2.0));
    std::vector<double*> outs;
    for (auto& o : batch_out) outs.push_back(o.data());
    std::vector<double> mins(stats.size(), -3.0);
    factored_rss_run_batch(level, stats.data(), stats.size(), dist.data(),
                           stride, 0, n_cells, outs.data(), mins.data());
    for (std::size_t b = 0; b < stats.size(); ++b) {
      std::vector<double> single(n_cells, -1.0);
      const double single_min = factored_rss_run(
          level, stats[b], dist.data(), stride, 0, n_cells, single.data());
      ASSERT_EQ(std::memcmp(single.data(), batch_out[b].data(),
                            n_cells * sizeof(double)),
                0)
          << "tag=" << b;
      ASSERT_EQ(single_min, mins[b]) << "tag=" << b;
    }
  }
}

TEST(SimdKernels, BatchedRunSkipsNaNPerTag) {
  Rng rng(4115);
  // One tag's NaN cells must not leak into its tile partners' minima.
  const std::size_t n_antennas = 4, n_cells = 29;
  const std::size_t stride = padded_stride(n_cells);
  AlignedVector<double> dist = random_planes(rng, n_antennas, stride);
  for (std::size_t cell : {0u, 8u, 28u}) dist[cell] = kNan;
  std::vector<StatsFixture> tags;
  std::vector<FactoredStats> stats;
  for (std::size_t b = 0; b < 5; ++b) {
    tags.emplace_back(rng, n_antennas);
    stats.push_back(tags.back().stats);
  }
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::vector<std::vector<double>> batch_out(
        stats.size(), std::vector<double>(n_cells, -2.0));
    std::vector<double*> outs;
    for (auto& o : batch_out) outs.push_back(o.data());
    std::vector<double> mins(stats.size(), -3.0);
    factored_rss_run_batch(level, stats.data(), stats.size(), dist.data(),
                           stride, 0, n_cells, outs.data(), mins.data());
    for (std::size_t b = 0; b < stats.size(); ++b) {
      EXPECT_TRUE(std::isfinite(mins[b])) << "tag=" << b;
      for (std::size_t cell : {0u, 8u, 28u}) {
        EXPECT_TRUE(std::isnan(batch_out[b][cell]))
            << "tag=" << b << " cell=" << cell;
      }
      std::vector<double> single(n_cells);
      const double single_min = factored_rss_run(
          level, stats[b], dist.data(), stride, 0, n_cells, single.data());
      ASSERT_EQ(single_min, mins[b]) << "tag=" << b;
    }
  }
}

TEST(SimdKernels, DispatchedRunIsPureRouting) {
  // The public entry point at an explicit level must equal the level's
  // kernel — no extra arithmetic in the dispatcher.
  Rng rng(4103);
  const std::size_t n_cells = 53, stride = padded_stride(n_cells);
  const StatsFixture fx(rng, 5);
  const AlignedVector<double> dist = random_planes(rng, 5, stride);
  std::vector<double> direct(n_cells), routed(n_cells);
  const double dm = detail::factored_rss_run_scalar(
      fx.stats, dist.data(), stride, 0, n_cells, direct.data());
  const double rm = factored_rss_run(Level::kScalar, fx.stats, dist.data(),
                                     stride, 0, n_cells, routed.data());
  EXPECT_EQ(dm, rm);
  EXPECT_EQ(std::memcmp(direct.data(), routed.data(),
                        n_cells * sizeof(double)),
            0);
}

TEST(SimdKernels, MinSkipsNaNCellsAtEveryLevel) {
  Rng rng(4104);
  const std::size_t n_cells = 29, stride = padded_stride(n_cells);
  const std::size_t n_antennas = 4;
  const StatsFixture fx(rng, n_antennas);
  AlignedVector<double> dist = random_planes(rng, n_antennas, stride);
  // Poison a scattering of cells (one NaN distance makes the cell's cost
  // NaN) — including cell 0 and the last cell, the reduction edges.
  for (std::size_t cell : {0u, 7u, 8u, 15u, 28u}) dist[cell] = kNan;

  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::vector<double> out(n_cells);
    const double min = factored_rss_run(level, fx.stats, dist.data(), stride,
                                        0, n_cells, out.data());
    double expect_min = kInf;
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
      if (std::isnan(out[cell])) continue;
      expect_min = out[cell] < expect_min ? out[cell] : expect_min;
    }
    EXPECT_TRUE(std::isfinite(min));
    EXPECT_EQ(min, expect_min);
    for (std::size_t cell : {0u, 7u, 8u, 15u, 28u}) {
      EXPECT_TRUE(std::isnan(out[cell])) << "cell " << cell;
    }
  }
}

TEST(SimdKernels, AllNaNRunReturnsInfinity) {
  Rng rng(4105);
  const std::size_t n_cells = 21, stride = padded_stride(n_cells);
  const StatsFixture fx(rng, 3);
  AlignedVector<double> dist(3 * stride, kNan);
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::vector<double> out(n_cells);
    EXPECT_EQ(factored_rss_run(level, fx.stats, dist.data(), stride, 0,
                               n_cells, out.data()),
              kInf);
  }
}

// ---------------------------------------------------------------------------
// collect_below
// ---------------------------------------------------------------------------

TEST(SimdCollect, SelectsAscendingInclusiveSkippingNaN) {
  const std::vector<double> values{3.0, 1.0, kNan, 2.0,  2.0, 5.0,
                                   kNan, -1.0, 2.0, 2.0000001};
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::uint32_t idx[16];
    const std::size_t count =
        collect_below(level, values.data(), values.size(), 2.0, idx, 16);
    ASSERT_EQ(count, 5u);  // 1.0, 2.0, 2.0, -1.0, 2.0 — limit is inclusive
    const std::uint32_t expect[] = {1, 3, 4, 7, 8};
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(idx[i], expect[i]);
  }
}

TEST(SimdCollect, OverflowReportsTotalAndFillsPrefix) {
  std::vector<double> values(40, 0.5);
  values[11] = 9.0;  // the only non-match
  for (Level level : runnable_levels()) {
    SCOPED_TRACE(name(level));
    std::uint32_t idx[4] = {999, 999, 999, 999};
    const std::size_t count =
        collect_below(level, values.data(), values.size(), 1.0, idx, 4);
    EXPECT_EQ(count, 39u);  // total matches, beyond capacity
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
    EXPECT_EQ(idx[2], 2u);
    EXPECT_EQ(idx[3], 3u);  // only the first `capacity` stored
  }
}

TEST(SimdCollect, LevelsAgreeOnRandomInputs) {
  if (!avx2_runnable()) GTEST_SKIP() << "AVX2 unavailable on this host/build";
  Rng rng(4106);
  for (std::size_t n : {1u, 3u, 4u, 5u, 17u, 64u, 101u}) {
    std::vector<double> values(n);
    for (double& v : values) {
      v = rng.uniform() < 0.1 ? kNan : rng.uniform();
    }
    const double limit = 0.3;
    std::vector<std::uint32_t> a(n + 1, 0), b(n + 1, 0);
    const std::size_t ca =
        collect_below(Level::kScalar, values.data(), n, limit, a.data(), n);
    for (Level level : runnable_levels()) {
      if (level == Level::kScalar) continue;
      SCOPED_TRACE(name(level));
      const std::size_t cb =
          collect_below(level, values.data(), n, limit, b.data(), n);
      ASSERT_EQ(ca, cb) << "n=" << n;
      for (std::size_t i = 0; i < ca; ++i) ASSERT_EQ(a[i], b[i]);
    }
  }
}

}  // namespace
}  // namespace rfp::simd
