#include "rfp/common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rfp {
namespace {

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, WorkerIndexIsNposOutsidePool) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_index(), ThreadPool::npos);
}

TEST(ThreadPool, WorkerIndexStableAndInRangeInsidePool) {
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      const std::size_t index = pool.worker_index();
      if (index >= pool.size()) ++bad;
      ++done;
    });
  }
  while (done.load() < 64) std::this_thread::yield();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, DestructorCompletesQueuedTasks) {
  // Queue far more tasks than workers and destroy immediately: every task
  // must still run exactly once (the TSan shutdown scenario).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1013;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 7, [&](std::size_t begin, std::size_t end,
                               std::size_t /*slot*/) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSlotsWithinScratchRange) {
  // Slots index per-thread scratch: always in [0, size()] (size() is the
  // calling thread's slot on the inline path).
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  pool.parallel_for(100, 1, [&](std::size_t, std::size_t, std::size_t slot) {
    if (slot > pool.size()) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, SingleChunkRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::size_t slot_seen = ThreadPool::npos;
  pool.parallel_for(5, 8, [&](std::size_t begin, std::size_t end,
                              std::size_t slot) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    slot_seen = slot;
  });
  // One chunk => executed by the caller, whose scratch slot is size().
  EXPECT_EQ(slot_seen, pool.size());
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, 1, [&](std::size_t begin, std::size_t end,
                                   std::size_t /*slot*/) {
    for (std::size_t i = begin; i < end; ++i) {
      // Re-entrant use of the same pool from a worker: must run inline
      // rather than waiting on the (busy) queue.
      pool.parallel_for(kInner, 3, [&, i](std::size_t b, std::size_t e,
                                          std::size_t) {
        for (std::size_t j = b; j < e; ++j) ++hits[i * kInner + j];
      });
    }
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "cell " << k;
  }
}

TEST(ThreadPool, FirstExceptionInChunkOrderWins) {
  ThreadPool pool(4);
  // Chunks 3 and 7 throw; chunk order (not completion order) must pick 3.
  // Delay the earlier chunk so completion order favours the later one.
  try {
    pool.parallel_for(10, 1, [&](std::size_t begin, std::size_t,
                                 std::size_t) {
      if (begin == 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("chunk 3");
      }
      if (begin == 7) throw std::runtime_error("chunk 7");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "chunk 3");
  }
}

TEST(ThreadPool, AllChunksFinishEvenWhenOneThrows) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(32, 1, [&](std::size_t begin, std::size_t,
                                   std::size_t) {
        ++ran;
        if (begin == 0) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  // The determinism backbone: identical chunking + per-slot writes give
  // identical results for any pool size.
  constexpr std::size_t kN = 257;
  const auto run = [](std::size_t n_threads) {
    ThreadPool pool(n_threads);
    std::vector<double> out(kN);
    pool.parallel_for(kN, 9, [&](std::size_t begin, std::size_t end,
                                 std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 0.1 + 3.0;
      }
    });
    return out;
  };
  const std::vector<double> one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(8), one);
}

}  // namespace
}  // namespace rfp
