/// BufferPool + Outbox: the serving data path's memory plumbing. The
/// pool must recycle storage (hits, not heap traffic) while bounding
/// residency, and the outbox must splice/coalesce/drain segments without
/// losing or reordering a byte. Run under ASan/TSan in CI alongside the
/// FrameView lifetime suites.

#include "rfp/common/buffer_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/net/outbox.hpp"

namespace rfp {
namespace {

TEST(BufferPoolTest, AcquireGrantsClearedCapacity) {
  BufferPool pool;
  PooledBuffer buf = pool.acquire(10'000);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.storage().capacity(), 10'000u);
  // The default hint still grants at least the smallest class.
  PooledBuffer small = pool.acquire();
  EXPECT_GE(small.storage().capacity(), BufferPoolConfig{}.min_class_bytes);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.misses, 2u);  // cold pool: everything came off the heap
  EXPECT_EQ(stats.hits, 0u);
}

TEST(BufferPoolTest, RecyclesReleasedStorage) {
  BufferPool pool;
  const std::uint8_t* raw = nullptr;
  {
    PooledBuffer buf = pool.acquire(8192);
    buf.storage().assign(100, 0xAB);
    raw = buf.data();
  }  // returned to the pool here
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().buffers_resident, 1u);

  PooledBuffer again = pool.acquire(8192);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_TRUE(again.empty());  // recycled buffers come back cleared
  EXPECT_EQ(again.storage().data(), raw);  // the very same storage
}

TEST(BufferPoolTest, OversizeAndOverflowReleasesAreDiscarded) {
  BufferPoolConfig config;
  config.max_buffers_per_class = 2;
  BufferPool pool(config);
  {
    // Grew past the largest class while out: freed, not kept.
    PooledBuffer huge = pool.acquire();
    huge.storage().reserve(config.max_class_bytes * 2);
  }
  EXPECT_EQ(pool.stats().discards, 1u);
  EXPECT_EQ(pool.stats().buffers_resident, 0u);

  // A full freelist discards the overflow rather than growing resident
  // memory without bound.
  {
    std::vector<PooledBuffer> bufs;
    for (int i = 0; i < 3; ++i) bufs.push_back(pool.acquire(4096));
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.buffers_resident, 2u);
  EXPECT_EQ(stats.discards, 2u);
  EXPECT_GT(stats.bytes_resident, 0u);
}

TEST(BufferPoolTest, MoveTransfersOwnershipWithoutDoubleRelease) {
  BufferPool pool;
  {
    PooledBuffer a = pool.acquire(4096);
    a.storage().assign(8, 1);
    PooledBuffer b = std::move(a);
    EXPECT_EQ(b.size(), 8u);
    PooledBuffer c;
    c = std::move(b);
    EXPECT_EQ(c.size(), 8u);
  }
  // One buffer travelled through three handles: exactly one release.
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().buffers_resident, 1u);
}

TEST(BufferPoolTest, WrappedBuffersBypassThePool) {
  std::vector<std::uint8_t> raw(64, 0x5A);
  {
    PooledBuffer wrapped = PooledBuffer::wrap(std::move(raw));
    EXPECT_EQ(wrapped.size(), 64u);
    wrapped.reset();  // frees, nothing to return to
    EXPECT_TRUE(wrapped.empty());
  }
  PooledBuffer untouched;  // default handle: plain vector semantics
  untouched.storage().push_back(1);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseIsSafe) {
  // The reactor's solve workers acquire response buffers from the
  // reactor's pool concurrently; hammer that pattern under TSan.
  BufferPool pool;
  constexpr int kThreads = 4, kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        PooledBuffer buf = pool.acquire(4096 + 1024 * (i % 3));
        buf.storage().assign(16, static_cast<std::uint8_t>(t));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.releases, stats.acquires);
  EXPECT_GT(stats.hits, 0u);
}

// -- Outbox ----------------------------------------------------------------

net::Outbox make_outbox(net::OutboxCounters* counters,
                        std::size_t coalesce_limit = 512) {
  return net::Outbox(counters, coalesce_limit);
}

PooledBuffer filled(BufferPool& pool, std::size_t n, std::uint8_t seed) {
  PooledBuffer buf = pool.acquire(n);
  buf.storage().resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf.storage()[i] = static_cast<std::uint8_t>(seed + i);
  }
  return buf;
}

std::vector<std::uint8_t> gather(const net::Outbox& out,
                                 std::size_t max_iov = 64) {
  struct iovec iov[64];
  const std::size_t n = out.fill_iovec(iov, max_iov);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
    bytes.insert(bytes.end(), p, p + iov[i].iov_len);
  }
  return bytes;
}

TEST(OutboxTest, SplicesLargeFramesAndCoalescesSmall) {
  BufferPool pool;
  net::OutboxCounters counters;
  net::Outbox out = make_outbox(&counters);

  out.push(filled(pool, 2000, 1));  // first frame: always its own segment
  out.push(filled(pool, 100, 2));   // small: packs into the tail's spare
  out.push(filled(pool, 2000, 3));  // large: new segment
  EXPECT_EQ(out.size(), 4100u);
  EXPECT_EQ(counters.frames_spliced, 2u);
  EXPECT_EQ(counters.frames_coalesced, 1u);
  EXPECT_EQ(counters.bytes_coalesced, 100u);

  // The drained byte stream preserves push order exactly.
  std::vector<std::uint8_t> expect;
  for (auto [n, seed] : {std::pair<std::size_t, int>{2000, 1},
                         {100, 2},
                         {2000, 3}}) {
    for (std::size_t i = 0; i < n; ++i) {
      expect.push_back(static_cast<std::uint8_t>(seed + i));
    }
  }
  EXPECT_EQ(gather(out), expect);

  // Coalesced frames returned their own buffer to the pool immediately.
  EXPECT_GE(pool.stats().releases, 1u);
}

TEST(OutboxTest, ConsumeAdvancesWithinAndAcrossSegments) {
  BufferPool pool;
  net::OutboxCounters counters;
  net::Outbox out = make_outbox(&counters, /*coalesce_limit=*/0);
  out.push(filled(pool, 1000, 10));
  out.push(filled(pool, 1000, 20));

  out.consume(300);  // partial first segment
  EXPECT_EQ(out.size(), 1700u);
  std::vector<std::uint8_t> rest = gather(out);
  ASSERT_EQ(rest.size(), 1700u);
  EXPECT_EQ(rest[0], static_cast<std::uint8_t>(10 + 300));

  const std::uint64_t released_before = pool.stats().releases;
  out.consume(900);  // finishes segment one (returned to pool), enters two
  EXPECT_EQ(out.size(), 800u);
  EXPECT_EQ(pool.stats().releases, released_before + 1);
  rest = gather(out);
  ASSERT_EQ(rest.size(), 800u);
  EXPECT_EQ(rest[0], static_cast<std::uint8_t>(20 + 200));

  out.consume(800);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.fill_iovec(nullptr, 0), 0u);
}

TEST(OutboxTest, RingGrowsPastInitialCapacityAndDrainsInOrder) {
  BufferPool pool;
  net::Outbox out = make_outbox(nullptr, /*coalesce_limit=*/0);
  constexpr std::size_t kSegments = 37;  // forces several ring growths
  std::size_t total = 0;
  for (std::size_t i = 0; i < kSegments; ++i) {
    out.push(filled(pool, 100 + i, static_cast<std::uint8_t>(i)));
    total += 100 + i;
  }
  EXPECT_EQ(out.size(), total);

  // Drain in awkward chunk sizes and re-assemble; order must hold.
  std::vector<std::uint8_t> drained;
  while (!out.empty()) {
    const std::vector<std::uint8_t> front = gather(out, 3);
    const std::size_t take = std::min<std::size_t>(front.size(), 217);
    drained.insert(drained.end(), front.begin(), front.begin() + take);
    out.consume(take);
  }
  ASSERT_EQ(drained.size(), total);
  std::size_t off = 0;
  for (std::size_t i = 0; i < kSegments; ++i) {
    for (std::size_t k = 0; k < 100 + i; ++k, ++off) {
      ASSERT_EQ(drained[off], static_cast<std::uint8_t>(i + k))
          << "segment " << i << " byte " << k;
    }
  }
}

TEST(OutboxTest, SteadyStateCyclesThroughThePool) {
  // The whole point of the data path: after warm-up, push/drain cycles
  // are served entirely off the pool freelist.
  BufferPool pool;
  net::Outbox out = make_outbox(nullptr);
  for (int i = 0; i < 8; ++i) {
    out.push(filled(pool, 3000, static_cast<std::uint8_t>(i)));
    out.consume(3000);
  }
  EXPECT_TRUE(out.empty());
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);  // only the very first acquire hit the heap
  EXPECT_EQ(stats.hits, stats.acquires - 1);
}

TEST(OutboxTest, ClearReleasesEverything) {
  BufferPool pool;
  net::Outbox out = make_outbox(nullptr, /*coalesce_limit=*/0);
  for (int i = 0; i < 5; ++i) out.push(filled(pool, 500, 9));
  const std::uint64_t released_before = pool.stats().releases;
  out.clear();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(pool.stats().releases, released_before + 5);
}

}  // namespace
}  // namespace rfp
