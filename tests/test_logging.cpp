#include "rfp/common/logging.hpp"

#include <gtest/gtest.h>

namespace rfp {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, StreamsDoNotCrashAtAnyLevel) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    log_debug() << "debug " << 1;
    log_info() << "info " << 2.5;
    log_warn() << "warn " << 'x';
    log_error() << "error " << std::string("s");
  }
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_error() << "should not appear";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, ThresholdFilters) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_info() << "hidden";
  log_warn() << "visible";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("[rfp:WARN]"), std::string::npos);
}

}  // namespace
}  // namespace rfp
