#include "rfp/dsp/linear_fit.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(FitLine, ExactLineRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(2.5 * static_cast<double>(i) - 1.25);
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.25, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 20u);
}

TEST(FitLine, TwoPointsExact) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{1.0, 3.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(FitLine, FrequencyScaleAbscissae) {
  // The RF-Prism regime: x ~ 9e8 with tiny span, slope ~ 1e-7. Centered
  // normal equations must not lose precision.
  const double slope = 9.4e-8;
  const double intercept = 3.1;
  std::vector<double> x, y;
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    x.push_back(channel_frequency(i));
    y.push_back(slope * x.back() + intercept);
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope / slope, 1.0, 1e-9);
  EXPECT_NEAR(fit.intercept, intercept, 1e-5);
}

TEST(FitLine, GaussianNoiseStatistics) {
  // Slope estimate should match the OLS variance formula.
  Rng rng(51);
  std::vector<double> slopes;
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back(static_cast<double>(i));
  const double sigma = 0.5;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<double> y;
    for (double xi : x) y.push_back(1.0 + 0.2 * xi + rng.gaussian(0.0, sigma));
    slopes.push_back(fit_line(x, y).slope);
  }
  double mean_slope = 0.0;
  for (double s : slopes) mean_slope += s;
  mean_slope /= static_cast<double>(slopes.size());
  EXPECT_NEAR(mean_slope, 0.2, 0.005);

  // Theoretical slope stderr: sigma / sqrt(Sxx).
  double sxx = 0.0;
  for (double xi : x) sxx += (xi - 24.5) * (xi - 24.5);
  const double expected = sigma / std::sqrt(sxx);
  double var = 0.0;
  for (double s : slopes) var += (s - mean_slope) * (s - mean_slope);
  const double observed = std::sqrt(var / static_cast<double>(slopes.size()));
  EXPECT_NEAR(observed / expected, 1.0, 0.2);
}

TEST(FitLine, ReportedStderrMatchesTheory) {
  Rng rng(52);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(3.0 * x.back() + rng.gaussian(0.0, 1.0));
  }
  const LineFit fit = fit_line(x, y);
  double sxx = 0.0;
  for (double xi : x) sxx += (xi - fit.x_mean) * (xi - fit.x_mean);
  EXPECT_NEAR(fit.slope_stderr, 1.0 / std::sqrt(sxx), 0.3 / std::sqrt(sxx));
  EXPECT_NEAR(fit.mid_stderr, 1.0 / std::sqrt(200.0), 0.03);
}

TEST(FitLine, MidpointValueConsistent) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.1, 5.9, 8.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.y_mean, fit.at(fit.x_mean), 1e-12);
}

TEST(FitLine, SizeMismatchThrows) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(fit_line(x, y), InvalidArgument);
}

TEST(FitLine, TooFewPointsThrows) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW(fit_line(x, y), InvalidArgument);
}

TEST(FitLine, DegenerateAbscissaThrows) {
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(x, y), NumericalError);
}

TEST(FitLineWeighted, ZeroWeightIgnoresPoint) {
  const std::vector<double> x{0.0, 1.0, 2.0, 10.0};
  const std::vector<double> y{0.0, 1.0, 2.0, 100.0};  // last is an outlier
  const std::vector<double> w{1.0, 1.0, 1.0, 0.0};
  const LineFit fit = fit_line_weighted(x, y, w);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
}

TEST(FitLineWeighted, MatchesUnweightedForUniformWeights) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 0.5, 2.5, 3.0};
  const std::vector<double> w{2.0, 2.0, 2.0, 2.0};
  const LineFit a = fit_line(x, y);
  const LineFit b = fit_line_weighted(x, y, w);
  EXPECT_NEAR(a.slope, b.slope, 1e-12);
  EXPECT_NEAR(a.intercept, b.intercept, 1e-12);
}

TEST(FitLineWeighted, NegativeWeightThrows) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{0.0, 1.0};
  const std::vector<double> w{1.0, -1.0};
  EXPECT_THROW(fit_line_weighted(x, y, w), InvalidArgument);
}

TEST(Residuals, SumToZeroForOlsFit) {
  Rng rng(53);
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(rng.gaussian(0.0, 1.0));
  }
  const LineFit fit = fit_line(x, y);
  const std::vector<double> r = residuals(fit, x, y);
  double sum = 0.0;
  for (double ri : r) sum += ri;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

}  // namespace
}  // namespace rfp
