#include "rfp/rfsim/scene.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(Scene2d, ThreeAntennasWithPaperSpacing) {
  const Scene scene = make_scene_2d(1);
  ASSERT_EQ(scene.antennas.size(), 3u);
  // 0.5 m spacing along x, all in front of the region.
  EXPECT_NEAR(scene.antennas[1].position.x - scene.antennas[0].position.x,
              0.5, 1e-12);
  EXPECT_NEAR(scene.antennas[2].position.x - scene.antennas[1].position.x,
              0.5, 1e-12);
  for (const auto& a : scene.antennas) {
    EXPECT_LT(a.position.y, scene.working_region.lo.y);
    EXPECT_GT(a.position.z, 0.0);
  }
}

TEST(Scene2d, HeightsAreDiverse) {
  // Depression-angle diversity conditions the orientation solve.
  const Scene scene = make_scene_2d(2);
  std::set<double> heights;
  for (const auto& a : scene.antennas) heights.insert(a.position.z);
  EXPECT_EQ(heights.size(), scene.antennas.size());
}

TEST(Scene2d, FramesAreOrthonormalAndFaceRegion) {
  const Scene scene = make_scene_2d(3);
  for (const auto& a : scene.antennas) {
    EXPECT_NEAR(a.frame.u.norm(), 1.0, 1e-9);
    EXPECT_NEAR(a.frame.v.norm(), 1.0, 1e-9);
    EXPECT_NEAR(a.frame.n.norm(), 1.0, 1e-9);
    EXPECT_NEAR(a.frame.u.dot(a.frame.v), 0.0, 1e-9);
    // Boresight points toward the region (positive y, downward z).
    EXPECT_GT(a.frame.n.y, 0.0);
    EXPECT_LT(a.frame.n.z, 0.0);
  }
}

TEST(Scene2d, BoresightsDiffer) {
  const Scene scene = make_scene_2d(4);
  for (std::size_t i = 0; i < scene.antennas.size(); ++i) {
    for (std::size_t j = i + 1; j < scene.antennas.size(); ++j) {
      EXPECT_GT(
          distance(scene.antennas[i].frame.n, scene.antennas[j].frame.n),
          0.05);
    }
  }
}

TEST(Scene2d, DeterministicForSeed) {
  const Scene a = make_scene_2d(7);
  const Scene b = make_scene_2d(7);
  ASSERT_EQ(a.antennas.size(), b.antennas.size());
  for (std::size_t i = 0; i < a.antennas.size(); ++i) {
    EXPECT_EQ(a.antennas[i].position, b.antennas[i].position);
    EXPECT_DOUBLE_EQ(a.antennas[i].kr, b.antennas[i].kr);
    EXPECT_DOUBLE_EQ(a.antennas[i].br, b.antennas[i].br);
  }
}

TEST(Scene2d, HardwareErrorsDifferAcrossPorts) {
  const Scene scene = make_scene_2d(8);
  EXPECT_NE(scene.antennas[0].kr, scene.antennas[1].kr);
  EXPECT_NE(scene.antennas[0].br, scene.antennas[2].br);
}

TEST(Scene3d, FourAntennas) {
  const Scene scene = make_scene_3d(9);
  EXPECT_EQ(scene.antennas.size(), 4u);
  std::set<double> heights;
  for (const auto& a : scene.antennas) heights.insert(a.position.z);
  EXPECT_EQ(heights.size(), 4u);
}

TEST(MeasuredPositions, ErrorScalesWithSigma) {
  const Scene scene = make_scene_2d(10);
  const auto exact = scene.measured_antenna_positions(0.0, 5);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(distance(exact[i], scene.antennas[i].position), 0.0, 1e-12);
  }
  const auto coarse = scene.measured_antenna_positions(0.05, 5);
  double total = 0.0;
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    total += distance(coarse[i], scene.antennas[i].position);
  }
  EXPECT_GT(total, 0.01);
  EXPECT_LT(total / 3.0, 0.5);
}

TEST(MeasuredPositions, DeterministicPerSeed) {
  const Scene scene = make_scene_2d(11);
  const auto a = scene.measured_antenna_positions(0.02, 99);
  const auto b = scene.measured_antenna_positions(0.02, 99);
  const auto c = scene.measured_antenna_positions(0.02, 100);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_NE(a[0], c[0]);
}

TEST(MeasuredFrames, StayOrthonormal) {
  const Scene scene = make_scene_2d(12);
  const auto frames = scene.measured_antenna_frames(0.05, 3);
  ASSERT_EQ(frames.size(), scene.antennas.size());
  for (const auto& f : frames) {
    EXPECT_NEAR(f.u.norm(), 1.0, 1e-9);
    EXPECT_NEAR(f.v.norm(), 1.0, 1e-9);
    EXPECT_NEAR(f.n.norm(), 1.0, 1e-9);
    EXPECT_NEAR(f.u.dot(f.v), 0.0, 1e-9);
    EXPECT_NEAR(f.u.dot(f.n), 0.0, 1e-9);
  }
}

TEST(MeasuredFrames, SmallRotationFromTruth) {
  const Scene scene = make_scene_2d(13);
  const auto frames = scene.measured_antenna_frames(0.01, 3);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double angle =
        std::acos(std::clamp(frames[i].n.dot(scene.antennas[i].frame.n),
                             -1.0, 1.0));
    EXPECT_LT(angle, 0.1);
  }
}

TEST(AddClutter, PlacesReflectorsOutsideRegion) {
  Scene scene = make_scene_2d(14);
  add_clutter(scene, 8, 77);
  ASSERT_EQ(scene.reflectors.size(), 8u);
  for (const auto& r : scene.reflectors) {
    EXPECT_FALSE(scene.working_region.contains(r.position.xy()));
    EXPECT_GT(r.reflectivity, 0.0);
    EXPECT_LT(r.reflectivity, 1.0);
  }
}

TEST(AddClutter, Accumulates) {
  Scene scene = make_scene_2d(15);
  add_clutter(scene, 3, 1);
  add_clutter(scene, 2, 2);
  EXPECT_EQ(scene.reflectors.size(), 5u);
}

TEST(TagHardware, DeterministicPerIdAndSeed) {
  const TagHardware a = make_tag_hardware("tag-7", 1);
  const TagHardware b = make_tag_hardware("tag-7", 1);
  const TagHardware c = make_tag_hardware("tag-8", 1);
  const TagHardware d = make_tag_hardware("tag-7", 2);
  EXPECT_DOUBLE_EQ(a.kd, b.kd);
  EXPECT_DOUBLE_EQ(a.bd, b.bd);
  EXPECT_NE(a.kd, c.kd);
  EXPECT_NE(a.kd, d.kd);
}

TEST(TagHardware, ManufacturingSpreadIsModest) {
  // kd values should be ~1e-9 scale (paper-consistent device diversity).
  for (int i = 0; i < 50; ++i) {
    const TagHardware hw = make_tag_hardware("t" + std::to_string(i), 3);
    EXPECT_LT(std::abs(hw.kd), 6e-9);
    EXPECT_GE(hw.bd, 0.0);
    EXPECT_LT(hw.bd, kTwoPi);
  }
}

TEST(StandardScene, CustomConfigRespected) {
  SceneConfig config;
  config.n_antennas = 5;
  config.antenna_spacing = 0.3;
  config.working_region = Rect{{0.0, 0.0}, {4.0, 4.0}};
  const Scene scene = make_standard_scene(config, 1);
  EXPECT_EQ(scene.antennas.size(), 5u);
  EXPECT_NEAR(scene.antennas[1].position.x - scene.antennas[0].position.x,
              0.3, 1e-12);
  EXPECT_EQ(scene.working_region.hi.x, 4.0);
}

TEST(StandardScene, ZeroAntennasThrows) {
  SceneConfig config;
  config.n_antennas = 0;
  EXPECT_THROW(make_standard_scene(config, 1), InvalidArgument);
}

}  // namespace
}  // namespace rfp
