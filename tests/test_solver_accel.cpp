/// Solver acceleration contract (DESIGN.md "Solver acceleration"):
/// the geometry-cached exhaustive scan is bit-identical to the uncached
/// solver, the coarse-to-fine pyramid lands within one fine cell of the
/// exhaustive scan (post-LM position within 1 mm) and is deterministic
/// across thread counts, warm starts fall back byte-identically when the
/// hint is bad, and the GridGeometryCache itself keys/evicts/builds
/// correctly under concurrency.

#include "rfp/core/grid_cache.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/disentangle.hpp"
#include "rfp/core/engine.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/geom/frame.hpp"
#include "rfp/rfsim/faults.hpp"
#include "rfp/rfsim/scene.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;

/// Exact (bitwise on doubles) equality of everything sensing computes.
/// No tolerances on purpose: bit-identity is the contract.
void expect_identical(const SensingResult& a, const SensingResult& b,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.grade, b.grade);
  EXPECT_EQ(a.excluded_antennas, b.excluded_antennas);
  EXPECT_EQ(a.unhealthy_antennas, b.unhealthy_antennas);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
  EXPECT_EQ(a.position_residual, b.position_residual);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.polarization.x, b.polarization.x);
  EXPECT_EQ(a.polarization.y, b.polarization.y);
  EXPECT_EQ(a.polarization.z, b.polarization.z);
  EXPECT_EQ(a.orientation_residual, b.orientation_residual);
  EXPECT_EQ(a.kt, b.kt);
  EXPECT_EQ(a.bt, b.bt);
  EXPECT_EQ(a.material_signature, b.material_signature);
}

/// Exact AntennaLines from the physical model: k_i = C*d_i + kt,
/// b_i = orient_i + bt (same helper as the disentangle tests).
std::vector<AntennaLine> exact_lines(const DeploymentGeometry& geometry,
                                     Vec3 position, Vec3 polarization,
                                     double kt, double bt) {
  std::vector<AntennaLine> lines;
  for (std::size_t i = 0; i < geometry.n_antennas(); ++i) {
    AntennaLine line;
    line.antenna = i;
    const double d = distance(geometry.antenna_positions[i], position);
    line.fit.slope = kSlopePerMeter * d + kt;
    line.fit.intercept = wrap_to_2pi(
        polarization_phase_toward(geometry.antenna_frames[i],
                                  geometry.antenna_positions[i], position,
                                  polarization) +
        bt);
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    lines.push_back(line);
  }
  return lines;
}

/// A mixed corpus: clean rounds plus heavily faulted ones, so the
/// accelerated paths are exercised across full, degraded, and rejected
/// outcomes (the PR 1 harness).
std::vector<RoundTrace> make_corpus(const Testbed& bed, std::size_t n_clean,
                                    std::size_t n_faulted) {
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(11, 0xACCE));
  const auto materials = paper_materials();
  const FaultInjector injector(FaultProfile::scaled(0.8, mix_seed(11, 0xFA17)));
  for (std::size_t k = 0; k < n_clean + n_faulted; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi),
                                         materials[k % materials.size()]);
    RoundTrace round = bed.collect(state, 6000 + k);
    if (k >= n_clean) round = injector.apply(round, 6000 + k);
    corpus.push_back(std::move(round));
  }
  return corpus;
}

RfPrism make_variant(const Testbed& bed, bool cached, bool pyramid) {
  RfPrismConfig config = bed.prism().config();
  config.disentangle.use_geometry_cache = cached;
  config.disentangle.pyramid.enable = pyramid;
  return bed.make_pipeline_variant(std::move(config));
}

RfPrism make_kernel_variant(const Testbed& bed, RankKernel kernel,
                            bool pyramid = false) {
  RfPrismConfig config = bed.prism().config();
  config.disentangle.rank_kernel = kernel;
  config.disentangle.pyramid.enable = pyramid;
  return bed.make_pipeline_variant(std::move(config));
}

// ---------------------------------------------------------------------------
// GridGeometryCache unit tests
// ---------------------------------------------------------------------------

DeploymentGeometry square_geometry() {
  DeploymentGeometry g;
  g.antenna_positions = {{0.0, 0.0, 1.0},
                         {2.0, 0.0, 1.0},
                         {0.0, 2.0, 1.0},
                         {2.0, 2.0, 1.0}};
  for (std::size_t i = 0; i < 4; ++i) {
    g.antenna_frames.push_back(OrthoFrame{});
  }
  g.working_region = Rect{{0.0, 0.0}, {2.0, 2.0}};
  g.tag_plane_z = 0.0;
  return g;
}

GridSpec default_spec() { return GridSpec{41, 41, 1, 0.0, 1.5}; }

TEST(GridGeometryCache, ReusesTableForSameKey) {
  GridGeometryCache cache;
  const DeploymentGeometry g = square_geometry();
  const auto a = cache.acquire(g, default_spec());
  const auto b = cache.acquire(g, default_spec());
  EXPECT_EQ(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(GridGeometryCache, TableMatchesScanGeometry) {
  GridGeometryCache cache;
  const DeploymentGeometry g = square_geometry();
  const GridSpec spec = default_spec();
  const auto table = cache.acquire(g, spec);
  ASSERT_EQ(table->n_cells(), 41u * 41u);
  ASSERT_EQ(table->n_antennas, 4u);
  // Cell coordinates are the canonical scan expressions, bit-for-bit.
  const Rect& region = g.working_region;
  for (std::size_t ix = 0; ix < spec.nx; ++ix) {
    EXPECT_EQ(table->xs[ix],
              grid_axis_coord(region.lo.x, region.width(), ix, spec.nx));
  }
  // Distances are the exact distance() doubles at those cells.
  const std::size_t cell = 17 * spec.nx + 5;  // arbitrary interior cell
  const Vec3 p = table->cell_position(cell);
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(table->dist[cell * 4 + a], distance(g.antenna_positions[a], p));
  }
}

TEST(GridGeometryCache, GeometryChangeMisses) {
  GridGeometryCache cache;
  DeploymentGeometry g = square_geometry();
  const auto a = cache.acquire(g, default_spec());
  g.antenna_positions[2].x += 0.001;  // 1 mm survey correction
  const auto b = cache.acquire(g, default_spec());
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(GridGeometryCache, GridChangeMisses) {
  GridGeometryCache cache;
  const DeploymentGeometry g = square_geometry();
  const auto a = cache.acquire(g, default_spec());
  GridSpec finer = default_spec();
  finer.nx = 81;
  const auto b = cache.acquire(g, finer);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(b->spec.nx, 81u);
}

TEST(GridGeometryCache, FramesAndPlanarZRangeDoNotInvalidate) {
  // The distance table depends on neither the antenna frames nor (in 2D
  // mode) the 3D z range — changing them must hit the same entry.
  GridGeometryCache cache;
  DeploymentGeometry g = square_geometry();
  const auto a = cache.acquire(g, default_spec());
  g.antenna_frames[0] = OrthoFrame{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
  GridSpec spec = default_spec();
  spec.z_lo = -3.0;
  spec.z_hi = 9.0;
  const auto b = cache.acquire(g, spec);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GridGeometryCache, CapacityEvictsOldestFirst) {
  GridGeometryCache cache(/*max_entries=*/2);
  DeploymentGeometry g = square_geometry();
  const auto first = cache.acquire(g, default_spec());
  g.antenna_positions[0].x += 0.01;
  cache.acquire(g, default_spec());
  g.antenna_positions[0].x += 0.01;
  cache.acquire(g, default_spec());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // The first (evicted) table is still usable by its holders.
  EXPECT_EQ(first->n_cells(), 41u * 41u);
  // Re-acquiring the first geometry is a miss again.
  DeploymentGeometry original = square_geometry();
  cache.acquire(original, default_spec());
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(GridGeometryCache, DegenerateGridThrows) {
  GridGeometryCache cache;
  const DeploymentGeometry g = square_geometry();
  EXPECT_THROW(cache.acquire(g, GridSpec{1, 41, 1, 0.0, 0.0}),
               InvalidArgument);
  EXPECT_THROW(cache.acquire(DeploymentGeometry{}, default_spec()),
               InvalidArgument);
}

TEST(GridGeometryCache, ConcurrentFirstBuildSharesOneTable) {
  // Many workers race to build the same missing entry; everyone must end
  // up with the single winning table (TSan covers the synchronization).
  GridGeometryCache cache;
  const DeploymentGeometry g = square_geometry();
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const GridTable>> tables(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { tables[t] = cache.acquire(g, default_spec()); });
    }
    for (auto& thread : threads) thread.join();
  }
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(tables[0].get(), tables[t].get());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.builds, 1u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
}

// ---------------------------------------------------------------------------
// Cached exhaustive scan: bit-identity with the uncached solver
// ---------------------------------------------------------------------------

TEST(SolverAccelDeterminism, CachedMatchesUncachedBitExact) {
  TestbedConfig config;
  config.n_antennas = 4;  // room for the degraded path to act
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 4, 8);
  const RfPrism cached = make_variant(bed, /*cached=*/true, /*pyramid=*/false);
  const RfPrism uncached =
      make_variant(bed, /*cached=*/false, /*pyramid=*/false);

  bool saw_degraded_or_rejected = false;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult a = cached.sense(corpus[k], bed.tag_id());
    const SensingResult b = uncached.sense(corpus[k], bed.tag_id());
    saw_degraded_or_rejected |= a.grade != SensingGrade::kFull;
    expect_identical(a, b, "round " + std::to_string(k));
  }
  EXPECT_TRUE(saw_degraded_or_rejected)
      << "faulted corpus never left the full-grade path; weak test";
}

TEST(SolverAccelDeterminism, CachedBatchBitIdenticalAcrossThreadCounts) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5);
  const RfPrism uncached =
      make_variant(bed, /*cached=*/false, /*pyramid=*/false);

  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(uncached.sense(round, bed.tag_id()));
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    SensingEngine engine(threads);
    const std::vector<SensingResult> batch =
        bed.prism().sense_batch(corpus, engine, bed.tag_id());
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      expect_identical(batch[k], reference[k],
                       "threads=" + std::to_string(threads) + " round " +
                           std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Ranking kernels: factored (scalar / SIMD) byte-identical to canonical
// ---------------------------------------------------------------------------

TEST(SolverAccelKernels, FactoredMatchesCanonicalBitExact) {
  // Full clean+faulted corpus through the whole pipeline: whichever kernel
  // ranks Stage A, the reported results must be byte-identical (ISSUE
  // acceptance: the factored kernels only *order* cells; winners are
  // canonically re-scored).
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 4, 8);
  const RfPrism canonical = make_kernel_variant(bed, RankKernel::kCanonical);
  const RfPrism scalar = make_kernel_variant(bed, RankKernel::kFactoredScalar);
  const RfPrism simd = make_kernel_variant(bed, RankKernel::kFactoredSimd);

  bool saw_degraded_or_rejected = false;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult a = canonical.sense(corpus[k], bed.tag_id());
    const SensingResult b = scalar.sense(corpus[k], bed.tag_id());
    const SensingResult c = simd.sense(corpus[k], bed.tag_id());
    saw_degraded_or_rejected |= a.grade != SensingGrade::kFull;
    expect_identical(a, b, "scalar round " + std::to_string(k));
    expect_identical(a, c, "simd round " + std::to_string(k));
  }
  EXPECT_TRUE(saw_degraded_or_rejected)
      << "faulted corpus never left the full-grade path; weak test";
}

TEST(SolverAccelKernels, FactoredPyramidMatchesCanonicalPyramid) {
  // The pyramid's coarse pass also routes through the factored kernel;
  // its fine pass and the reported values stay canonical.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5);
  const RfPrism canonical =
      make_kernel_variant(bed, RankKernel::kCanonical, /*pyramid=*/true);
  const RfPrism simd =
      make_kernel_variant(bed, RankKernel::kFactoredSimd, /*pyramid=*/true);
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    expect_identical(canonical.sense(corpus[k], bed.tag_id()),
                     simd.sense(corpus[k], bed.tag_id()),
                     "pyramid round " + std::to_string(k));
  }
}

TEST(SolverAccelKernels, FactoredBitIdenticalAcrossThreadCounts) {
  // ISSUE acceptance: factored-SIMD batches at 1/2/8 threads reproduce the
  // canonical single-threaded results bit-for-bit.
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5);
  const RfPrism canonical = make_kernel_variant(bed, RankKernel::kCanonical);

  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(canonical.sense(round, bed.tag_id()));
  }
  for (RankKernel kernel :
       {RankKernel::kFactoredScalar, RankKernel::kFactoredSimd}) {
    const RfPrism variant = make_kernel_variant(bed, kernel);
    for (std::size_t threads : {1u, 2u, 8u}) {
      SensingEngine engine(threads);
      const std::vector<SensingResult> batch =
          variant.sense_batch(corpus, engine, bed.tag_id());
      ASSERT_EQ(batch.size(), reference.size());
      for (std::size_t k = 0; k < batch.size(); ++k) {
        expect_identical(batch[k], reference[k],
                         "kernel=" + std::to_string(static_cast<int>(kernel)) +
                             " threads=" + std::to_string(threads) +
                             " round " + std::to_string(k));
      }
    }
  }
}

TEST(SolverAccelKernels, FactoredWarmWindowMatchesCanonical) {
  // Warm-start windows rank through the factored kernel too; the windowed
  // solve must land on the canonical window winner bit-for-bit.
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  const Vec3 truth{0.65, 1.4, 0.0};
  const auto lines =
      exact_lines(geometry, truth, planar_polarization(0.3), 2e-9, 1.1);
  DisentangleConfig canonical_cfg;
  canonical_cfg.rank_kernel = RankKernel::kCanonical;
  DisentangleConfig simd_cfg;
  simd_cfg.rank_kernel = RankKernel::kFactoredSimd;
  SolveWorkspace ws;
  GridGeometryCache cache;
  const Vec3 hint{truth.x + 0.04, truth.y - 0.03, 0.0};

  const PositionSolve a =
      solve_position(geometry, lines, canonical_cfg, ws, nullptr, &cache,
                     &hint);
  const PositionSolve b =
      solve_position(geometry, lines, simd_cfg, ws, nullptr, &cache, &hint);
  EXPECT_EQ(a.path, SolvePath::kWarmStart);
  EXPECT_EQ(b.path, SolvePath::kWarmStart);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
  EXPECT_EQ(a.kt, b.kt);
  EXPECT_EQ(a.rms, b.rms);
}

// ---------------------------------------------------------------------------
// Pyramid: within one fine cell of exhaustive, deterministic across threads
// ---------------------------------------------------------------------------

TEST(SolverAccelPyramid, WithinOneMillimeterOfExhaustive) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 6, 6);
  const RfPrism exhaustive =
      make_variant(bed, /*cached=*/true, /*pyramid=*/false);
  const RfPrism pyramid = make_variant(bed, /*cached=*/true, /*pyramid=*/true);

  std::size_t compared = 0;
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult a = exhaustive.sense(corpus[k], bed.tag_id());
    const SensingResult b = pyramid.sense(corpus[k], bed.tag_id());
    EXPECT_EQ(a.valid, b.valid) << "round " << k;
    if (!a.valid || !b.valid) continue;
    ++compared;
    EXPECT_LE(distance(a.position, b.position), 1e-3)
        << "round " << k << ": pyramid strayed beyond one fine cell";
  }
  EXPECT_GE(compared, 4u);
}

TEST(SolverAccelPyramid, ExactScenesPositionSweep) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig exhaustive;
  DisentangleConfig pyramid;
  pyramid.pyramid.enable = true;
  for (double x : {0.3, 1.0, 1.7}) {
    for (double y : {0.3, 1.0, 1.7}) {
      const Vec3 truth{x, y, 0.0};
      const auto lines =
          exact_lines(geometry, truth, planar_polarization(0.7), 1e-9, 0.4);
      const PositionSolve a = solve_position(geometry, lines, exhaustive);
      const PositionSolve b = solve_position(geometry, lines, pyramid);
      ASSERT_LE(distance(a.position, b.position), 1e-3)
          << "truth " << x << "," << y;
      ASSERT_LE(distance(b.position, truth), 5e-3);
    }
  }
}

TEST(SolverAccelPyramid, ThreeDWithinOneFineCell) {
  const Scene scene = make_scene_3d(72);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  config.grid_nx = 25;
  config.grid_ny = 25;
  config.grid_nz = 9;
  config.z_lo = 0.0;
  config.z_hi = 1.2;
  DisentangleConfig pyramid = config;
  pyramid.pyramid.enable = true;

  const Vec3 truth{1.2, 0.9, 0.45};
  const auto lines =
      exact_lines(geometry, truth, spherical_polarization(0.8, 0.35), 2e-9,
                  1.0);
  const PositionSolve a = solve_position(geometry, lines, config);
  const PositionSolve b = solve_position(geometry, lines, pyramid);
  EXPECT_LE(distance(a.position, b.position), 1e-3);
  EXPECT_LE(distance(b.position, truth), 0.02);
}

TEST(SolverAccelPyramid, ScansFarFewerCellsThanExhaustive) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig pyramid;
  pyramid.pyramid.enable = true;
  const auto lines = exact_lines(geometry, Vec3{0.8, 1.2, 0.0},
                                 planar_polarization(0.2), 0.0, 0.0);
  const PositionSolve a = solve_position(geometry, lines, DisentangleConfig{});
  const PositionSolve b = solve_position(geometry, lines, pyramid);
  EXPECT_EQ(a.path, SolvePath::kExhaustive);
  EXPECT_EQ(b.path, SolvePath::kPyramid);
  EXPECT_EQ(a.cells_scanned, 41u * 41u);
  EXPECT_LT(b.cells_scanned, a.cells_scanned / 2);
}

TEST(SolverAccelPyramid, BitIdenticalAcrossThreadCounts) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 5);
  const RfPrism pyramid = make_variant(bed, /*cached=*/true, /*pyramid=*/true);

  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(pyramid.sense(round, bed.tag_id()));
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    SensingEngine engine(threads);
    const std::vector<SensingResult> batch =
        pyramid.sense_batch(corpus, engine, bed.tag_id());
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      expect_identical(batch[k], reference[k],
                       "threads=" + std::to_string(threads) + " round " +
                           std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Warm start
// ---------------------------------------------------------------------------

TEST(SolverAccelWarmStart, NearHintUsesWindowAndMatchesExhaustive) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  const Vec3 truth{0.65, 1.4, 0.0};
  const auto lines =
      exact_lines(geometry, truth, planar_polarization(0.3), 2e-9, 1.1);
  DisentangleConfig config;
  SolveWorkspace ws;
  GridGeometryCache cache;

  const PositionSolve cold =
      solve_position(geometry, lines, config, ws, nullptr, &cache);
  const Vec3 hint{truth.x + 0.04, truth.y - 0.03, 0.0};
  const PositionSolve warm =
      solve_position(geometry, lines, config, ws, nullptr, &cache, &hint);

  EXPECT_EQ(warm.path, SolvePath::kWarmStart);
  EXPECT_LT(warm.cells_scanned, cold.cells_scanned / 4);
  EXPECT_LE(distance(warm.position, cold.position), 1e-6);
  EXPECT_LE(distance(warm.position, truth), 1e-3);
}

TEST(SolverAccelWarmStart, HintOutsideRegionFallsBackByteIdentical) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  const auto lines = exact_lines(geometry, Vec3{1.1, 0.7, 0.0},
                                 planar_polarization(1.2), 0.0, 0.2);
  DisentangleConfig config;
  SolveWorkspace ws;
  GridGeometryCache cache;

  const PositionSolve cold =
      solve_position(geometry, lines, config, ws, nullptr, &cache);
  const Vec3 hint{10.0, -10.0, 0.0};
  const PositionSolve warm =
      solve_position(geometry, lines, config, ws, nullptr, &cache, &hint);

  EXPECT_EQ(warm.path, SolvePath::kExhaustive);
  EXPECT_EQ(warm.position.x, cold.position.x);
  EXPECT_EQ(warm.position.y, cold.position.y);
  EXPECT_EQ(warm.position.z, cold.position.z);
  EXPECT_EQ(warm.kt, cold.kt);
  EXPECT_EQ(warm.rms, cold.rms);
}

TEST(SolverAccelWarmStart, ImpossibleThresholdAlwaysFallsBack) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  const Vec3 truth{1.5, 0.5, 0.0};
  const auto lines =
      exact_lines(geometry, truth, planar_polarization(0.9), 1e-9, 0.0);
  DisentangleConfig config;
  // On exact lines the windowed refinement reaches rms == 0.0 exactly, so
  // only a negative threshold is truly unpassable.
  config.warm_start.max_rms = -1.0;
  SolveWorkspace ws;
  GridGeometryCache cache;

  const PositionSolve cold =
      solve_position(geometry, lines, config, ws, nullptr, &cache);
  const Vec3 hint = truth;  // even a perfect hint must fall back
  const PositionSolve warm =
      solve_position(geometry, lines, config, ws, nullptr, &cache, &hint);
  EXPECT_EQ(warm.path, SolvePath::kExhaustive);
  EXPECT_EQ(warm.position.x, cold.position.x);
  EXPECT_EQ(warm.rms, cold.rms);
}

TEST(SolverAccelWarmStart, SenseWarmMatchesColdWithinTolerance) {
  Testbed bed;
  const TagState state = bed.tag_state({0.9, 1.1}, 0.7, paper_materials()[0]);
  const RoundTrace round = bed.collect(state, 7000);
  const SensingResult cold = bed.prism().sense(round, bed.tag_id());
  ASSERT_TRUE(cold.valid);
  const SensingResult warm =
      bed.prism().sense_warm(round, bed.tag_id(), cold.position);
  ASSERT_TRUE(warm.valid);
  EXPECT_LE(distance(warm.position, cold.position), 2e-3);
}

TEST(SolverAccelWarmStart, StreamingWarmEngineMatchesNoEngine) {
  // Warm-started streaming must stay engine-vs-engineless deterministic:
  // both paths compute hints from identical tracks and funnel through the
  // same sense_with.
  Testbed bed;
  StreamingConfig scfg;
  scfg.min_channels_per_antenna = 8;
  scfg.enable_warm_start = true;
  SensingEngine engine(4);
  StreamingSensor with_engine(bed.prism(), scfg, &engine);
  StreamingSensor without_engine(bed.prism(), scfg);

  Vec2 p{0.6, 0.8};
  double t = 0.0;
  for (std::size_t round_idx = 0; round_idx < 5; ++round_idx) {
    const TagState state = bed.tag_state(p, 0.5, paper_materials()[1]);
    RoundTrace round = bed.collect(state, 8000 + round_idx);
    std::vector<TagRead> reads = round_to_reads(round, "tag-a");
    for (TagRead& read : reads) read.time_s += t;
    with_engine.push(reads);
    without_engine.push(reads);
    const auto a = with_engine.poll(t + 5.0);
    const auto b = without_engine.poll(t + 5.0);
    ASSERT_EQ(a.size(), b.size()) << "poll " << round_idx;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tag_id, b[i].tag_id);
      expect_identical(a[i].result, b[i].result,
                       "poll " + std::to_string(round_idx));
    }
    p.x += 0.05;  // conveyor-style step advance between rounds
    t += 10.0;
  }
}

TEST(SolverAccelWarmStart, StreamingWarmTracksMovingTag) {
  // Accuracy guard: warm-started emissions stay close to the cold ones
  // while the tag steps across the region.
  Testbed bed;
  StreamingConfig cold_cfg;
  cold_cfg.min_channels_per_antenna = 8;
  StreamingConfig warm_cfg = cold_cfg;
  warm_cfg.enable_warm_start = true;
  StreamingSensor cold(bed.prism(), cold_cfg);
  StreamingSensor warm(bed.prism(), warm_cfg);

  Vec2 p{0.5, 1.3};
  double t = 0.0;
  std::size_t compared = 0;
  for (std::size_t round_idx = 0; round_idx < 6; ++round_idx) {
    const TagState state = bed.tag_state(p, 1.1, paper_materials()[2]);
    RoundTrace round = bed.collect(state, 8100 + round_idx);
    std::vector<TagRead> reads = round_to_reads(round, "tag-b");
    for (TagRead& read : reads) read.time_s += t;
    cold.push(reads);
    warm.push(reads);
    const auto a = cold.poll(t + 5.0);
    const auto b = warm.poll(t + 5.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!a[i].result.valid || !b[i].result.valid) continue;
      ++compared;
      EXPECT_LE(distance(a[i].result.position, b[i].result.position), 5e-3)
          << "round " << round_idx;
    }
    p.x += 0.06;
    t += 10.0;
  }
  EXPECT_GE(compared, 4u);
}

// ---------------------------------------------------------------------------
// Orientation early stop (satellite)
// ---------------------------------------------------------------------------

TEST(SolverAccelOrientation, EarlyStopAlphaMatchesLegacy) {
  const Scene scene = make_scene_2d(71);
  const DeploymentGeometry geometry = exact_geometry(scene);
  const Vec3 truth{1.2, 1.1, 0.0};
  DisentangleConfig early;  // default: tol = 1e-6 rad
  DisentangleConfig legacy;
  legacy.orientation_refine_tol_rad = 0.0;  // fixed 40 iterations
  for (double alpha : {0.0, 0.4, 1.0, 1.5, 2.2, 2.9}) {
    const auto lines =
        exact_lines(geometry, truth, planar_polarization(alpha), 1e-9, 0.8);
    const OrientationSolve a =
        solve_orientation(geometry, lines, truth, early);
    const OrientationSolve b =
        solve_orientation(geometry, lines, truth, legacy);
    ASSERT_LE(std::abs(planar_angle_error(a.alpha, b.alpha)), 2e-6)
        << "alpha=" << alpha;
    ASSERT_NEAR(rad2deg(planar_angle_error(a.alpha, alpha)), 0.0, 0.5);
  }
}

}  // namespace
}  // namespace rfp
