#include "rfp/ml/svm.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

Dataset blobs(std::size_t per_class, int n_classes, double separation,
              double noise, Rng& rng) {
  std::vector<std::string> names;
  for (int c = 0; c < n_classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset d(names);
  for (int cls = 0; cls < n_classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      d.add({separation * cls + rng.gaussian(0.0, noise),
             (cls % 2 ? 1.0 : -1.0) * separation + rng.gaussian(0.0, noise)},
            cls);
    }
  }
  return d;
}

TEST(Svm, LinearSeparableBinary) {
  Rng rng(131);
  const Dataset train = blobs(40, 2, 4.0, 0.4, rng);
  const Dataset test = blobs(40, 2, 4.0, 0.4, rng);
  SvmConfig config;
  config.kernel = SvmKernel::kLinear;
  config.standardize = true;
  SvmClassifier svm(config);
  svm.fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += svm.predict(test.features(i)) == test.label(i);
  }
  EXPECT_GE(correct, 78);
}

TEST(Svm, RbfSolvesXor) {
  // XOR is not linearly separable; the RBF kernel handles it.
  Dataset train({"a", "b"});
  Rng rng(132);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    train.add({x, y}, (x * y > 0.0) ? 0 : 1);
  }
  SvmConfig config;
  config.kernel = SvmKernel::kRbf;
  config.gamma = 4.0;
  SvmClassifier svm(config);
  svm.fit(train);
  int correct = 0;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    if (std::abs(x * y) < 0.05) continue;  // skip the decision boundary
    ++total;
    correct += svm.predict(std::vector<double>{x, y}) ==
               ((x * y > 0.0) ? 0 : 1);
  }
  EXPECT_GE(static_cast<double>(correct) / total, 0.9);
}

TEST(Svm, LinearXorFails) {
  // Sanity check that the XOR success above is the kernel's doing.
  Dataset train({"a", "b"});
  Rng rng(133);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    train.add({x, y}, (x * y > 0.0) ? 0 : 1);
  }
  SvmConfig config;
  config.kernel = SvmKernel::kLinear;
  SvmClassifier svm(config);
  svm.fit(train);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    correct += svm.predict(std::vector<double>{x, y}) ==
               ((x * y > 0.0) ? 0 : 1);
  }
  EXPECT_LT(correct, 140);  // not much better than chance
}

TEST(Svm, MultiClassOneVsRest) {
  Rng rng(134);
  const Dataset train = blobs(30, 4, 6.0, 0.5, rng);
  const Dataset test = blobs(30, 4, 6.0, 0.5, rng);
  SvmConfig config;
  config.standardize = true;
  SvmClassifier svm(config);
  svm.fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += svm.predict(test.features(i)) == test.label(i);
  }
  EXPECT_GE(correct, 110);  // >= ~92%
}

TEST(Svm, DeterministicAcrossRuns) {
  Rng rng(135);
  const Dataset train = blobs(20, 3, 3.0, 0.6, rng);
  SvmClassifier a;
  SvmClassifier b;
  a.fit(train);
  b.fit(train);
  Rng probe(136);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.uniform(-2.0, 8.0),
                                probe.uniform(-5.0, 5.0)};
    ASSERT_EQ(a.predict(x), b.predict(x));
  }
}

TEST(Svm, DecisionValueSignMatchesPrediction) {
  Rng rng(137);
  const Dataset train = blobs(30, 2, 5.0, 0.4, rng);
  SvmConfig config;
  config.standardize = true;
  SvmClassifier svm(config);
  svm.fit(train);
  // For the predicted class, the decision value should exceed the other's.
  const std::vector<double> probe{0.0, -5.0};
  // predict() standardizes internally; mirror it via training stats by
  // reusing a training point instead.
  const auto x = train.features(0);
  const int label = svm.predict(x);
  EXPECT_TRUE(label == 0 || label == 1);
}

TEST(Svm, PredictBeforeFitThrows) {
  SvmClassifier svm;
  EXPECT_THROW(svm.predict(std::vector<double>{1.0}), Error);
}

TEST(Svm, EmptyFitThrows) {
  SvmClassifier svm;
  EXPECT_THROW(svm.fit(Dataset{}), InvalidArgument);
}

TEST(Svm, BadConfigThrows) {
  SvmConfig config;
  config.c = 0.0;
  EXPECT_THROW(SvmClassifier{config}, InvalidArgument);
  config.c = 1.0;
  config.epochs = 0;
  EXPECT_THROW(SvmClassifier{config}, InvalidArgument);
}

TEST(Svm, Name) {
  SvmClassifier svm;
  EXPECT_EQ(svm.name(), "svm");
}

}  // namespace
}  // namespace rfp
