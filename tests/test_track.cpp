/// rfp::track: mod-pi folding and continuous rotation unwrapping, motion
/// segmentation hysteresis, and the TrackingEngine lifecycle
/// (init/confirm/coast/drop, degraded survival, capacity eviction,
/// determinism of the event stream down to the wire bytes).

#include "rfp/track/tracking_engine.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/net/wire.hpp"

namespace rfp::track {
namespace {

// ---- fold_mod_pi --------------------------------------------------------

TEST(TrackRotationFold, IdentityInsideHalfPi) {
  EXPECT_EQ(fold_mod_pi(0.0), 0.0);
  EXPECT_NEAR(fold_mod_pi(0.3), 0.3, 1e-15);
  EXPECT_NEAR(fold_mod_pi(-0.3), -0.3, 1e-15);
  EXPECT_NEAR(fold_mod_pi(1.4), 1.4, 1e-15);
}

TEST(TrackRotationFold, WrapsAcrossTheSeam) {
  // The range is [-pi/2, pi/2): +pi/2 maps to -pi/2, a hair below stays.
  EXPECT_NEAR(fold_mod_pi(kPi / 2.0), -kPi / 2.0, 1e-12);
  EXPECT_NEAR(fold_mod_pi(kPi / 2.0 - 1e-6), kPi / 2.0 - 1e-6, 1e-12);
  EXPECT_NEAR(fold_mod_pi(kPi / 2.0 + 1e-6), -kPi / 2.0 + 1e-6, 1e-12);
  EXPECT_NEAR(fold_mod_pi(kPi), 0.0, 1e-12);
  EXPECT_NEAR(fold_mod_pi(kPi + 0.3), 0.3, 1e-12);
  EXPECT_NEAR(fold_mod_pi(-kPi + 0.3), 0.3, 1e-12);
}

TEST(TrackRotationFold, CongruentModPiOverASweep) {
  for (double d = -10.0; d <= 10.0; d += 0.0137) {
    const double f = fold_mod_pi(d);
    EXPECT_GE(f, -kPi / 2.0);
    EXPECT_LT(f, kPi / 2.0);
    // f == d (mod pi).
    EXPECT_NEAR(std::sin(f - d), 0.0, 1e-9) << "d=" << d;
  }
}

// ---- RotationTracker ----------------------------------------------------

TEST(TrackRotationUnwrap, TracksThroughManyHalfTurns) {
  RotationConfig config;
  config.measurement_sigma_rad = 0.02;
  RotationTracker rot(config);
  const double omega = 0.6;  // rad/s; well under pi/2 per 1 s fix
  for (int k = 0; k <= 30; ++k) {
    const double t = static_cast<double>(k);
    // The sensing pipeline reports alpha folded to [0, pi).
    const double alpha = std::fmod(omega * t, kPi);
    EXPECT_TRUE(rot.update(alpha, t)) << "t=" << t;
  }
  // 18 rad of cumulative rotation is ~5.7 half-turns: only the unwrapped
  // track can represent it.
  EXPECT_NEAR(rot.angle_rad(), omega * 30.0, 0.05);
  EXPECT_NEAR(rot.rate_rad_s(), omega, 0.01);
  EXPECT_GT(rot.angle_rad(), kPi);
}

TEST(TrackRotationUnwrap, SignedRateForReverseSpin) {
  RotationTracker rot;
  const double omega = -0.4;
  for (int k = 0; k <= 25; ++k) {
    const double t = static_cast<double>(k);
    double alpha = std::fmod(omega * t, kPi);
    if (alpha < 0.0) alpha += kPi;  // fold into [0, pi) like the solver
    rot.update(alpha, t);
  }
  EXPECT_NEAR(rot.rate_rad_s(), omega, 0.02);
  EXPECT_LT(rot.angle_rad(), -kPi);
}

TEST(TrackRotationUnwrap, GatesOutliersThenReanchors) {
  RotationTracker rot;  // defaults: gate 10.8, re-anchor after 3
  for (int k = 0; k <= 8; ++k) {
    ASSERT_TRUE(rot.update(0.3, static_cast<double>(k)));
  }
  ASSERT_NEAR(rot.angle_rad(), 0.3, 1e-6);
  // A gross orientation outlier is gated, twice ...
  EXPECT_FALSE(rot.update(1.85, 9.0));
  EXPECT_EQ(rot.rejected_in_a_row(), 1u);
  EXPECT_FALSE(rot.update(1.85, 10.0));
  // ... and the third in a row re-anchors at the nearest representative
  // (cumulative continuity) with the rate relearned from scratch.
  EXPECT_TRUE(rot.update(1.85, 11.0));
  EXPECT_EQ(rot.updates(), 1u);
  EXPECT_EQ(rot.rejected_in_a_row(), 0u);
  EXPECT_NEAR(std::sin(rot.angle_rad() - 1.85), 0.0, 1e-6);
  EXPECT_EQ(rot.rate_rad_s(), 0.0);
}

TEST(TrackRotationUnwrap, NonFiniteAlphaIgnored) {
  RotationTracker rot;
  EXPECT_FALSE(rot.update(std::numeric_limits<double>::quiet_NaN(), 0.0));
  EXPECT_FALSE(rot.initialized());
}

// ---- MotionSegmenter ----------------------------------------------------

MotionEvidence speed_evidence(double speed) {
  MotionEvidence e;
  e.fix_accepted = true;
  e.speed_m_s = speed;
  return e;
}

TEST(TrackSegmentation, TrackerEvidenceNeedsTheHold) {
  MotionSegmenter seg;  // hold_rounds = 2
  // One fast round is noise; the label holds.
  EXPECT_EQ(seg.update(speed_evidence(0.05)), MotionLabel::kStatic);
  // A second consecutive fast round flips it.
  EXPECT_EQ(seg.update(speed_evidence(0.05)), MotionLabel::kMoving);
  // Same on the way back down.
  EXPECT_EQ(seg.update(speed_evidence(0.0)), MotionLabel::kMoving);
  EXPECT_EQ(seg.update(speed_evidence(0.0)), MotionLabel::kStatic);
}

TEST(TrackSegmentation, InterruptedEvidenceRestartsTheHold) {
  MotionSegmenter seg;
  EXPECT_EQ(seg.update(speed_evidence(0.05)), MotionLabel::kStatic);
  EXPECT_EQ(seg.update(speed_evidence(0.0)), MotionLabel::kStatic);
  // The earlier fast round no longer counts toward the hold.
  EXPECT_EQ(seg.update(speed_evidence(0.05)), MotionLabel::kStatic);
  EXPECT_EQ(seg.update(speed_evidence(0.05)), MotionLabel::kMoving);
}

TEST(TrackSegmentation, MobilityRejectFlipsImmediately) {
  MotionSegmenter seg;
  MotionEvidence reject;
  reject.mobility_reject = true;
  // §V-C is direct physical evidence: no hysteresis on the way in.
  EXPECT_EQ(seg.update(reject), MotionLabel::kMoving);
  // Recovery is tracker-derived, so it still needs the hold.
  EXPECT_EQ(seg.update(speed_evidence(0.0)), MotionLabel::kMoving);
  EXPECT_EQ(seg.update(speed_evidence(0.0)), MotionLabel::kStatic);
}

TEST(TrackSegmentation, RotationOutranksTranslation) {
  MotionSegmenter seg;
  MotionEvidence e = speed_evidence(0.05);
  e.rotation_rate_rad_s = 0.2;
  seg.update(e);
  EXPECT_EQ(seg.update(e), MotionLabel::kRotating);
}

TEST(TrackSegmentation, InnovationAloneReadsAsTranslation) {
  MotionSegmenter seg;
  MotionEvidence e;
  e.fix_accepted = true;
  e.innovation2 = 9.0;  // above moving_innovation_chi2 = 6
  seg.update(e);
  EXPECT_EQ(seg.update(e), MotionLabel::kMoving);
}

// ---- TrackingEngine lifecycle -------------------------------------------

StreamedResult fix(const std::string& tag, double t, Vec2 p,
                   SensingGrade grade = SensingGrade::kFull,
                   double alpha = 0.4) {
  StreamedResult e;
  e.tag_id = tag;
  e.completed_at_s = t;
  e.result.valid = true;
  e.result.reject_reason = RejectReason::kNone;
  e.result.grade = grade;
  e.result.position = {p.x, p.y, 0.0};
  e.result.alpha = alpha;
  return e;
}

StreamedResult mobility_reject(const std::string& tag, double t) {
  StreamedResult e;
  e.tag_id = tag;
  e.completed_at_s = t;
  e.result.valid = false;
  e.result.reject_reason = RejectReason::kMobility;
  e.result.grade = SensingGrade::kRejected;
  return e;
}

TEST(TrackLifecycle, InitThenConfirmAtThreeFixes) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.observe(fix("tag", 10.0, {1.0, 1.0}));
  engine.observe(fix("tag", 20.0, {1.0, 1.0}));
  const auto events = engine.take_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TrackEventKind::kInit);
  EXPECT_EQ(events[1].kind, TrackEventKind::kUpdate);
  EXPECT_EQ(events[2].kind, TrackEventKind::kConfirm);
  EXPECT_TRUE(events[2].fix_accepted);
  EXPECT_EQ(events[2].updates, 3u);
  const auto snap = engine.track("tag");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->phase, TrackPhase::kConfirmed);
  EXPECT_EQ(engine.stats().tracks_confirmed, 1u);
}

TEST(TrackLifecycle, RejectedRoundNeverOpensATrack) {
  TrackingEngine engine;
  engine.observe(mobility_reject("tag", 0.0));
  EXPECT_EQ(engine.n_tracks(), 0u);
  EXPECT_TRUE(engine.take_events().empty());
  EXPECT_EQ(engine.stats().mobility_rejects_seen, 1u);
}

TEST(TrackLifecycle, CoastsThenDropsOnStaleness) {
  TrackingEngine engine;  // coast 30 s, drop 90 s
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.observe(fix("tag", 10.0, {1.0, 1.0}));
  engine.observe(fix("tag", 20.0, {1.0, 1.0}));
  engine.take_events();

  engine.advance(60.0);  // idle 40 s > 30
  auto events = engine.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TrackEventKind::kCoast);
  EXPECT_EQ(engine.track("tag")->phase, TrackPhase::kCoasting);
  // Coasting variance keeps growing with the prediction horizon.
  EXPECT_GT(events[0].position_variance,
            engine.track("tag")->kinematics.position_variance);

  engine.advance(80.0);  // still coasting: no repeat event
  EXPECT_TRUE(engine.take_events().empty());

  engine.advance(115.0);  // idle 95 s > 90
  events = engine.take_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TrackEventKind::kDrop);
  EXPECT_EQ(engine.n_tracks(), 0u);
  EXPECT_FALSE(engine.track("tag").has_value());
  EXPECT_EQ(engine.stats().tracks_coasted, 1u);
  EXPECT_EQ(engine.stats().tracks_dropped, 1u);
}

TEST(TrackLifecycle, FixAfterCoastRecoversTheTrack) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.observe(fix("tag", 10.0, {1.0, 1.0}));
  engine.observe(fix("tag", 20.0, {1.0, 1.0}));
  engine.advance(60.0);
  ASSERT_EQ(engine.track("tag")->phase, TrackPhase::kCoasting);
  engine.observe(fix("tag", 65.0, {1.0, 1.0}));
  EXPECT_EQ(engine.track("tag")->phase, TrackPhase::kConfirmed);
}

TEST(TrackLifecycle, DegradedFixesKeepTheTrackAlive) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.observe(fix("tag", 10.0, {1.0, 1.0}));
  engine.observe(fix("tag", 20.0, {1.02, 0.98}, SensingGrade::kDegraded));
  const auto events = engine.take_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].grade, SensingGrade::kDegraded);
  EXPECT_TRUE(events[2].fix_accepted);
  EXPECT_EQ(engine.stats().degraded_fixes_accepted, 1u);
  EXPECT_EQ(engine.stats().fixes_gated, 0u);
}

TEST(TrackLifecycle, GateStormReinitializesTheTrack) {
  TrackingEngine engine;  // tracker gate 13.8, re-init after 3
  for (int k = 0; k < 4; ++k) {
    engine.observe(fix("tag", 10.0 * k, {1.0, 1.0}));
  }
  engine.take_events();

  // The tag was re-shelved meters away: the first fixes there are gated,
  // the third re-anchors the track (kInit again, updates back to 1).
  engine.observe(fix("tag", 40.0, {3.0, 2.0}));
  engine.observe(fix("tag", 50.0, {3.0, 2.0}));
  engine.observe(fix("tag", 60.0, {3.0, 2.0}));
  const auto events = engine.take_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[0].fix_accepted);
  EXPECT_FALSE(events[1].fix_accepted);
  EXPECT_EQ(events[2].kind, TrackEventKind::kInit);
  EXPECT_TRUE(events[2].fix_accepted);
  EXPECT_EQ(events[2].updates, 1u);
  EXPECT_EQ(engine.stats().fixes_gated, 2u);
  EXPECT_EQ(engine.stats().tracks_started, 2u);
  EXPECT_EQ(engine.track("tag")->phase, TrackPhase::kTentative);
  EXPECT_NEAR(engine.track("tag")->kinematics.position.x, 3.0, 1e-9);
}

TEST(TrackLifecycle, CapacityEvictsTheStalestTrack) {
  TrackingConfig config;
  config.max_tracks = 2;
  TrackingEngine engine(config);
  engine.observe(fix("a", 0.0, {0.5, 0.5}));
  engine.observe(fix("b", 1.0, {1.0, 1.0}));
  engine.take_events();
  engine.observe(fix("c", 2.0, {1.5, 1.5}));
  const auto events = engine.take_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TrackEventKind::kDrop);
  EXPECT_EQ(events[0].tag_id, "a");
  EXPECT_EQ(events[1].kind, TrackEventKind::kInit);
  EXPECT_EQ(events[1].tag_id, "c");
  EXPECT_EQ(engine.n_tracks(), 2u);
  EXPECT_FALSE(engine.track("a").has_value());
}

TEST(TrackLifecycle, MobilityRejectSuppressesWarmStart) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  EXPECT_FALSE(engine.suppress_warm_start("tag"));
  EXPECT_FALSE(engine.suppress_warm_start("unknown"));

  engine.observe(mobility_reject("tag", 10.0));
  EXPECT_TRUE(engine.suppress_warm_start("tag"));
  const auto events = engine.take_events();
  EXPECT_EQ(events.back().label, MotionLabel::kMoving);
  EXPECT_FALSE(events.back().fix_accepted);

  // Two consecutive quiet rounds clear the label (hysteresis hold).
  engine.observe(fix("tag", 20.0, {1.0, 1.0}));
  engine.observe(fix("tag", 30.0, {1.0, 1.0}));
  EXPECT_FALSE(engine.suppress_warm_start("tag"));
}

TEST(TrackLifecycle, StaleFixDoesNotRewindTheFilter) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.observe(fix("tag", 10.0, {1.0, 1.0}));
  // A round completing out of order across polls must not move time
  // backwards inside the Kalman filters.
  engine.observe(fix("tag", 5.0, {1.0, 1.0}));
  EXPECT_EQ(engine.track("tag")->last_fix_time_s, 10.0);
  EXPECT_EQ(engine.stats().emissions_consumed, 3u);
}

TEST(TrackLifecycle, ClearDropsEverything) {
  TrackingEngine engine;
  engine.observe(fix("tag", 0.0, {1.0, 1.0}));
  engine.clear();
  EXPECT_EQ(engine.n_tracks(), 0u);
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.stats().emissions_consumed, 0u);
}

// ---- Determinism --------------------------------------------------------

std::vector<StreamedResult> mixed_sequence() {
  std::vector<StreamedResult> seq;
  for (int k = 0; k < 12; ++k) {
    const double t = 10.0 * k;
    seq.push_back(fix("a", t, {0.5 + 0.01 * k, 0.5}, SensingGrade::kFull,
                      std::fmod(0.2 * k, kPi)));
    if (k % 3 == 2) {
      seq.push_back(mobility_reject("b", t + 1.0));
    } else {
      seq.push_back(fix("b", t + 1.0, {1.2, 1.2 + 0.005 * k},
                        k % 2 == 0 ? SensingGrade::kFull
                                   : SensingGrade::kDegraded));
    }
  }
  return seq;
}

TEST(TrackDeterminism, SameEmissionsSameEventBytes) {
  const std::vector<StreamedResult> seq = mixed_sequence();

  // One engine consumes the whole sequence as one poll, another in
  // three chunks with interleaved clock advances: the canonical wire
  // encoding of the event streams must be byte-identical.
  TrackingEngine one;
  one.observe_emissions(seq, 130.0);
  const auto events_one = one.take_events();

  TrackingEngine chunked;
  const std::size_t third = seq.size() / 3;
  chunked.observe_emissions({seq.data(), third}, seq[third - 1].completed_at_s);
  chunked.observe_emissions({seq.data() + third, third},
                            seq[2 * third - 1].completed_at_s);
  chunked.observe_emissions({seq.data() + 2 * third, seq.size() - 2 * third},
                            130.0);
  const auto events_chunked = chunked.take_events();

  EXPECT_EQ(net::encode_track_events(events_one),
            net::encode_track_events(events_chunked));
  EXPECT_EQ(one.stats().fixes_accepted, chunked.stats().fixes_accepted);
}

TEST(TrackDeterminism, AttachedSinkLeavesEmissionsByteIdentical) {
  // The tracking seam must be observational: a StreamingSensor with a
  // TrackingEngine attached emits bit-identical results to one without
  // (for a static fleet the warm-start suppression never engages).
  static const Testbed bed;
  const TagState state = bed.tag_state({0.8, 1.2}, 0.5, "glass");
  const auto reads = round_to_reads(bed.collect(state, 77), bed.tag_id());

  StreamingSensor plain(bed.prism());
  plain.push(reads);
  const auto baseline = plain.poll();

  TrackingEngine engine;
  StreamingSensor tracked_sensor(bed.prism());
  tracked_sensor.attach_track_sink(&engine);
  tracked_sensor.push(reads);
  const auto tracked = tracked_sensor.poll();

  EXPECT_EQ(net::encode_stream_results(baseline),
            net::encode_stream_results(tracked));
  // And the sink really consumed the poll.
  EXPECT_EQ(engine.stats().emissions_consumed, tracked.size());
}

}  // namespace
}  // namespace rfp::track
