/// SensingEngine / sense_batch determinism contract: batch results are
/// byte-identical to the sequential sense() path — including degraded and
/// rejected rounds under fault injection — for any thread count, and the
/// engine-backed StreamingSensor emits the same per-round results as the
/// engine-less one.

#include "rfp/core/engine.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/rfsim/faults.hpp"

namespace rfp {
namespace {

/// Exact (bitwise on doubles) equality of everything sensing computes,
/// diagnostics included. No tolerances on purpose: bit-identity across
/// thread counts is the contract.
void expect_identical(const SensingResult& a, const SensingResult& b,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.grade, b.grade);
  EXPECT_EQ(a.excluded_antennas, b.excluded_antennas);
  EXPECT_EQ(a.unhealthy_antennas, b.unhealthy_antennas);
  EXPECT_EQ(a.position.x, b.position.x);
  EXPECT_EQ(a.position.y, b.position.y);
  EXPECT_EQ(a.position.z, b.position.z);
  EXPECT_EQ(a.position_residual, b.position_residual);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.polarization.x, b.polarization.x);
  EXPECT_EQ(a.polarization.y, b.polarization.y);
  EXPECT_EQ(a.polarization.z, b.polarization.z);
  EXPECT_EQ(a.orientation_residual, b.orientation_residual);
  EXPECT_EQ(a.kt, b.kt);
  EXPECT_EQ(a.bt, b.bt);
  EXPECT_EQ(a.material_signature, b.material_signature);
  ASSERT_EQ(a.lines.size(), b.lines.size());
  for (std::size_t i = 0; i < a.lines.size(); ++i) {
    EXPECT_EQ(a.lines[i].antenna, b.lines[i].antenna);
    EXPECT_EQ(a.lines[i].fit.slope, b.lines[i].fit.slope);
    EXPECT_EQ(a.lines[i].fit.intercept, b.lines[i].fit.intercept);
    EXPECT_EQ(a.lines[i].fit.rmse, b.lines[i].fit.rmse);
    EXPECT_EQ(a.lines[i].fit.n, b.lines[i].fit.n);
    EXPECT_EQ(a.lines[i].channel_inlier, b.lines[i].channel_inlier);
    EXPECT_EQ(a.lines[i].residual, b.lines[i].residual);
  }
}

/// A mixed corpus: clean rounds plus heavily faulted ones, so the batch
/// path is exercised across full, degraded, and rejected outcomes.
std::vector<RoundTrace> make_corpus(const Testbed& bed, std::size_t n_clean,
                                    std::size_t n_faulted) {
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(7, 0xC0FF));
  const auto materials = paper_materials();
  const FaultInjector injector(
      FaultProfile::scaled(0.8, mix_seed(7, 0xFA17)));
  for (std::size_t k = 0; k < n_clean + n_faulted; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi),
                                         materials[k % materials.size()]);
    RoundTrace round = bed.collect(state, 4000 + k);
    if (k >= n_clean) round = injector.apply(round, 4000 + k);
    corpus.push_back(std::move(round));
  }
  return corpus;
}

TEST(SensingEngine, ResolvesAtLeastOneThread) {
  SensingEngine engine(0);
  EXPECT_GE(engine.n_threads(), 1u);
  SensingEngine two(2);
  EXPECT_EQ(two.n_threads(), 2u);
}

TEST(SensingEngine, WorkspacePerThreadPlusCaller) {
  SensingEngine engine(3);
  // Valid slots: one per worker plus the calling thread's.
  for (std::size_t slot = 0; slot <= engine.n_threads(); ++slot) {
    engine.workspace(slot).vec(0, 4);
  }
  EXPECT_EQ(&engine.local_workspace(),
            &engine.workspace(engine.n_threads()));
}

TEST(SensingEngine, EngineSenseMatchesSequentialSense) {
  Testbed bed;
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 0);
  SensingEngine engine(4);
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult sequential = bed.prism().sense(corpus[k], bed.tag_id());
    const SensingResult pooled =
        bed.prism().sense(corpus[k], engine, bed.tag_id());
    expect_identical(pooled, sequential, "round " + std::to_string(k));
  }
}

TEST(SensingEngine, BatchBitIdenticalAcrossThreadCounts) {
  TestbedConfig config;
  config.n_antennas = 4;  // room for the degraded path to act
  Testbed bed(config);
  const std::vector<RoundTrace> corpus = make_corpus(bed, 4, 8);

  std::vector<SensingResult> reference;
  for (const RoundTrace& round : corpus) {
    reference.push_back(bed.prism().sense(round, bed.tag_id()));
  }
  // The faulted corpus must actually exercise more than one grade, or
  // this test is weaker than it claims.
  bool saw_non_full = false;
  for (const SensingResult& r : reference) {
    saw_non_full |= r.grade != SensingGrade::kFull;
  }
  EXPECT_TRUE(saw_non_full);

  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    SensingEngine engine(n_threads);
    // Twice per engine: a cold-workspace pass and a warm-workspace pass
    // must both match (results never depend on workspace history).
    for (int pass = 0; pass < 2; ++pass) {
      const std::vector<SensingResult> batch =
          bed.prism().sense_batch(corpus, engine, bed.tag_id());
      ASSERT_EQ(batch.size(), reference.size());
      for (std::size_t k = 0; k < batch.size(); ++k) {
        expect_identical(batch[k], reference[k],
                         "threads=" + std::to_string(n_threads) + " pass=" +
                             std::to_string(pass) + " round=" +
                             std::to_string(k));
      }
    }
  }
}

TEST(SensingEngine, BatchPerRoundTagIds) {
  Testbed bed;
  const std::vector<RoundTrace> corpus = make_corpus(bed, 3, 0);
  const std::vector<std::string> ids = {bed.tag_id(), "", bed.tag_id()};
  SensingEngine engine(2);
  const std::vector<SensingResult> batch =
      bed.prism().sense_batch(corpus, ids, engine);
  ASSERT_EQ(batch.size(), corpus.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const SensingResult sequential = bed.prism().sense(corpus[k], ids[k]);
    expect_identical(batch[k], sequential, "round " + std::to_string(k));
  }
}

TEST(SensingEngine, BatchRejectsMismatchedTagIds) {
  Testbed bed;
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 0);
  const std::vector<std::string> ids = {bed.tag_id()};  // 1 id, 2 rounds
  SensingEngine engine(2);
  EXPECT_THROW((void)bed.prism().sense_batch(corpus, ids, engine),
               InvalidArgument);
}

TEST(SensingEngine, BatchEmptyInputIsEmptyOutput) {
  Testbed bed;
  SensingEngine engine(2);
  EXPECT_TRUE(
      bed.prism().sense_batch(std::span<const RoundTrace>{}, engine).empty());
}

TEST(SensingEngine, StructuralErrorPropagatesFirstInInputOrder) {
  Testbed bed;
  std::vector<RoundTrace> corpus = make_corpus(bed, 3, 0);
  corpus[1].n_antennas += 1;  // structurally wrong: antenna count mismatch
  SensingEngine engine(4);
  EXPECT_THROW((void)bed.prism().sense_batch(corpus, engine, bed.tag_id()),
               InvalidArgument);
}

// ---- Streaming routed through the engine ------------------------------

/// Stream several tags' interleaved faulted reads through a sensor and
/// return everything it emitted.
std::vector<StreamedResult> run_stream(const Testbed& bed,
                                       SensingEngine* engine) {
  StreamingSensor sensor(bed.prism(), {}, engine);
  const FaultInjector injector(
      FaultProfile::scaled(0.6, mix_seed(11, 0xFA17)));
  Rng rng(mix_seed(11, 0x57A6));
  std::vector<StreamedResult> all;
  double clock = 0.0;
  for (int k = 0; k < 6; ++k) {
    for (int tag = 0; tag < 3; ++tag) {
      const Vec2 p{0.4 + 0.3 * tag, 0.5 + 0.1 * k};
      const TagState state = bed.tag_state(p, 0.3 + 0.2 * tag, "plastic");
      const std::uint64_t trial =
          6000 + static_cast<std::uint64_t>(3 * k + tag);
      const RoundTrace round = bed.collect(state, trial);
      auto reads = round_to_reads(round, "tag-" + std::to_string(tag));
      for (auto& read : reads) read.time_s += clock;
      sensor.push(injector.apply_stream(
          std::span<const TagRead>(reads.data(), reads.size()), trial));
    }
    clock += 11.0;
    for (auto& emitted : sensor.poll(clock)) all.push_back(std::move(emitted));
  }
  for (auto& emitted : sensor.poll(clock + 1000.0)) {
    all.push_back(std::move(emitted));
  }
  return all;
}

TEST(SensingEngine, StreamingEmissionsMatchEnginelessSensor) {
  TestbedConfig config;
  config.n_antennas = 4;
  Testbed bed(config);

  const std::vector<StreamedResult> sequential = run_stream(bed, nullptr);
  ASSERT_FALSE(sequential.empty());

  for (const std::size_t n_threads : {1u, 2u, 8u}) {
    SensingEngine engine(n_threads);
    const std::vector<StreamedResult> batched = run_stream(bed, &engine);
    ASSERT_EQ(batched.size(), sequential.size())
        << "threads=" << n_threads;
    for (std::size_t k = 0; k < batched.size(); ++k) {
      EXPECT_EQ(batched[k].tag_id, sequential[k].tag_id);
      EXPECT_EQ(batched[k].completed_at_s, sequential[k].completed_at_s);
      expect_identical(batched[k].result, sequential[k].result,
                       "threads=" + std::to_string(n_threads) + " emission=" +
                           std::to_string(k));
    }
  }
}

}  // namespace
}  // namespace rfp
