#include "rfp/rfsim/mobility.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/geom/frame.hpp"

namespace rfp {
namespace {

TagState base_state() {
  return TagState{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.3), "wood"};
}

TEST(Mobility, StaticTagNeverMoves) {
  const MobilityModel m = MobilityModel::static_tag(base_state());
  EXPECT_TRUE(m.is_static());
  for (double t : {0.0, 1.0, 5.0, 100.0}) {
    const TagState s = m.at(t);
    EXPECT_EQ(s.position, base_state().position);
    EXPECT_EQ(s.polarization, base_state().polarization);
    EXPECT_EQ(s.material, "wood");
  }
}

TEST(Mobility, LinearMotionIntegrates) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{0.1, -0.2, 0.0});
  const TagState s = m.at(2.0);
  EXPECT_NEAR(s.position.x, 1.2, 1e-12);
  EXPECT_NEAR(s.position.y, 0.6, 1e-12);
  EXPECT_FALSE(m.is_static());
  // Polarization untouched by translation.
  EXPECT_EQ(s.polarization, base_state().polarization);
}

TEST(Mobility, LinearMotionAtZeroIsStart) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{1.0, 1.0, 1.0});
  EXPECT_EQ(m.at(0.0).position, base_state().position);
}

TEST(Mobility, PlanarRotationAdvancesAngle) {
  const MobilityModel m =
      MobilityModel::planar_rotation(base_state(), deg2rad(10.0));
  const TagState s = m.at(3.0);
  const double expected = 0.3 + deg2rad(30.0);
  EXPECT_NEAR(planar_angle_error(
                  std::atan2(s.polarization.y, s.polarization.x), expected),
              0.0, 1e-9);
  // Position untouched by rotation.
  EXPECT_EQ(s.position, base_state().position);
}

TEST(Mobility, RotationPreservesUnitNorm) {
  const MobilityModel m = MobilityModel::planar_rotation(base_state(), 2.0);
  for (double t = 0.0; t < 10.0; t += 0.7) {
    EXPECT_NEAR(m.at(t).polarization.norm(), 1.0, 1e-12);
  }
}

TEST(Mobility, WindowedMotionClipsToWindow) {
  const MobilityModel m = MobilityModel::windowed_motion(
      base_state(), Vec3{0.1, 0.0, 0.0}, 2.0, 4.0);
  // Before the window: no displacement.
  EXPECT_EQ(m.at(1.0).position, base_state().position);
  // Inside: proportional displacement.
  EXPECT_NEAR(m.at(3.0).position.x, 1.1, 1e-12);
  // After: frozen at the window-end displacement.
  EXPECT_NEAR(m.at(10.0).position.x, 1.2, 1e-12);
}

TEST(Mobility, WaypointPathTravelsAndDwells) {
  // Leg 1: travel 2 s to (2, 1, 0), dwell 3 s. Leg 2: instant index to
  // (2, 2, 0), hold forever.
  const MobilityModel m = MobilityModel::waypoint_path(
      base_state(), {{Vec3{2.0, 1.0, 0.0}, 2.0, 3.0},
                     {Vec3{2.0, 2.0, 0.0}, 0.0, 1.0}});
  EXPECT_FALSE(m.is_static());
  EXPECT_EQ(m.at(0.0).position, base_state().position);
  // Mid-travel: halfway along leg 1.
  EXPECT_NEAR(m.at(1.0).position.x, 1.5, 1e-12);
  EXPECT_NEAR(m.at(1.0).position.y, 1.0, 1e-12);
  // Dwelling at waypoint 1.
  EXPECT_EQ(m.at(3.0).position, (Vec3{2.0, 1.0, 0.0}));
  EXPECT_EQ(m.at(4.9).position, (Vec3{2.0, 1.0, 0.0}));
  // The zero-travel leg is an instantaneous conveyor index.
  EXPECT_EQ(m.at(5.0).position, (Vec3{2.0, 2.0, 0.0}));
  // After the last waypoint the tag holds position forever.
  EXPECT_EQ(m.at(100.0).position, (Vec3{2.0, 2.0, 0.0}));
}

TEST(Mobility, WaypointPathEmptyIsStatic) {
  const MobilityModel m = MobilityModel::waypoint_path(base_state(), {});
  EXPECT_TRUE(m.is_static());
  EXPECT_EQ(m.at(42.0).position, base_state().position);
}

TEST(Mobility, WithTimeOffsetSlicesATrajectory) {
  // A long waypoint sweep sliced into per-round models: at(t) of the
  // offset model equals at(t + offset) of the original.
  const MobilityModel sweep = MobilityModel::waypoint_path(
      base_state(), {{Vec3{2.0, 1.0, 0.0}, 4.0, 2.0},
                     {Vec3{3.0, 1.0, 0.0}, 0.0, 10.0}});
  const MobilityModel round2 = sweep.with_time_offset(5.0);
  for (double t = 0.0; t < 8.0; t += 0.37) {
    EXPECT_EQ(round2.at(t).position, sweep.at(t + 5.0).position) << t;
  }
  // Offsets compose.
  const MobilityModel round3 = round2.with_time_offset(2.0);
  EXPECT_EQ(round3.at(0.0).position, sweep.at(7.0).position);
}

TEST(Mobility, WithTimeOffsetOnLinearMotion) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{0.1, 0.0, 0.0})
          .with_time_offset(3.0);
  EXPECT_NEAR(m.at(0.0).position.x, 1.3, 1e-12);
  EXPECT_NEAR(m.at(2.0).position.x, 1.5, 1e-12);
}

TEST(Mobility, MaterialCarriedThrough) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{1, 0, 0});
  EXPECT_EQ(m.at(5.0).material, "wood");
}

}  // namespace
}  // namespace rfp
