#include "rfp/rfsim/mobility.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/geom/frame.hpp"

namespace rfp {
namespace {

TagState base_state() {
  return TagState{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.3), "wood"};
}

TEST(Mobility, StaticTagNeverMoves) {
  const MobilityModel m = MobilityModel::static_tag(base_state());
  EXPECT_TRUE(m.is_static());
  for (double t : {0.0, 1.0, 5.0, 100.0}) {
    const TagState s = m.at(t);
    EXPECT_EQ(s.position, base_state().position);
    EXPECT_EQ(s.polarization, base_state().polarization);
    EXPECT_EQ(s.material, "wood");
  }
}

TEST(Mobility, LinearMotionIntegrates) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{0.1, -0.2, 0.0});
  const TagState s = m.at(2.0);
  EXPECT_NEAR(s.position.x, 1.2, 1e-12);
  EXPECT_NEAR(s.position.y, 0.6, 1e-12);
  EXPECT_FALSE(m.is_static());
  // Polarization untouched by translation.
  EXPECT_EQ(s.polarization, base_state().polarization);
}

TEST(Mobility, LinearMotionAtZeroIsStart) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{1.0, 1.0, 1.0});
  EXPECT_EQ(m.at(0.0).position, base_state().position);
}

TEST(Mobility, PlanarRotationAdvancesAngle) {
  const MobilityModel m =
      MobilityModel::planar_rotation(base_state(), deg2rad(10.0));
  const TagState s = m.at(3.0);
  const double expected = 0.3 + deg2rad(30.0);
  EXPECT_NEAR(planar_angle_error(
                  std::atan2(s.polarization.y, s.polarization.x), expected),
              0.0, 1e-9);
  // Position untouched by rotation.
  EXPECT_EQ(s.position, base_state().position);
}

TEST(Mobility, RotationPreservesUnitNorm) {
  const MobilityModel m = MobilityModel::planar_rotation(base_state(), 2.0);
  for (double t = 0.0; t < 10.0; t += 0.7) {
    EXPECT_NEAR(m.at(t).polarization.norm(), 1.0, 1e-12);
  }
}

TEST(Mobility, WindowedMotionClipsToWindow) {
  const MobilityModel m = MobilityModel::windowed_motion(
      base_state(), Vec3{0.1, 0.0, 0.0}, 2.0, 4.0);
  // Before the window: no displacement.
  EXPECT_EQ(m.at(1.0).position, base_state().position);
  // Inside: proportional displacement.
  EXPECT_NEAR(m.at(3.0).position.x, 1.1, 1e-12);
  // After: frozen at the window-end displacement.
  EXPECT_NEAR(m.at(10.0).position.x, 1.2, 1e-12);
}

TEST(Mobility, MaterialCarriedThrough) {
  const MobilityModel m =
      MobilityModel::linear_motion(base_state(), Vec3{1, 0, 0});
  EXPECT_EQ(m.at(5.0).material, "wood");
}

}  // namespace
}  // namespace rfp
