/// rfp::net wire protocol: payload codecs round-trip bit-exactly, the
/// frame decoder tolerates arbitrary fragmentation, and every class of
/// malformed input (truncated, oversized, bad magic/version, bit-flipped)
/// is rejected with an error status — never an exception, never a crash.
/// The fuzz cases here are the ASan job's hunting ground.

#include "rfp/net/wire.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/io/binary_io.hpp"

namespace rfp {
namespace {

using net::DecodeStatus;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::WireError;

RoundTrace sample_round(std::uint64_t trial = 1234) {
  static const Testbed bed;  // one testbed for the whole test binary
  Rng rng(mix_seed(trial, 0x31E));
  const TagState state = bed.tag_state(
      {0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()},
      rng.uniform(0.0, kPi), "plastic");
  return bed.collect(state, trial);
}

SensingResult sample_result(std::uint64_t trial = 1234) {
  static const Testbed bed;
  return bed.prism().sense(sample_round(trial), bed.tag_id());
}

void expect_rounds_equal(const RoundTrace& a, const RoundTrace& b) {
  EXPECT_EQ(a.n_antennas, b.n_antennas);
  EXPECT_EQ(a.duration_s, b.duration_s);
  ASSERT_EQ(a.dwells.size(), b.dwells.size());
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    EXPECT_EQ(a.dwells[i].antenna, b.dwells[i].antenna);
    EXPECT_EQ(a.dwells[i].channel, b.dwells[i].channel);
    EXPECT_EQ(a.dwells[i].frequency_hz, b.dwells[i].frequency_hz);
    EXPECT_EQ(a.dwells[i].start_time_s, b.dwells[i].start_time_s);
    EXPECT_EQ(a.dwells[i].phases, b.dwells[i].phases);
    EXPECT_EQ(a.dwells[i].rssi_dbm, b.dwells[i].rssi_dbm);
  }
}

TEST(WireCodec, RoundTripsRoundTraceBitExactly) {
  const RoundTrace round = sample_round();
  const std::vector<std::uint8_t> bytes = encode_round(round);
  RoundTrace decoded;
  ASSERT_TRUE(decode_round(bytes, decoded));
  expect_rounds_equal(round, decoded);
  // Determinism of the encoding itself: same round, same bytes.
  EXPECT_EQ(bytes, encode_round(decoded));
}

TEST(WireCodec, RoundTripsSensingResultBitExactly) {
  const SensingResult result = sample_result();
  ASSERT_TRUE(result.valid);  // a boring sample would prove nothing
  const std::vector<std::uint8_t> bytes = encode_result(result);
  SensingResult decoded;
  ASSERT_TRUE(decode_result(bytes, decoded));
  EXPECT_EQ(bytes, encode_result(decoded));
  EXPECT_EQ(result.position.x, decoded.position.x);
  EXPECT_EQ(result.alpha, decoded.alpha);
  EXPECT_EQ(result.kt, decoded.kt);
  EXPECT_EQ(result.material_signature, decoded.material_signature);
  ASSERT_EQ(result.lines.size(), decoded.lines.size());
  for (std::size_t i = 0; i < result.lines.size(); ++i) {
    EXPECT_EQ(result.lines[i].fit.slope, decoded.lines[i].fit.slope);
    EXPECT_EQ(result.lines[i].residual, decoded.lines[i].residual);
    EXPECT_EQ(result.lines[i].channel_inlier,
              decoded.lines[i].channel_inlier);
  }
}

TEST(WireCodec, RoundTripsRejectedResult) {
  SensingResult rejected;  // default: invalid, kRejected, kSolverFailure
  rejected.excluded_antennas = {1, 3};
  rejected.unhealthy_antennas = {3};
  const std::vector<std::uint8_t> bytes = encode_result(rejected);
  SensingResult decoded;
  ASSERT_TRUE(decode_result(bytes, decoded));
  EXPECT_FALSE(decoded.valid);
  EXPECT_EQ(decoded.grade, SensingGrade::kRejected);
  EXPECT_EQ(decoded.excluded_antennas, rejected.excluded_antennas);
  EXPECT_EQ(decoded.unhealthy_antennas, rejected.unhealthy_antennas);
}

TEST(WireCodec, SenseRequestRoundTrips) {
  const RoundTrace round = sample_round();
  const auto payload = net::encode_sense_request("tag-7", round);
  std::string tag_id;
  RoundTrace decoded;
  ASSERT_TRUE(net::decode_sense_request(payload, tag_id, decoded));
  EXPECT_EQ(tag_id, "tag-7");
  expect_rounds_equal(round, decoded);
}

TEST(WireCodec, ErrorPayloadRoundTrips) {
  const auto payload = net::encode_error_payload(
      WireError::kMalformedPayload, "no thanks");
  WireError code = WireError::kInternal;
  std::string message;
  ASSERT_TRUE(net::decode_error_payload(payload, code, message));
  EXPECT_EQ(code, WireError::kMalformedPayload);
  EXPECT_EQ(message, "no thanks");
}

TEST(WireCodec, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = encode_round(sample_round());
  bytes.push_back(0);
  RoundTrace decoded;
  EXPECT_FALSE(decode_round(bytes, decoded));
}

TEST(WireCodec, RejectsTruncatedPayloadAtEveryLength) {
  const SensingResult result = sample_result();
  const std::vector<std::uint8_t> bytes = encode_result(result);
  // Every strict prefix must fail cleanly (sampled stride keeps it fast).
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    SensingResult decoded;
    EXPECT_FALSE(decode_result({bytes.data(), n}, decoded)) << "len " << n;
  }
}

// ---- Frame layer -------------------------------------------------------

TEST(FrameDecoderTest, ParsesFramesFedOneByteAtATime) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = net::encode_frame(FrameType::kSenseRequest, 77, payload);
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed({&bytes[i], 1});
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kNeedMore) << "byte " << i;
  }
  decoder.feed({&bytes.back(), 1});
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kSenseRequest);
  EXPECT_EQ(frame.seq, 77u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, ParsesSeveralFramesFromOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const std::vector<std::uint8_t> payload(seq, static_cast<std::uint8_t>(seq));
    net::append_frame(stream, FrameType::kPing, seq, payload);
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
    EXPECT_EQ(frame.seq, seq);
    EXPECT_EQ(frame.payload.size(), seq);
  }
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
}

TEST(FrameDecoderTest, RejectsBadMagicAndStaysPoisoned) {
  auto bytes = net::encode_frame(FrameType::kPing, 1, {});
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
  // A poisoned decoder never recovers, even when valid bytes follow.
  decoder.feed(net::encode_frame(FrameType::kPing, 2, {}));
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
}

TEST(FrameDecoderTest, RejectsVersionMismatch) {
  auto bytes = net::encode_frame(FrameType::kPing, 1, {});
  bytes[4] = 0x7F;  // version field, low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
}

TEST(FrameDecoderTest, RejectsOversizedDeclaredPayload) {
  // Header declaring a payload bigger than the decoder's ceiling must be
  // rejected from the header alone — no waiting for (or allocating) the
  // declared bytes.
  FrameDecoder decoder(1024);
  const std::vector<std::uint8_t> payload(2048, 0xAB);
  decoder.feed(net::encode_frame(FrameType::kSenseRequest, 9, payload));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kOversized);
}

TEST(FrameDecoderTest, FuzzedFramesNeverCrashTheDecoder) {
  // Deterministic mutation fuzz over a real request frame: truncations,
  // bit flips, random splices — fed in random-sized chunks. The decoder
  // and payload codecs must stay total: any outcome is fine except a
  // crash, a throw, or an out-of-bounds read (ASan's department).
  const RoundTrace round = sample_round(77);
  const auto payload = net::encode_sense_request("tag-1", round);
  const auto pristine =
      net::encode_frame(FrameType::kSenseRequest, 42, payload);

  Rng rng(mix_seed(2024, 0xF022));
  std::size_t frames = 0, errors = 0;
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::vector<std::uint8_t> bytes = pristine;
    // Truncate or extend.
    if (rng.bernoulli(0.5)) {
      bytes.resize(rng.uniform_index(bytes.size() + 1));
    }
    // Flip a handful of random bits.
    const std::size_t flips = 1 + rng.uniform_index(8);
    for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.uniform_index(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    // Occasionally splice in garbage.
    if (rng.bernoulli(0.2)) {
      const std::size_t n = rng.uniform_index(64);
      for (std::size_t k = 0; k < n; ++k) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
      }
    }

    FrameDecoder decoder;
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t chunk =
          std::min(bytes.size() - offset, 1 + rng.uniform_index(977));
      decoder.feed({bytes.data() + offset, chunk});
      offset += chunk;
      for (;;) {
        Frame frame;
        const DecodeStatus status = decoder.next(frame);
        if (status == DecodeStatus::kFrame) {
          ++frames;
          // Whatever survived framing gets thrown at the payload codecs.
          std::string tag;
          RoundTrace decoded_round;
          (void)net::decode_sense_request(frame.payload, tag, decoded_round);
          SensingResult decoded_result;
          (void)net::decode_sense_response(frame.payload, decoded_result);
          WireError code;
          std::string message;
          (void)net::decode_error_payload(frame.payload, code, message);
          continue;
        }
        if (net::is_decode_error(status)) ++errors;
        break;
      }
    }
  }
  // Sanity: the fuzz actually produced both parses and rejections.
  EXPECT_GT(frames, 0u);
  EXPECT_GT(errors, 0u);
}

}  // namespace
}  // namespace rfp
