/// rfp::net wire protocol: payload codecs round-trip bit-exactly, the
/// frame decoder tolerates arbitrary fragmentation, and every class of
/// malformed input (truncated, oversized, bad magic/version, bit-flipped)
/// is rejected with an error status — never an exception, never a crash.
/// The fuzz cases here are the ASan job's hunting ground.

#include "rfp/net/wire.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/io/binary_io.hpp"

namespace rfp {
namespace {

using net::DecodeStatus;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::WireError;

RoundTrace sample_round(std::uint64_t trial = 1234) {
  static const Testbed bed;  // one testbed for the whole test binary
  Rng rng(mix_seed(trial, 0x31E));
  const TagState state = bed.tag_state(
      {0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()},
      rng.uniform(0.0, kPi), "plastic");
  return bed.collect(state, trial);
}

SensingResult sample_result(std::uint64_t trial = 1234) {
  static const Testbed bed;
  return bed.prism().sense(sample_round(trial), bed.tag_id());
}

void expect_rounds_equal(const RoundTrace& a, const RoundTrace& b) {
  EXPECT_EQ(a.n_antennas, b.n_antennas);
  EXPECT_EQ(a.duration_s, b.duration_s);
  ASSERT_EQ(a.dwells.size(), b.dwells.size());
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    EXPECT_EQ(a.dwells[i].antenna, b.dwells[i].antenna);
    EXPECT_EQ(a.dwells[i].channel, b.dwells[i].channel);
    EXPECT_EQ(a.dwells[i].frequency_hz, b.dwells[i].frequency_hz);
    EXPECT_EQ(a.dwells[i].start_time_s, b.dwells[i].start_time_s);
    EXPECT_EQ(a.dwells[i].phases, b.dwells[i].phases);
    EXPECT_EQ(a.dwells[i].rssi_dbm, b.dwells[i].rssi_dbm);
  }
}

TEST(WireCodec, RoundTripsRoundTraceBitExactly) {
  const RoundTrace round = sample_round();
  const std::vector<std::uint8_t> bytes = encode_round(round);
  RoundTrace decoded;
  ASSERT_TRUE(decode_round(bytes, decoded));
  expect_rounds_equal(round, decoded);
  // Determinism of the encoding itself: same round, same bytes.
  EXPECT_EQ(bytes, encode_round(decoded));
}

TEST(WireCodec, RoundTripsSensingResultBitExactly) {
  const SensingResult result = sample_result();
  ASSERT_TRUE(result.valid);  // a boring sample would prove nothing
  const std::vector<std::uint8_t> bytes = encode_result(result);
  SensingResult decoded;
  ASSERT_TRUE(decode_result(bytes, decoded));
  EXPECT_EQ(bytes, encode_result(decoded));
  EXPECT_EQ(result.position.x, decoded.position.x);
  EXPECT_EQ(result.alpha, decoded.alpha);
  EXPECT_EQ(result.kt, decoded.kt);
  EXPECT_EQ(result.material_signature, decoded.material_signature);
  ASSERT_EQ(result.lines.size(), decoded.lines.size());
  for (std::size_t i = 0; i < result.lines.size(); ++i) {
    EXPECT_EQ(result.lines[i].fit.slope, decoded.lines[i].fit.slope);
    EXPECT_EQ(result.lines[i].residual, decoded.lines[i].residual);
    EXPECT_EQ(result.lines[i].channel_inlier,
              decoded.lines[i].channel_inlier);
  }
}

TEST(WireCodec, RoundTripsRejectedResult) {
  SensingResult rejected;  // default: invalid, kRejected, kSolverFailure
  rejected.excluded_antennas = {1, 3};
  rejected.unhealthy_antennas = {3};
  const std::vector<std::uint8_t> bytes = encode_result(rejected);
  SensingResult decoded;
  ASSERT_TRUE(decode_result(bytes, decoded));
  EXPECT_FALSE(decoded.valid);
  EXPECT_EQ(decoded.grade, SensingGrade::kRejected);
  EXPECT_EQ(decoded.excluded_antennas, rejected.excluded_antennas);
  EXPECT_EQ(decoded.unhealthy_antennas, rejected.unhealthy_antennas);
}

TEST(WireCodec, SenseRequestRoundTrips) {
  const RoundTrace round = sample_round();
  const auto payload = net::encode_sense_request("tag-7", round);
  std::string tag_id;
  RoundTrace decoded;
  ASSERT_TRUE(net::decode_sense_request(payload, tag_id, decoded));
  EXPECT_EQ(tag_id, "tag-7");
  expect_rounds_equal(round, decoded);
}

TEST(WireCodec, ErrorPayloadRoundTrips) {
  const auto payload = net::encode_error_payload(
      WireError::kMalformedPayload, "no thanks");
  WireError code = WireError::kInternal;
  std::string message;
  ASSERT_TRUE(net::decode_error_payload(payload, code, message));
  EXPECT_EQ(code, WireError::kMalformedPayload);
  EXPECT_EQ(message, "no thanks");
}

TEST(WireCodec, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = encode_round(sample_round());
  bytes.push_back(0);
  RoundTrace decoded;
  EXPECT_FALSE(decode_round(bytes, decoded));
}

TEST(WireCodec, RejectsTruncatedPayloadAtEveryLength) {
  const SensingResult result = sample_result();
  const std::vector<std::uint8_t> bytes = encode_result(result);
  // Every strict prefix must fail cleanly (sampled stride keeps it fast).
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    SensingResult decoded;
    EXPECT_FALSE(decode_result({bytes.data(), n}, decoded)) << "len " << n;
  }
}

// ---- v2 session / streaming codecs -------------------------------------

TEST(WireCodec, SessionSetupRoundTripsBitExactly) {
  static const Testbed bed;
  net::SessionSetup setup;
  setup.geometry = bed.prism().config().geometry;
  setup.calibrations = bed.prism().calibrations();
  setup.enable_drift = true;

  const std::vector<std::uint8_t> bytes = net::encode_session_setup(setup);
  net::SessionSetup decoded;
  ASSERT_TRUE(net::decode_session_setup(bytes, decoded));
  EXPECT_TRUE(decoded.enable_drift);
  EXPECT_EQ(decoded.geometry.n_antennas(), setup.geometry.n_antennas());
  EXPECT_EQ(decoded.calibrations.n_tags(), setup.calibrations.n_tags());
  // Re-encoding the decoded deployment reproduces the exact bytes — the
  // property the registry's digest keying depends on.
  EXPECT_EQ(bytes, net::encode_session_setup(decoded));
}

TEST(WireCodec, SessionSetupRejectsTruncationAndTrailingBytes) {
  static const Testbed bed;
  net::SessionSetup setup;
  setup.geometry = bed.prism().config().geometry;
  setup.calibrations = bed.prism().calibrations();
  std::vector<std::uint8_t> bytes = net::encode_session_setup(setup);
  net::SessionSetup decoded;
  for (std::size_t n = 0; n < bytes.size(); n += 11) {
    EXPECT_FALSE(net::decode_session_setup({bytes.data(), n}, decoded))
        << "len " << n;
  }
  bytes.push_back(0);
  EXPECT_FALSE(net::decode_session_setup(bytes, decoded));
}

TEST(WireCodec, SessionReadyRoundTrips) {
  net::SessionReady ready;
  ready.digest = 0xDEADBEEFCAFEF00Dull;
  ready.n_antennas = 4;
  ready.drift_enabled = true;
  const auto bytes = net::encode_session_ready(ready);
  net::SessionReady decoded;
  ASSERT_TRUE(net::decode_session_ready(bytes, decoded));
  EXPECT_EQ(decoded.digest, ready.digest);
  EXPECT_EQ(decoded.n_antennas, 4u);
  EXPECT_TRUE(decoded.drift_enabled);
  EXPECT_EQ(bytes, net::encode_session_ready(decoded));
}

TEST(WireCodec, StreamPushRoundTripsBitExactly) {
  static const Testbed bed;
  const std::vector<TagRead> reads =
      round_to_reads(sample_round(555), "stream-tag");
  ASSERT_FALSE(reads.empty());

  const auto bytes = net::encode_stream_push(12.75, reads);
  double now_s = 0.0;
  std::vector<TagRead> decoded;
  ASSERT_TRUE(net::decode_stream_push(bytes, now_s, decoded));
  EXPECT_EQ(now_s, 12.75);
  ASSERT_EQ(decoded.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(decoded[i].tag_id, reads[i].tag_id);
    EXPECT_EQ(decoded[i].antenna, reads[i].antenna);
    EXPECT_EQ(decoded[i].channel, reads[i].channel);
    EXPECT_EQ(decoded[i].frequency_hz, reads[i].frequency_hz);
    EXPECT_EQ(decoded[i].time_s, reads[i].time_s);
    EXPECT_EQ(decoded[i].phase, reads[i].phase);
    EXPECT_EQ(decoded[i].rssi_dbm, reads[i].rssi_dbm);
  }
  EXPECT_EQ(bytes, net::encode_stream_push(now_s, decoded));

  // An empty push (a pure clock tick) is legal and round-trips too.
  const auto tick = net::encode_stream_push(99.0, {});
  ASSERT_TRUE(net::decode_stream_push(tick, now_s, decoded));
  EXPECT_EQ(now_s, 99.0);
  EXPECT_TRUE(decoded.empty());
}

TEST(WireCodec, StreamResultsRoundTripBitExactly) {
  static const Testbed bed;
  StreamedResult emission;
  emission.tag_id = "tag-9";
  emission.completed_at_s = 3.5;
  emission.result = sample_result(77);
  StreamedResult rejected;
  rejected.tag_id = "tag-x";
  rejected.completed_at_s = 4.0;  // result stays default: invalid/kRejected
  const std::vector<StreamedResult> results = {emission, rejected};

  const auto bytes = net::encode_stream_results(results);
  std::vector<StreamedResult> decoded;
  ASSERT_TRUE(net::decode_stream_results(bytes, decoded));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].tag_id, "tag-9");
  EXPECT_EQ(decoded[0].completed_at_s, 3.5);
  EXPECT_EQ(decoded[0].result.position.x, emission.result.position.x);
  EXPECT_EQ(decoded[0].result.kt, emission.result.kt);
  EXPECT_FALSE(decoded[1].result.valid);
  EXPECT_EQ(bytes, net::encode_stream_results(decoded));
}

TEST(WireCodec, TrackEventsRoundTripBitExactly) {
  track::TrackEvent confirm;
  confirm.tag_id = "pallet-7";
  confirm.time_s = 41.5;
  confirm.kind = track::TrackEventKind::kConfirm;
  confirm.label = track::MotionLabel::kMoving;
  confirm.grade = SensingGrade::kDegraded;
  confirm.fix_accepted = true;
  confirm.position = {0.75, 1.25};
  confirm.velocity = {0.004, -0.002};
  confirm.position_variance = 1.5e-3;
  confirm.angle_rad = 7.25;  // > pi: only the unwrapped track holds this
  confirm.rate_rad_s = -0.5;
  confirm.updates = 3;
  track::TrackEvent drop;  // all-default second event
  drop.tag_id = "pallet-8";
  const std::vector<track::TrackEvent> events = {confirm, drop};

  const auto bytes = net::encode_track_events(events);
  std::vector<track::TrackEvent> decoded;
  ASSERT_TRUE(net::decode_track_events(bytes, decoded));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].tag_id, "pallet-7");
  EXPECT_EQ(decoded[0].time_s, 41.5);
  EXPECT_EQ(decoded[0].kind, track::TrackEventKind::kConfirm);
  EXPECT_EQ(decoded[0].label, track::MotionLabel::kMoving);
  EXPECT_EQ(decoded[0].grade, SensingGrade::kDegraded);
  EXPECT_TRUE(decoded[0].fix_accepted);
  EXPECT_EQ(decoded[0].position.x, 0.75);
  EXPECT_EQ(decoded[0].velocity.y, -0.002);
  EXPECT_EQ(decoded[0].position_variance, 1.5e-3);
  EXPECT_EQ(decoded[0].angle_rad, 7.25);
  EXPECT_EQ(decoded[0].rate_rad_s, -0.5);
  EXPECT_EQ(decoded[0].updates, 3u);
  EXPECT_EQ(decoded[1].tag_id, "pallet-8");
  EXPECT_EQ(decoded[1].kind, track::TrackEventKind::kUpdate);
  EXPECT_EQ(bytes, net::encode_track_events(decoded));

  // An empty event list (a quiet poll) is legal and round-trips too.
  const auto quiet = net::encode_track_events({});
  ASSERT_TRUE(net::decode_track_events(quiet, decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(WireCodec, TrackEventsRejectTruncationAndBadEnums) {
  track::TrackEvent event;
  event.tag_id = "t";
  std::vector<std::uint8_t> bytes =
      net::encode_track_events(std::vector<track::TrackEvent>{event});
  std::vector<track::TrackEvent> decoded;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(net::decode_track_events({bytes.data(), n}, decoded))
        << "len " << n;
  }
  bytes.push_back(0);
  EXPECT_FALSE(net::decode_track_events(bytes, decoded));
  bytes.pop_back();

  // Layout: u32 count, u32 tag length, the 1-byte tag, f64 time, then
  // the kind/label/grade/accepted bytes. Out-of-range enums must reject.
  const std::size_t kind_at = 4 + 4 + 1 + 8;
  for (std::size_t off = 0; off < 4; ++off) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[kind_at + off] = 0xFF;
    EXPECT_FALSE(net::decode_track_events(mutated, decoded)) << "byte " << off;
  }
}

TEST(WireCodec, SessionOptionBitsCarryTracking) {
  static const Testbed bed;
  net::SessionSetup setup;
  setup.geometry = bed.prism().config().geometry;
  setup.calibrations = bed.prism().calibrations();
  setup.enable_drift = false;
  setup.enable_tracking = true;

  const auto bytes = net::encode_session_setup(setup);
  net::SessionSetup decoded;
  ASSERT_TRUE(net::decode_session_setup(bytes, decoded));
  EXPECT_FALSE(decoded.enable_drift);
  EXPECT_TRUE(decoded.enable_tracking);
  EXPECT_EQ(bytes, net::encode_session_setup(decoded));

  // Both option bits set at once survive the shared flag byte.
  setup.enable_drift = true;
  ASSERT_TRUE(
      net::decode_session_setup(net::encode_session_setup(setup), decoded));
  EXPECT_TRUE(decoded.enable_drift);
  EXPECT_TRUE(decoded.enable_tracking);

  net::SessionReady ready;
  ready.digest = 7;
  ready.n_antennas = 4;
  ready.tracking_enabled = true;
  net::SessionReady ready_decoded;
  ASSERT_TRUE(net::decode_session_ready(net::encode_session_ready(ready),
                                        ready_decoded));
  EXPECT_TRUE(ready_decoded.tracking_enabled);
  EXPECT_FALSE(ready_decoded.drift_enabled);
}

TEST(WireCodec, V2PayloadsRejectTruncationAtEveryLength) {
  const std::vector<TagRead> reads =
      round_to_reads(sample_round(556), "t");
  const auto push = net::encode_stream_push(1.0, reads);
  double now_s;
  std::vector<TagRead> decoded_reads;
  for (std::size_t n = 0; n < push.size(); n += 13) {
    EXPECT_FALSE(
        net::decode_stream_push({push.data(), n}, now_s, decoded_reads))
        << "push len " << n;
  }

  StreamedResult emission;
  emission.tag_id = "t";
  emission.result = sample_result(78);
  const auto results =
      net::encode_stream_results(std::vector<StreamedResult>{emission});
  std::vector<StreamedResult> decoded_results;
  for (std::size_t n = 0; n < results.size(); n += 13) {
    EXPECT_FALSE(net::decode_stream_results({results.data(), n},
                                            decoded_results))
        << "results len " << n;
  }
}

// ---- Frame layer -------------------------------------------------------

TEST(FrameDecoderTest, ParsesFramesFedOneByteAtATime) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = net::encode_frame(FrameType::kSenseRequest, 77, payload);
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed({&bytes[i], 1});
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kNeedMore) << "byte " << i;
  }
  decoder.feed({&bytes.back(), 1});
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kSenseRequest);
  EXPECT_EQ(frame.seq, 77u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, ParsesSeveralFramesFromOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const std::vector<std::uint8_t> payload(seq, static_cast<std::uint8_t>(seq));
    net::append_frame(stream, FrameType::kPing, seq, payload);
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
    EXPECT_EQ(frame.seq, seq);
    EXPECT_EQ(frame.payload.size(), seq);
  }
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
}

TEST(FrameDecoderTest, RejectsBadMagicAndStaysPoisoned) {
  auto bytes = net::encode_frame(FrameType::kPing, 1, {});
  bytes[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
  // A poisoned decoder never recovers, even when valid bytes follow.
  decoder.feed(net::encode_frame(FrameType::kPing, 2, {}));
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadMagic);
}

TEST(FrameDecoderTest, RejectsVersionMismatch) {
  auto bytes = net::encode_frame(FrameType::kPing, 1, {});
  bytes[4] = 0x7F;  // version field, low byte
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
}

TEST(FrameDecoderTest, RecordsPeerVersionOnMismatch) {
  // The version-negotiation goodbye needs the *peer's* version: the
  // decoder must remember what the mismatched header carried.
  FrameDecoder decoder;
  EXPECT_EQ(decoder.peer_version(), 0u);  // nothing seen yet
  decoder.feed(net::encode_frame(FrameType::kPing, 1, {}, /*version=*/1));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
  EXPECT_EQ(decoder.peer_version(), 1u);

  // And the error latches like every other framing failure.
  decoder.feed(net::encode_frame(FrameType::kPing, 2, {}));
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kBadVersion);
  EXPECT_EQ(decoder.peer_version(), 1u);
}

TEST(FrameDecoderTest, CurrentVersionFrameCarriesConfiguredVersion) {
  // encode_frame's version parameter defaults to kVersion and lands in
  // the header bytes the decoder accepts.
  const auto bytes = net::encode_frame(FrameType::kPong, 3, {});
  EXPECT_EQ(bytes[4] | (bytes[5] << 8), net::kVersion);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
}

TEST(FrameDecoderTest, RejectsOversizedDeclaredPayload) {
  // Header declaring a payload bigger than the decoder's ceiling must be
  // rejected from the header alone — no waiting for (or allocating) the
  // declared bytes.
  FrameDecoder decoder(1024);
  const std::vector<std::uint8_t> payload(2048, 0xAB);
  decoder.feed(net::encode_frame(FrameType::kSenseRequest, 9, payload));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kOversized);
}

TEST(FrameDecoderTest, FuzzedFramesNeverCrashTheDecoder) {
  // Deterministic mutation fuzz over a real request frame: truncations,
  // bit flips, random splices — fed in random-sized chunks. The decoder
  // and payload codecs must stay total: any outcome is fine except a
  // crash, a throw, or an out-of-bounds read (ASan's department).
  const RoundTrace round = sample_round(77);
  const auto payload = net::encode_sense_request("tag-1", round);
  const auto pristine =
      net::encode_frame(FrameType::kSenseRequest, 42, payload);

  Rng rng(mix_seed(2024, 0xF022));
  std::size_t frames = 0, errors = 0;
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::vector<std::uint8_t> bytes = pristine;
    // Truncate or extend.
    if (rng.bernoulli(0.5)) {
      bytes.resize(rng.uniform_index(bytes.size() + 1));
    }
    // Flip a handful of random bits.
    const std::size_t flips = 1 + rng.uniform_index(8);
    for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.uniform_index(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    }
    // Occasionally splice in garbage.
    if (rng.bernoulli(0.2)) {
      const std::size_t n = rng.uniform_index(64);
      for (std::size_t k = 0; k < n; ++k) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
      }
    }

    FrameDecoder decoder;
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t chunk =
          std::min(bytes.size() - offset, 1 + rng.uniform_index(977));
      decoder.feed({bytes.data() + offset, chunk});
      offset += chunk;
      for (;;) {
        Frame frame;
        const DecodeStatus status = decoder.next(frame);
        if (status == DecodeStatus::kFrame) {
          ++frames;
          // Whatever survived framing gets thrown at the payload codecs.
          std::string tag;
          RoundTrace decoded_round;
          (void)net::decode_sense_request(frame.payload, tag, decoded_round);
          SensingResult decoded_result;
          (void)net::decode_sense_response(frame.payload, decoded_result);
          WireError code;
          std::string message;
          (void)net::decode_error_payload(frame.payload, code, message);
          continue;
        }
        if (net::is_decode_error(status)) ++errors;
        break;
      }
    }
  }
  // Sanity: the fuzz actually produced both parses and rejections.
  EXPECT_GT(frames, 0u);
  EXPECT_GT(errors, 0u);
}

// -- FrameView lifetime contract ------------------------------------------
// next(FrameView&) hands out spans into the decoder's own storage. These
// suites pin the two halves of the contract — feed() never invalidates an
// outstanding view (even when it must reallocate), and compaction between
// frames never corrupts pending bytes. Every span is read byte-by-byte
// after the hazardous operation, so a stale pointer is an ASan report,
// not a silent pass.

std::vector<std::uint8_t> patterned(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 131u);
  }
  return out;
}

TEST(FrameViewTest, PayloadMatchesCopyingApiExactly) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    net::append_frame(stream, FrameType::kStreamPush, seq,
                      patterned(seq * 37, static_cast<std::uint8_t>(seq)));
  }
  FrameDecoder by_view;
  FrameDecoder by_copy;
  by_view.feed(stream);
  by_copy.feed(stream);
  for (;;) {
    net::FrameView view;
    Frame frame;
    const DecodeStatus vs = by_view.next(view);
    const DecodeStatus fs = by_copy.next(frame);
    ASSERT_EQ(vs, fs);
    if (vs != DecodeStatus::kFrame) break;
    EXPECT_EQ(view.type, frame.type);
    EXPECT_EQ(view.seq, frame.seq);
    ASSERT_EQ(view.payload.size(), frame.payload.size());
    EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                           frame.payload.begin()));
  }
}

TEST(FrameViewTest, ViewSurvivesReallocatingFeeds) {
  // Hold a view while later feeds force the decoder's buffer to
  // reallocate repeatedly. The retired-block mechanism must keep the
  // viewed bytes alive and unmoved through all of it.
  const std::vector<std::uint8_t> first_payload = patterned(100, 7);
  const std::vector<std::uint8_t> big_payload = patterned(256 * 1024, 43);
  const auto first = net::encode_frame(FrameType::kPing, 1, first_payload);
  const auto big =
      net::encode_frame(FrameType::kSenseRequest, 2, big_payload);

  FrameDecoder decoder;
  decoder.feed(first);
  net::FrameView view;
  ASSERT_EQ(decoder.next(view), DecodeStatus::kFrame);
  ASSERT_EQ(view.payload.size(), first_payload.size());
  const std::uint8_t* before = view.payload.data();

  // Feed the big frame in chunks; several of these appends overflow the
  // current capacity and reallocate under the outstanding view.
  constexpr std::size_t kChunk = 64 * 1024;
  for (std::size_t off = 0; off < big.size(); off += kChunk) {
    decoder.feed({big.data() + off, std::min(kChunk, big.size() - off)});
    EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                           first_payload.begin()))
        << "view corrupted after feeding " << off + kChunk << " bytes";
  }
  // The span must not have been moved out from under the caller either.
  EXPECT_EQ(view.payload.data(), before);

  ASSERT_EQ(decoder.next(view), DecodeStatus::kFrame);
  EXPECT_EQ(view.seq, 2u);
  ASSERT_EQ(view.payload.size(), big_payload.size());
  EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                         big_payload.begin()));
}

TEST(FrameViewTest, CompactionBetweenFramesPreservesPendingBytes) {
  // Many KB-sized frames parsed from one feed: the dead-prefix erase
  // triggers repeatedly mid-stream, and every later payload must still
  // read back exactly.
  std::vector<std::uint8_t> stream;
  constexpr std::uint32_t kFrames = 64;
  for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
    net::append_frame(stream, FrameType::kStreamPush, seq,
                      patterned(1024 + seq, static_cast<std::uint8_t>(seq)));
  }
  FrameDecoder decoder;
  decoder.feed(stream);
  for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
    net::FrameView view;
    ASSERT_EQ(decoder.next(view), DecodeStatus::kFrame) << "frame " << seq;
    EXPECT_EQ(view.seq, seq);
    const std::vector<std::uint8_t> expect =
        patterned(1024 + seq, static_cast<std::uint8_t>(seq));
    ASSERT_EQ(view.payload.size(), expect.size());
    EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                           expect.begin()));
  }
  net::FrameView view;
  EXPECT_EQ(decoder.next(view), DecodeStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameViewTest, FuzzedFeedsNeverInvalidateAnOutstandingView) {
  // Randomized interleaving of feed() and next(FrameView&): after every
  // feed, the most recent view (obtained before that feed) is re-read in
  // full and compared against its snapshot. Chunk sizes are drawn to
  // straddle every boundary — sub-header, mid-payload, multi-frame.
  Rng rng(mix_seed(2026, 0xFEED));
  std::size_t frames = 0, survivals = 0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::vector<std::uint8_t> stream;
    const std::size_t n_frames = 1 + rng.uniform_index(8);
    for (std::size_t f = 0; f < n_frames; ++f) {
      net::append_frame(
          stream, FrameType::kStreamPush, static_cast<std::uint32_t>(f),
          patterned(rng.uniform_index(4096), static_cast<std::uint8_t>(f)));
    }
    FrameDecoder decoder;
    net::FrameView view;
    std::vector<std::uint8_t> snapshot;
    bool view_live = false;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk =
          std::min(stream.size() - offset, 1 + rng.uniform_index(1500));
      decoder.feed({stream.data() + offset, chunk});
      offset += chunk;
      if (view_live) {
        ASSERT_EQ(view.payload.size(), snapshot.size());
        ASSERT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                               snapshot.begin()))
            << "iteration " << iteration;
        ++survivals;
      }
      // At most one next() per feed so the view obtained here is the one
      // still outstanding when the following feed lands.
      if (decoder.next(view) == DecodeStatus::kFrame) {
        snapshot.assign(view.payload.begin(), view.payload.end());
        view_live = true;
        ++frames;
      } else {
        view_live = false;
      }
    }
    // Drain what the one-next-per-feed pacing left buffered.
    while (decoder.next(view) == DecodeStatus::kFrame) ++frames;
  }
  // Sanity: the interleaving actually exercised the hazard.
  EXPECT_GT(frames, 0u);
  EXPECT_GT(survivals, 0u);
}

}  // namespace
}  // namespace rfp
