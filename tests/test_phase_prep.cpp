#include "rfp/dsp/phase_prep.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(AggregateDwell, CleanReadsAverage) {
  const std::vector<double> reads{1.00, 1.02, 0.98, 1.01, 0.99};
  const ChannelPhase cp = aggregate_dwell(915e6, reads);
  EXPECT_NEAR(cp.phase, 1.0, 0.01);
  EXPECT_EQ(cp.n_reads, 5u);
  EXPECT_LT(cp.spread, 0.05);
}

TEST(AggregateDwell, CorrectsMinorityPiJumps) {
  // 2 of 7 reads offset by pi: majority restores the true value.
  std::vector<double> reads{1.0, 1.0, 1.0, 1.0, 1.0,
                            wrap_to_2pi(1.0 + kPi), wrap_to_2pi(1.0 + kPi)};
  const ChannelPhase cp = aggregate_dwell(915e6, reads);
  EXPECT_NEAR(std::abs(ang_diff(cp.phase, 1.0)), 0.0, 1e-9);
}

TEST(AggregateDwell, MajorityFlippedLandsOnPiOffset) {
  // When most reads carry the pi offset, the dwell reports the offset
  // value (per-dwell majority cannot know better; the fitter's global
  // parity vote resolves it).
  std::vector<double> reads{wrap_to_2pi(1.0 + kPi), wrap_to_2pi(1.0 + kPi),
                            wrap_to_2pi(1.0 + kPi), 1.0};
  const ChannelPhase cp = aggregate_dwell(915e6, reads);
  EXPECT_NEAR(std::abs(ang_diff(cp.phase, 1.0 + kPi)), 0.0, 1e-9);
}

TEST(AggregateDwell, WrapBoundaryCluster) {
  // Reads straddling the 0/2*pi seam must not average to ~pi.
  const std::vector<double> reads{0.05, kTwoPi - 0.05, 0.02, kTwoPi - 0.02};
  const ChannelPhase cp = aggregate_dwell(915e6, reads);
  EXPECT_LT(std::abs(ang_diff(cp.phase, 0.0)), 0.01);
}

TEST(AggregateDwell, NoisyPiJumpMix) {
  Rng rng(81);
  for (int trial = 0; trial < 200; ++trial) {
    const double truth = rng.uniform(0.0, kTwoPi);
    std::vector<double> reads;
    for (int i = 0; i < 24; ++i) {
      double v = truth + rng.gaussian(0.0, 0.05);
      if (rng.bernoulli(0.15)) v += kPi;
      reads.push_back(wrap_to_2pi(v));
    }
    const ChannelPhase cp = aggregate_dwell(915e6, reads);
    ASSERT_LT(std::abs(ang_diff(cp.phase, truth)), 0.1) << "trial " << trial;
  }
}

TEST(AggregateDwell, EmptyThrows) {
  EXPECT_THROW(aggregate_dwell(915e6, std::vector<double>{}), InvalidArgument);
}

TEST(AggregateDwell, BadFrequencyThrows) {
  EXPECT_THROW(aggregate_dwell(0.0, std::vector<double>{1.0}),
               InvalidArgument);
}

std::vector<ChannelPhase> make_channels(double slope, double intercept,
                                        std::size_t n) {
  std::vector<ChannelPhase> channels;
  for (std::size_t i = 0; i < n; ++i) {
    ChannelPhase cp;
    cp.frequency_hz = channel_frequency(i);
    cp.phase = wrap_to_2pi(slope * cp.frequency_hz + intercept);
    cp.n_reads = 4;
    channels.push_back(cp);
  }
  return channels;
}

TEST(UnwrapTrace, StraightLineUnwrapsToLinear) {
  const double slope = 9.0e-8;  // ~2.2 m equivalent
  const auto channels = make_channels(slope, 0.7, kNumChannels);
  const UnwrappedTrace trace = unwrap_trace(channels);
  ASSERT_EQ(trace.frequency_hz.size(), kNumChannels);
  // Differences between consecutive unwrapped phases recover the slope.
  for (std::size_t i = 1; i < trace.phase.size(); ++i) {
    const double local =
        (trace.phase[i] - trace.phase[i - 1]) /
        (trace.frequency_hz[i] - trace.frequency_hz[i - 1]);
    ASSERT_NEAR(local, slope, 1e-12);
  }
}

TEST(UnwrapTrace, SortsByFrequency) {
  auto channels = make_channels(5e-8, 0.0, 10);
  std::swap(channels[0], channels[7]);
  std::swap(channels[2], channels[9]);
  const UnwrappedTrace trace = unwrap_trace(channels);
  for (std::size_t i = 1; i < trace.frequency_hz.size(); ++i) {
    ASSERT_GT(trace.frequency_hz[i], trace.frequency_hz[i - 1]);
  }
}

TEST(UnwrapTrace, MergesDuplicateChannels) {
  auto channels = make_channels(5e-8, 0.0, 5);
  ChannelPhase duplicate = channels[2];
  duplicate.phase = wrap_to_2pi(duplicate.phase + 0.2);
  channels.push_back(duplicate);
  const UnwrappedTrace trace = unwrap_trace(channels);
  EXPECT_EQ(trace.frequency_hz.size(), 5u);
  // Merged phase lies between the two observations.
  const double merged = wrap_to_2pi(trace.phase[2]);
  const double lo = wrap_to_2pi(channels[2].phase);
  EXPECT_GT(std::abs(ang_diff(merged, lo)), 0.0);
}

TEST(UnwrapTrace, EmptyThrows) {
  EXPECT_THROW(unwrap_trace(std::vector<ChannelPhase>{}), InvalidArgument);
}

TEST(LocalSlopeSpread, ZeroForPerfectLine) {
  const auto channels = make_channels(8e-8, 1.0, 20);
  const UnwrappedTrace trace = unwrap_trace(channels);
  EXPECT_NEAR(local_slope_spread(trace), 0.0, 1e-15);
}

TEST(LocalSlopeSpread, GrowsWithScatter) {
  Rng rng(82);
  auto channels = make_channels(8e-8, 1.0, 30);
  UnwrappedTrace clean = unwrap_trace(channels);
  for (auto& c : channels) {
    c.phase = wrap_to_2pi(c.phase + rng.gaussian(0.0, 0.2));
  }
  UnwrappedTrace noisy = unwrap_trace(channels);
  EXPECT_GT(local_slope_spread(noisy), local_slope_spread(clean));
}

TEST(LocalSlopeSpread, ShortTraceIsZero) {
  UnwrappedTrace trace;
  trace.frequency_hz = {1.0, 2.0};
  trace.phase = {0.0, 5.0};
  EXPECT_DOUBLE_EQ(local_slope_spread(trace), 0.0);
}

}  // namespace
}  // namespace rfp
