#include "rfp/baselines/hologram.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/core/preprocess.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;
using testutil::noiseless_channel;
using testutil::noiseless_reader;

class HologramTest : public ::testing::Test {
 protected:
  HologramTest()
      : scene_(make_scene_2d(501)),
        tag_(make_tag_hardware("t", 501)),
        localizer_(exact_geometry(scene_)) {}

  RoundTrace round_at(Vec2 p, const std::string& material, double alpha,
                      std::uint64_t trial) {
    Rng rng(trial);
    const TagState state{Vec3{p, 0.0}, planar_polarization(alpha), material};
    return collect_round(scene_, noiseless_reader(), noiseless_channel(),
                         tag_, state, trial, rng);
  }

  Scene scene_;
  TagHardware tag_;
  HologramLocalizer localizer_;
};

TEST_F(HologramTest, PeakNearTruthOnCleanData) {
  const Vec2 truth{0.8, 1.2};
  const Vec3 est = localizer_.localize(round_at(truth, "none", 0.3, 1));
  EXPECT_LT(distance(est, Vec3{truth, 0.0}), 0.25);
}

TEST_F(HologramTest, IntensityPeaksAtTruth) {
  const Vec2 truth{1.2, 0.9};
  const RoundTrace round = round_at(truth, "none", 0.0, 2);
  const auto traces = preprocess_round(round);
  const double at_truth = localizer_.intensity(traces, Vec3{truth, 0.0});
  for (Vec2 other : {Vec2{0.4, 0.4}, Vec2{1.8, 1.8}, Vec2{0.4, 1.8}}) {
    EXPECT_GT(at_truth, localizer_.intensity(traces, Vec3{other, 0.0}));
  }
}

TEST_F(HologramTest, InsensitiveToOrientation) {
  // The per-antenna magnitude cancels constant offsets, so rotating the
  // tag must not move the peak much.
  const Vec2 truth{1.0, 1.3};
  const Vec3 a = localizer_.localize(round_at(truth, "none", 0.0, 3));
  const Vec3 b = localizer_.localize(round_at(truth, "none", 1.2, 4));
  EXPECT_LT(distance(a, b), 0.25);
}

TEST_F(HologramTest, MaterialSlopeBiasesIt) {
  // Like MobiTagbot, the hologram cannot separate kt from distance: a
  // strongly detuning material must displace its peak noticeably more
  // than a neutral one.
  const Vec2 truth{1.0, 0.8};
  const Vec3 bare = localizer_.localize(round_at(truth, "none", 0.0, 5));
  const Vec3 metal = localizer_.localize(round_at(truth, "metal", 0.0, 6));
  const double bare_err = distance(bare, Vec3{truth, 0.0});
  const double metal_err = distance(metal, Vec3{truth, 0.0});
  EXPECT_GT(metal_err, bare_err + 0.05);
}

TEST_F(HologramTest, RobustToPiJumps) {
  // The doubled-angle accumulation is invariant to the reader's pi
  // ambiguity by construction.
  ReaderConfig reader = noiseless_reader();
  reader.pi_jump_prob = 0.3;
  Rng rng(7);
  const Vec2 truth{0.7, 1.5};
  const TagState state{Vec3{truth, 0.0}, planar_polarization(0.4), "none"};
  const RoundTrace round = collect_round(
      scene_, reader, noiseless_channel(), tag_, state, 7, rng);
  const Vec3 est = localizer_.localize(round);
  EXPECT_LT(distance(est, Vec3{truth, 0.0}), 0.3);
}

TEST_F(HologramTest, BadConfigThrows) {
  HologramConfig config;
  config.grid_nx = 2;
  EXPECT_THROW(HologramLocalizer(exact_geometry(scene_), config),
               InvalidArgument);
}

TEST_F(HologramTest, TooFewAntennasThrows) {
  DeploymentGeometry geometry = exact_geometry(scene_);
  geometry.antenna_positions.resize(1);
  geometry.antenna_frames.resize(1);
  EXPECT_THROW(HologramLocalizer{geometry}, InvalidArgument);
}

}  // namespace
}  // namespace rfp
