#include "rfp/core/tracker.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

SensingResult fix_at(Vec2 p) {
  SensingResult r;
  r.valid = true;
  r.reject_reason = RejectReason::kNone;
  r.position = {p.x, p.y, 0.0};
  return r;
}

TEST(Tracker, UninitializedHasNoState) {
  Tracker tracker;
  EXPECT_FALSE(tracker.state().has_value());
  EXPECT_FALSE(tracker.predict(1.0).has_value());
}

TEST(Tracker, FirstFixInitializes) {
  Tracker tracker;
  EXPECT_TRUE(tracker.update(fix_at({1.0, 2.0}), 0.0));
  const auto state = tracker.state();
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->position, (Vec2{1.0, 2.0}));
  EXPECT_EQ(state->velocity, (Vec2{0.0, 0.0}));
  EXPECT_EQ(state->updates, 1u);
}

TEST(Tracker, InvalidFixIgnored) {
  Tracker tracker;
  SensingResult invalid;
  invalid.valid = false;
  EXPECT_FALSE(tracker.update(invalid, 0.0));
  EXPECT_FALSE(tracker.state().has_value());
}

TEST(Tracker, LearnsConstantVelocity) {
  Tracker tracker;
  // Tag advancing at (0.05, -0.02) m/s, fixes every 10 s with no noise.
  for (int k = 0; k < 12; ++k) {
    const double t = 10.0 * k;
    tracker.update(fix_at({0.5 + 0.05 * t, 1.5 - 0.02 * t}), t);
  }
  const auto state = tracker.state();
  ASSERT_TRUE(state.has_value());
  EXPECT_NEAR(state->velocity.x, 0.05, 0.01);
  EXPECT_NEAR(state->velocity.y, -0.02, 0.01);
  // Prediction extrapolates.
  const auto predicted = tracker.predict(120.0);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(predicted->x, 0.5 + 0.05 * 120.0, 0.05);
}

TEST(Tracker, SmoothsNoisyFixes) {
  Rng rng(301);
  const double sigma = 0.06;
  double raw_err = 0.0, smoothed_err = 0.0;
  int n = 0;
  Tracker tracker;
  for (int k = 0; k < 50; ++k) {
    const double t = 10.0 * k;
    const Vec2 truth{0.3 + 0.01 * t, 1.0};
    const Vec2 noisy{truth.x + rng.gaussian(0.0, sigma),
                     truth.y + rng.gaussian(0.0, sigma)};
    tracker.update(fix_at(noisy), t);
    if (k >= 10) {  // after convergence
      raw_err += distance(noisy, truth);
      smoothed_err += distance(tracker.state()->position, truth);
      ++n;
    }
  }
  // 10 s between fixes limits the information reuse; ~20-30%% error
  // reduction is the steady state for this q/r ratio.
  EXPECT_LT(smoothed_err / n, 0.85 * raw_err / n);
}

TEST(Tracker, GatesGrossOutlier) {
  Tracker tracker;
  for (int k = 0; k < 5; ++k) {
    tracker.update(fix_at({1.0, 1.0}), 10.0 * k);
  }
  // A wild fix 2 m away must be rejected, leaving the track in place.
  EXPECT_FALSE(tracker.update(fix_at({3.0, 1.0}), 50.0));
  EXPECT_EQ(tracker.rejected_in_a_row(), 1u);
  EXPECT_NEAR(tracker.state()->position.x, 1.0, 0.05);
}

TEST(Tracker, ReinitializesAfterPersistentJump) {
  TrackerConfig config;
  config.max_consecutive_rejections = 3;
  Tracker tracker(config);
  for (int k = 0; k < 5; ++k) {
    tracker.update(fix_at({1.0, 1.0}), 10.0 * k);
  }
  // The tag really was moved: three consistent fixes at the new spot.
  tracker.update(fix_at({1.9, 0.4}), 60.0);
  tracker.update(fix_at({1.9, 0.4}), 70.0);
  const bool third = tracker.update(fix_at({1.9, 0.4}), 80.0);
  EXPECT_TRUE(third);  // re-initialized at the new position
  EXPECT_NEAR(tracker.state()->position.x, 1.9, 0.05);
}

TEST(Tracker, PredictStateGrowsVarianceWhileCoasting) {
  Tracker tracker;
  for (int k = 0; k < 6; ++k) {
    tracker.update(fix_at({1.0 + 0.01 * k, 2.0}), 10.0 * k);
  }
  const auto posterior = tracker.state();
  ASSERT_TRUE(posterior.has_value());

  // At the last update time, predict_state is exactly the posterior.
  const auto at_fix = tracker.predict_state(50.0);
  ASSERT_TRUE(at_fix.has_value());
  EXPECT_EQ(at_fix->position, posterior->position);
  EXPECT_EQ(at_fix->velocity, posterior->velocity);
  EXPECT_EQ(at_fix->position_variance, posterior->position_variance);
  EXPECT_EQ(at_fix->updates, posterior->updates);

  // Coasting: the mean extrapolates along the velocity, and (unlike
  // state()) the reported variance keeps growing with the horizon.
  const auto later = tracker.predict_state(250.0);
  ASSERT_TRUE(later.has_value());
  EXPECT_NEAR(later->position.x,
              posterior->position.x + 200.0 * posterior->velocity.x, 1e-12);
  EXPECT_EQ(later->velocity, posterior->velocity);
  EXPECT_GT(later->position_variance, posterior->position_variance);
  const auto even_later = tracker.predict_state(500.0);
  EXPECT_GT(even_later->position_variance, later->position_variance);
  // state() itself must stay frozen at the posterior.
  EXPECT_EQ(tracker.state()->position_variance, posterior->position_variance);
  // The prediction mean agrees with predict().
  EXPECT_EQ(later->position, *tracker.predict(250.0));
}

TEST(Tracker, PredictStateBeforeFirstFixIsEmpty) {
  Tracker tracker;
  EXPECT_FALSE(tracker.predict_state(1.0).has_value());
}

TEST(Tracker, ResetDropsTrack) {
  Tracker tracker;
  tracker.update(fix_at({1.0, 1.0}), 0.0);
  tracker.reset();
  EXPECT_FALSE(tracker.state().has_value());
}

TEST(Tracker, TimeGoingBackwardsThrows) {
  Tracker tracker;
  tracker.update(fix_at({1.0, 1.0}), 10.0);
  EXPECT_THROW(tracker.update(fix_at({1.0, 1.0}), 5.0), InvalidArgument);
}

TEST(Tracker, BadConfigThrows) {
  TrackerConfig config;
  config.measurement_sigma = 0.0;
  EXPECT_THROW(Tracker{config}, InvalidArgument);
}

TEST(Tracker, EndToEndWithSensedFixes) {
  // A tag stepped 6 cm between rounds (static within each round): the
  // tracker smooths the per-round sensing noise and recovers the step
  // velocity.
  const Testbed bed{};
  Tracker tracker;
  double sensed_err = 0.0, tracked_err = 0.0;
  int n = 0;
  for (int k = 0; k < 12; ++k) {
    const double t = 10.0 * k;
    const Vec2 truth{0.4 + 0.006 * t, 1.2};
    const SensingResult r =
        bed.sense(bed.tag_state(truth, 0.4, "plastic"), 400 + k);
    if (!r.valid) continue;
    tracker.update(r, t);
    if (k >= 6) {
      sensed_err += distance(r.position.xy(), truth);
      tracked_err += distance(tracker.state()->position, truth);
      ++n;
    }
  }
  ASSERT_GE(n, 4);
  EXPECT_LT(tracked_err, sensed_err);
  EXPECT_NEAR(tracker.state()->velocity.x, 0.006, 0.004);
}

}  // namespace
}  // namespace rfp
