/// Property tests of the disentangling mathematics: the algebraic
/// invariances that make RF-Prism work, checked across parameter sweeps.

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/core/disentangle.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;

std::vector<AntennaLine> lines_for(const DeploymentGeometry& geometry,
                                   Vec3 position, Vec3 w, double kt,
                                   double bt) {
  std::vector<AntennaLine> lines;
  for (std::size_t i = 0; i < geometry.n_antennas(); ++i) {
    AntennaLine line;
    line.antenna = i;
    const double d = distance(geometry.antenna_positions[i], position);
    line.fit.slope = kSlopePerMeter * d + kt;
    line.fit.intercept = wrap_to_2pi(
        polarization_phase_toward(geometry.antenna_frames[i],
                                  geometry.antenna_positions[i], position,
                                  w) +
        bt);
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    lines.push_back(line);
  }
  return lines;
}

class DisentangleProperty : public ::testing::TestWithParam<int> {
 protected:
  DisentangleProperty()
      : scene_(make_scene_2d(601)), geometry_(exact_geometry(scene_)) {}

  Scene scene_;
  DeploymentGeometry geometry_;
  DisentangleConfig config_;
};

TEST_P(DisentangleProperty, PositionInvariantToCommonSlopeShift) {
  // THE central identity (paper Eq. 7): kt is common-mode across antennas,
  // so adding any constant to every slope must leave the position fixed
  // and land entirely in kt. This is why localization is calibration-free.
  Rng rng(700 + GetParam());
  const Vec3 truth{rng.uniform(0.3, 1.7), rng.uniform(0.3, 1.7), 0.0};
  auto base = lines_for(geometry_, truth, planar_polarization(0.5), 0.0, 0.2);
  const PositionSolve reference = solve_position(geometry_, base, config_);

  const double shift = rng.uniform(-1e-8, 2e-8);
  for (auto& line : base) line.fit.slope += shift;
  const PositionSolve shifted = solve_position(geometry_, base, config_);

  EXPECT_LT(distance(reference.position, shifted.position), 1e-3);
  EXPECT_NEAR(shifted.kt - reference.kt, shift, 1e-12);
}

TEST_P(DisentangleProperty, OrientationInvariantToCommonInterceptShift) {
  // Mirror identity for the intercept family: a constant added to every
  // b_i is absorbed by bt, leaving alpha fixed — material never distorts
  // orientation.
  Rng rng(800 + GetParam());
  const Vec3 truth{rng.uniform(0.3, 1.7), rng.uniform(0.3, 1.7), 0.0};
  const double alpha = rng.uniform(0.0, kPi);
  auto base =
      lines_for(geometry_, truth, planar_polarization(alpha), 1e-9, 0.4);
  const OrientationSolve reference =
      solve_orientation(geometry_, base, truth, config_);

  const double shift = rng.uniform(0.0, kTwoPi);
  for (auto& line : base) {
    line.fit.intercept = wrap_to_2pi(line.fit.intercept + shift);
  }
  const OrientationSolve shifted =
      solve_orientation(geometry_, base, truth, config_);

  EXPECT_LT(rad2deg(planar_angle_error(shifted.alpha, reference.alpha)), 0.5);
  EXPECT_NEAR(std::abs(ang_diff(shifted.bt, reference.bt + shift)), 0.0,
              0.01);
}

TEST_P(DisentangleProperty, RoundTripAcrossRandomStates) {
  // Generate random (position, alpha, kt, bt), build exact lines, solve,
  // and demand the full 5-tuple back.
  Rng rng(900 + GetParam());
  const Vec3 truth{rng.uniform(0.3, 1.7), rng.uniform(0.3, 1.7), 0.0};
  const double alpha = rng.uniform(0.0, kPi);
  const double kt = rng.uniform(-2e-9, 1.4e-8);
  const double bt = rng.uniform(0.0, kTwoPi);
  const auto lines =
      lines_for(geometry_, truth, planar_polarization(alpha), kt, bt);

  const PositionSolve pos = solve_position(geometry_, lines, config_);
  EXPECT_LT(distance(pos.position, truth), 5e-3);
  EXPECT_NEAR(pos.kt, kt, 1e-11);

  const OrientationSolve orient =
      solve_orientation(geometry_, lines, pos.position, config_);
  EXPECT_LT(rad2deg(planar_angle_error(orient.alpha, alpha)), 1.0);
  EXPECT_NEAR(std::abs(ang_diff(orient.bt, bt)), 0.0, 0.05);
}

TEST_P(DisentangleProperty, InterceptsCarryNoPositionInformation) {
  // Corrupting every intercept arbitrarily must not move the position
  // estimate at all: the two equation families are fully decoupled.
  Rng rng(1000 + GetParam());
  const Vec3 truth{rng.uniform(0.3, 1.7), rng.uniform(0.3, 1.7), 0.0};
  auto lines =
      lines_for(geometry_, truth, planar_polarization(1.0), 2e-9, 1.5);
  const PositionSolve reference = solve_position(geometry_, lines, config_);
  for (auto& line : lines) {
    line.fit.intercept = rng.uniform(0.0, kTwoPi);
  }
  const PositionSolve scrambled = solve_position(geometry_, lines, config_);
  EXPECT_EQ(reference.position, scrambled.position);
  EXPECT_EQ(reference.kt, scrambled.kt);
}

TEST_P(DisentangleProperty, SlopesCarryNoOrientationInformation) {
  Rng rng(1100 + GetParam());
  const Vec3 truth{rng.uniform(0.3, 1.7), rng.uniform(0.3, 1.7), 0.0};
  const double alpha = rng.uniform(0.0, kPi);
  auto lines =
      lines_for(geometry_, truth, planar_polarization(alpha), 0.0, 0.7);
  const OrientationSolve reference =
      solve_orientation(geometry_, lines, truth, config_);
  for (auto& line : lines) {
    line.fit.slope += rng.uniform(-1e-8, 1e-8);
  }
  const OrientationSolve scrambled =
      solve_orientation(geometry_, lines, truth, config_);
  EXPECT_DOUBLE_EQ(reference.alpha, scrambled.alpha);
  EXPECT_DOUBLE_EQ(reference.bt, scrambled.bt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DisentangleProperty, ::testing::Range(0, 8));

// ---- Physics invariants of the simulator -------------------------------

class PhysicsProperty : public ::testing::TestWithParam<std::string> {
 protected:
  PhysicsProperty() : scene_(make_scene_2d(602)), tag_(make_tag_hardware("t", 602)) {
    channel_ = testutil::noiseless_channel();
  }

  Scene scene_;
  TagHardware tag_;
  ChannelConfig channel_;
};

TEST_P(PhysicsProperty, ReportedPhaseExactlyLinearInFrequency) {
  const ChannelModel model(scene_, channel_, 9);
  const TagState state{Vec3{0.8, 1.1, 0.0}, planar_polarization(0.7),
                       GetParam()};
  // Second differences vanish for a linear function. The material
  // signature adds a bounded, known nonlinearity; compare against it.
  const Material& m = scene_.materials.get(GetParam());
  for (std::size_t k = 0; k + 2 < kNumChannels; k += 5) {
    const double f0 = channel_frequency(k);
    const double f1 = channel_frequency(k + 1);
    const double f2 = channel_frequency(k + 2);
    const double second_diff = model.reported_phase(0, state, tag_, f2) -
                               2.0 * model.reported_phase(0, state, tag_, f1) +
                               model.reported_phase(0, state, tag_, f0);
    const double signature_second_diff = m.signature(f2) -
                                         2.0 * m.signature(f1) +
                                         m.signature(f0);
    ASSERT_NEAR(second_diff, signature_second_diff, 1e-9);
  }
}

TEST_P(PhysicsProperty, SlopeDecomposesExactly) {
  const ChannelModel model(scene_, channel_, 10);
  const TagState state{Vec3{1.3, 0.7, 0.0}, planar_polarization(0.0),
                       GetParam()};
  const Material& m = scene_.materials.get(GetParam());
  const double f1 = channel_frequency(0);
  const double f2 = channel_frequency(kNumChannels - 1);
  const double d = distance(scene_.antennas[1].position, state.position);
  const double slope = (model.reported_phase(1, state, tag_, f2) -
                        model.reported_phase(1, state, tag_, f1)) /
                       (f2 - f1);
  const double expected =
      kSlopePerMeter * d + tag_.kd + m.kt + scene_.antennas[1].kr;
  // The signature contributes a small bounded residual slope.
  EXPECT_NEAR(slope, expected, 3.0 * m.ripple_amplitude / (f2 - f1) + 1e-13);
}

INSTANTIATE_TEST_SUITE_P(AllMaterials, PhysicsProperty,
                         ::testing::ValuesIn(std::vector<std::string>{
                             "none", "wood", "plastic", "glass", "metal",
                             "water", "milk", "oil", "alcohol"}),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace rfp
