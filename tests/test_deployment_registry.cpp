/// DeploymentRegistry: digest identity, tenant sharing, solver-settings
/// grafting, FIFO eviction of unpinned tenants, capacity exhaustion, and
/// the stats snapshot ordering operators rely on.

#include "rfp/core/deployment_registry.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

/// Distinct 2D deployments come from distinct testbed seeds (survey noise
/// moves every antenna), so each bed ships a unique geometry+calibration.
const Testbed& bed_for_seed(std::uint64_t seed, std::size_t antennas = 0) {
  static std::vector<std::unique_ptr<Testbed>> beds;
  static std::vector<std::pair<std::uint64_t, std::size_t>> keys;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == std::make_pair(seed, antennas)) return *beds[i];
  }
  TestbedConfig config;
  config.seed = seed;
  config.n_antennas = antennas;
  beds.push_back(std::make_unique<Testbed>(config));
  keys.emplace_back(seed, antennas);
  return *beds.back();
}

TEST(DeploymentRegistry, DigestIsDeterministicAndDiscriminates) {
  const Testbed& a = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  const auto digest_a = DeploymentRegistry::digest_of(
      a.prism().config().geometry, a.prism().calibrations());
  EXPECT_EQ(digest_a,
            DeploymentRegistry::digest_of(a.prism().config().geometry,
                                          a.prism().calibrations()));
  EXPECT_NE(digest_a,
            DeploymentRegistry::digest_of(b.prism().config().geometry,
                                          b.prism().calibrations()));
  // Calibration alone must also discriminate (same geometry, different
  // calibration database = a re-surveyed site).
  EXPECT_NE(digest_a,
            DeploymentRegistry::digest_of(a.prism().config().geometry,
                                          b.prism().calibrations()));
}

TEST(DeploymentRegistry, ByteEqualDeploymentsShareOneTenant) {
  const Testbed& a = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  DeploymentRegistry registry(8);
  registry.set_default(a.prism());

  const auto first = registry.acquire(b.prism().config().geometry,
                                      b.prism().calibrations());
  const auto second = registry.acquire(b.prism().config().geometry,
                                       b.prism().calibrations());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(registry.size(), 2u);  // default + one session deployment
  EXPECT_FALSE(first->is_default());
  EXPECT_EQ(first->digest(),
            DeploymentRegistry::digest_of(b.prism().config().geometry,
                                          b.prism().calibrations()));
}

TEST(DeploymentRegistry, DefaultDeploymentResolvesToDefaultTenant) {
  // A session shipping the byte-equal default deployment lands on the
  // default tenant — no duplicate resident, same drift state.
  const Testbed& a = bed_for_seed(42);
  DeploymentRegistry registry(8);
  const auto def = registry.set_default(a.prism());
  const auto acquired = registry.acquire(a.prism().config().geometry,
                                         a.prism().calibrations());
  EXPECT_EQ(acquired.get(), def.get());
  EXPECT_TRUE(acquired->is_default());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(&acquired->prism(), &a.prism());  // borrowed, not copied
}

TEST(DeploymentRegistry, GraftKeepsServerSolverSettings) {
  // The shipped deployment replaces geometry + calibrations only; solver
  // modes stay the server's (a client cannot pick expensive modes).
  const Testbed& a = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);

  RfPrismConfig base = a.prism().config();
  base.disentangle.rank_kernel = RankKernel::kFactoredScalar;
  base.disentangle.pyramid.enable = true;
  const RfPrism scalar_prism = a.make_pipeline_variant(std::move(base));

  DeploymentRegistry registry(8);
  registry.set_default(scalar_prism);
  const auto tenant = registry.acquire(b.prism().config().geometry,
                                       b.prism().calibrations());
  EXPECT_EQ(tenant->prism().config().disentangle.rank_kernel,
            RankKernel::kFactoredScalar);
  EXPECT_TRUE(tenant->prism().config().disentangle.pyramid.enable);
  EXPECT_EQ(tenant->prism().config().geometry.n_antennas(),
            b.prism().config().geometry.n_antennas());
  EXPECT_EQ(tenant->prism().calibrations().n_tags(),
            b.prism().calibrations().n_tags());
}

TEST(DeploymentRegistry, EvictsOldestUnpinnedTenantAtCapacity) {
  const Testbed& base = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  const Testbed& c = bed_for_seed(9);
  const Testbed& d = bed_for_seed(11);
  DeploymentRegistry registry(3);  // default + two session slots
  registry.set_default(base.prism());

  auto tb = registry.acquire(b.prism().config().geometry,
                             b.prism().calibrations());
  auto tc = registry.acquire(c.prism().config().geometry,
                             c.prism().calibrations());
  ASSERT_EQ(registry.size(), 3u);

  const std::uint64_t digest_b = tb->digest();
  tb.reset();  // b is now unpinned (registry holds the only reference)

  // At capacity: acquiring d evicts b (the oldest unpinned), never c.
  auto td = registry.acquire(d.prism().config().geometry,
                             d.prism().calibrations());
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.evictions(), 1u);
  bool b_resident = false;
  for (const TenantStats& t : registry.stats()) {
    if (t.digest == digest_b) b_resident = true;
  }
  EXPECT_FALSE(b_resident);

  // Re-acquiring b builds a fresh tenant (state was dropped on eviction):
  // unpin d so there is an eviction candidate again.
  td.reset();
  auto tb2 = registry.acquire(b.prism().config().geometry,
                              b.prism().calibrations());
  EXPECT_EQ(tb2->digest(), digest_b);
  EXPECT_EQ(registry.evictions(), 2u);  // d gave way (c is still pinned)
}

TEST(DeploymentRegistry, ThrowsWhenEveryTenantIsPinned) {
  const Testbed& base = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  const Testbed& c = bed_for_seed(9);
  DeploymentRegistry registry(2);
  registry.set_default(base.prism());
  auto tb = registry.acquire(b.prism().config().geometry,
                             b.prism().calibrations());  // held: pinned
  EXPECT_THROW(registry.acquire(c.prism().config().geometry,
                                c.prism().calibrations()),
               Error);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.evictions(), 0u);

  // Releasing the pin frees the slot.
  tb.reset();
  EXPECT_NO_THROW(registry.acquire(c.prism().config().geometry,
                                   c.prism().calibrations()));
}

TEST(DeploymentRegistry, CalibrationAntennaMismatchIsInvalidArgument) {
  const Testbed& three = bed_for_seed(42);      // 3-antenna default rig
  const Testbed& four = bed_for_seed(42, 4);    // 4-antenna variant
  ASSERT_NE(three.prism().config().geometry.n_antennas(),
            four.prism().config().geometry.n_antennas());
  DeploymentRegistry registry(8);
  registry.set_default(three.prism());
  EXPECT_THROW(registry.acquire(four.prism().config().geometry,
                                three.prism().calibrations()),
               InvalidArgument);
}

TEST(DeploymentRegistry, PerTenantDriftIsIndependent) {
  const Testbed& a = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  DeploymentRegistry registry(8);
  const auto def = registry.set_default(a.prism());
  const auto tenant = registry.acquire(b.prism().config().geometry,
                                       b.prism().calibrations(),
                                       /*enable_drift=*/true);
  EXPECT_FALSE(def->drift_enabled());
  EXPECT_TRUE(tenant->drift_enabled());
  EXPECT_FALSE(tenant->drift_corrections().active);  // not warmed up

  // A later session of the same deployment must not reset drift state.
  const auto again = registry.acquire(b.prism().config().geometry,
                                      b.prism().calibrations(),
                                      /*enable_drift=*/false);
  EXPECT_EQ(again.get(), tenant.get());
  EXPECT_TRUE(again->drift_enabled());
}

TEST(DeploymentRegistry, StatsSnapshotPutsDefaultFirst) {
  const Testbed& a = bed_for_seed(42);
  const Testbed& b = bed_for_seed(7);
  const Testbed& c = bed_for_seed(9);
  DeploymentRegistry registry(8);
  registry.set_default(a.prism());
  auto tb = registry.acquire(b.prism().config().geometry,
                             b.prism().calibrations());
  auto tc = registry.acquire(c.prism().config().geometry,
                             c.prism().calibrations());
  tb->count_session_opened();
  tb->count_request(false);
  tb->count_request(true);
  tb->count_stream(10, 2);

  const std::vector<TenantStats> stats = registry.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_TRUE(stats[0].is_default);
  EXPECT_LT(stats[1].digest, stats[2].digest);  // ascending after default
  for (const TenantStats& t : stats) {
    if (t.digest != tb->digest()) continue;
    EXPECT_EQ(t.sessions_opened, 1u);
    EXPECT_EQ(t.requests_completed, 1u);
    EXPECT_EQ(t.requests_failed, 1u);
    EXPECT_EQ(t.stream_reads, 10u);
    EXPECT_EQ(t.stream_emissions, 2u);
  }
}

}  // namespace
}  // namespace rfp
