/// rfp::net serving loop, end to end over loopback: concurrent clients
/// get responses byte-identical to the direct sense_batch path (degraded
/// and rejected grades included), responses stay in per-connection
/// request order under pipelining and backpressure, malformed input gets
/// an error frame or a close (never a crash), graceful shutdown drains
/// every accepted request, and idle connections are reaped.

#include "rfp/net/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/common/socket.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/net/client.hpp"
#include "rfp/rfsim/faults.hpp"

namespace rfp {
namespace {

using net::Client;
using net::ClientConfig;
using net::Frame;
using net::FrameType;
using net::NetError;
using net::RemoteError;
using net::Server;
using net::ServerConfig;
using net::WireError;

/// One deployment per test binary: the 4-antenna fault-tolerance rig, so
/// faulted rounds can come back degraded rather than only rejected.
const Testbed& shared_bed() {
  static const Testbed bed([] {
    TestbedConfig config;
    config.n_antennas = 4;
    return config;
  }());
  return bed;
}

ClientConfig client_config(std::uint16_t port) {
  ClientConfig config;
  config.port = port;
  config.io_timeout_s = 60.0;  // solves on a loaded CI box can be slow
  return config;
}

/// Mixed corpus in the test_engine.cpp mold: clean rounds plus heavily
/// faulted ones, so the wire carries full, degraded, and rejected grades.
std::vector<RoundTrace> make_corpus(const Testbed& bed, std::size_t n_clean,
                                    std::size_t n_faulted) {
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(11, 0x4E54));
  const auto materials = paper_materials();
  const FaultInjector injector(
      FaultProfile::scaled(0.8, mix_seed(11, 0xFA17)));
  for (std::size_t k = 0; k < n_clean + n_faulted; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi),
                                         materials[k % materials.size()]);
    RoundTrace round = bed.collect(state, 6000 + k);
    if (k >= n_clean) round = injector.apply(round, 6000 + k);
    corpus.push_back(std::move(round));
  }
  return corpus;
}

TEST(NetServer, ByteIdenticalToDirectBatchAcrossConcurrentClients) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 8, 8);

  SensingEngine engine(4);
  const std::vector<SensingResult> reference =
      bed.prism().sense_batch(corpus, engine, bed.tag_id());

  // The contract below compares raw wire bytes, so make sure the corpus
  // actually spans grades first — identical-on-trivial proves nothing.
  bool saw_non_full = false;
  for (const SensingResult& r : reference) {
    if (r.grade != SensingGrade::kFull) saw_non_full = true;
  }
  ASSERT_TRUE(saw_non_full) << "fault injection produced only full grades";

  std::vector<std::vector<std::uint8_t>> expected;
  expected.reserve(reference.size());
  for (const SensingResult& r : reference) {
    expected.push_back(net::encode_sense_response(r));
  }

  Server server(bed.prism(), engine);
  server.start();

  constexpr std::size_t kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client(client_config(server.port()));
        // Each client walks the whole corpus from a different offset, so
        // the same rounds are in flight on several connections at once.
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          const std::size_t k = (i + c * 3) % corpus.size();
          const std::vector<std::uint8_t> raw =
              client.sense_raw(corpus[k], bed.tag_id());
          if (raw != expected[k]) {
            failures[c] = "response bytes differ for round " +
                          std::to_string(k);
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.requests_completed, kClients * corpus.size());
  EXPECT_EQ(stats.requests_failed, 0u);
}

TEST(NetServer, DecodedResultsMatchDirectSense) {
  // Same loop through the typed surface (decode on the client side), and
  // a sanity check that the decoded grades match the direct path's.
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 4);

  SensingEngine engine(2);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  for (std::size_t k = 0; k < corpus.size(); ++k) {
    const SensingResult direct = bed.prism().sense(corpus[k], bed.tag_id());
    const SensingResult remote = client.sense(corpus[k], bed.tag_id());
    EXPECT_EQ(remote.valid, direct.valid) << "round " << k;
    EXPECT_EQ(remote.grade, direct.grade) << "round " << k;
    EXPECT_EQ(remote.position.x, direct.position.x) << "round " << k;
    EXPECT_EQ(remote.kt, direct.kt) << "round " << k;
  }
}

TEST(NetServer, PingPong) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  client.ping();
  client.ping();  // and the connection is still good afterwards
}

TEST(NetServer, PipelinedResponsesArriveInRequestOrder) {
  // Backpressure transparency: pipeline far past max_pending_per_connection
  // and check every response arrives, in order, with matching seq. The
  // pauses are observable in the stats but invisible to the protocol.
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 2);

  SensingEngine engine(2);
  ServerConfig config;
  config.max_pending_per_connection = 2;
  Server server(bed.prism(), engine, config);
  server.start();

  Client client(client_config(server.port()));
  constexpr std::size_t kRequests = 16;
  std::vector<std::uint32_t> seqs;
  for (std::size_t k = 0; k < kRequests; ++k) {
    seqs.push_back(client.send_sense(corpus[k % corpus.size()], bed.tag_id()));
  }
  for (std::size_t k = 0; k < kRequests; ++k) {
    const Frame frame = client.read_frame();
    ASSERT_EQ(frame.type, FrameType::kSenseResponse) << "response " << k;
    EXPECT_EQ(frame.seq, seqs[k]) << "response " << k;
  }

  server.stop();
  EXPECT_GT(server.stats().backpressure_pauses, 0u);
}

TEST(NetServer, GracefulShutdownDrainsAcceptedRequests) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 2);

  SensingEngine engine(2);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  constexpr std::size_t kRequests = 8;
  std::vector<std::uint32_t> seqs;
  for (std::size_t k = 0; k < kRequests; ++k) {
    seqs.push_back(client.send_sense(corpus[k % corpus.size()], bed.tag_id()));
  }

  // Wait until the server has *accepted* all of them, then pull the plug.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().frames_received < kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "server never saw all " << kRequests << " frames";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();  // returns once the drain (solve + flush) completes

  // Every accepted request still gets its response, in order.
  for (std::size_t k = 0; k < kRequests; ++k) {
    const Frame frame = client.read_frame();
    ASSERT_EQ(frame.type, FrameType::kSenseResponse) << "response " << k;
    EXPECT_EQ(frame.seq, seqs[k]) << "response " << k;
  }
  EXPECT_EQ(server.stats().requests_completed, kRequests);
}

TEST(NetServer, FramingGarbageGetsErrorFrameThenClose) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF,
                                             0x00, 0x01, 0x02, 0x03,
                                             0xFF, 0xFF, 0xFF, 0xFF,
                                             0x10, 0x20, 0x30, 0x40};
  client.send_bytes(garbage);

  // A framing violation is unrecoverable: expect one error frame (best
  // effort) and then EOF. NetError covers the close-first race.
  try {
    const Frame frame = client.read_frame();
    EXPECT_EQ(frame.type, FrameType::kError);
    WireError code;
    std::string message;
    ASSERT_TRUE(net::decode_error_payload(frame.payload, code, message));
    EXPECT_EQ(code, WireError::kMalformedPayload);
    EXPECT_THROW(client.read_frame(), NetError);  // then the close
  } catch (const NetError&) {
    // Server closed before the error frame was read; also acceptable.
  }

  server.stop();
  EXPECT_EQ(server.stats().connections_closed_protocol, 1u);
}

TEST(NetServer, MalformedSensePayloadGetsErrorAndConnectionSurvives) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 1, 0);

  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));

  // A well-framed request whose payload is junk: the frame layer is fine,
  // so the server answers with an error frame and keeps the connection.
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  client.send_bytes(net::encode_frame(FrameType::kSenseRequest, 901, junk));
  Frame frame = client.read_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.seq, 901u);
  WireError code;
  std::string message;
  ASSERT_TRUE(net::decode_error_payload(frame.payload, code, message));
  EXPECT_EQ(code, WireError::kMalformedPayload);

  // Unknown frame type: same shape, kUnsupportedType.
  client.send_bytes(
      net::encode_frame(static_cast<FrameType>(250), 902, junk));
  frame = client.read_frame();
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.seq, 902u);
  ASSERT_TRUE(net::decode_error_payload(frame.payload, code, message));
  EXPECT_EQ(code, WireError::kUnsupportedType);

  // And a real request on the same connection still works.
  const SensingResult result = client.sense(corpus[0], bed.tag_id());
  EXPECT_TRUE(result.valid);

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_closed_protocol, 0u);
  EXPECT_GE(stats.requests_failed, 2u);
}

TEST(NetServer, IdleConnectionsAreReaped) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  ServerConfig config;
  config.idle_timeout_s = 0.05;
  Server server(bed.prism(), engine, config);
  server.start();

  Client client(client_config(server.port()));
  client.ping();  // activity, then silence
  EXPECT_THROW(client.read_frame(), NetError);  // EOF once the timer fires

  server.stop();
  EXPECT_EQ(server.stats().connections_closed_idle, 1u);
}

TEST(NetServer, RejectsConnectionsOverTheCap) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  ServerConfig config;
  config.max_connections = 1;
  Server server(bed.prism(), engine, config);
  server.start();

  Client first(client_config(server.port()));
  first.ping();  // definitely accepted and serviced

  ClientConfig second_config = client_config(server.port());
  second_config.connect_attempts = 1;
  // Transport retries would reconnect and be rejected again — keep the
  // rejection count at exactly one for the assertion below.
  second_config.request_attempts = 1;
  second_config.io_timeout_s = 5.0;
  // The TCP connect may succeed before the server closes the excess
  // socket, so the rejection can surface at connect OR first use.
  try {
    Client second(second_config);
    second.ping();
    FAIL() << "second connection was serviced past max_connections=1";
  } catch (const NetError&) {
  }

  server.stop();
  EXPECT_EQ(server.stats().connections_rejected, 1u);
}

TEST(NetServer, ClientRetriesTransportFaultsTransparently) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 1, 0);

  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  ClientConfig config = client_config(server.port());
  config.request_attempts = 3;
  config.request_backoff_s = 0.01;
  Client client(config);
  client.ping();

  // Poison the connection: framing garbage makes the server answer with a
  // fatal error frame (seq 0) and close. The next sense() rides the retry
  // path — the first attempt fails on the poisoned connection (seq
  // mismatch, EOF, or send failure, depending on timing), the retry
  // reconnects and resends on a fresh connection.
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF,
                                             0xFF, 0xFF, 0xFF, 0xFF};
  client.send_bytes(garbage);
  const SensingResult result = client.sense(corpus[0], bed.tag_id());
  EXPECT_TRUE(result.valid);

  // An explicitly closed client reconnects lazily on the next request.
  client.close();
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.sense(corpus[0], bed.tag_id()).valid);
  EXPECT_TRUE(client.connected());

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_closed_protocol, 1u);
  EXPECT_GE(stats.connections_accepted, 3u);
}

TEST(NetServer, RemoteErrorIsNeverRetried) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 1, 0);

  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  ClientConfig config = client_config(server.port());
  config.request_attempts = 3;
  config.request_backoff_s = 0.01;
  Client client(config);

  // A junk payload framed as the client's *own next seq* (1): the server
  // answers it with an error frame and keeps the connection, so the real
  // sense() request that follows reads a matching-seq error frame —
  // RemoteError. The server *answered*, so the retry loop must pass it
  // straight through instead of resending.
  const std::vector<std::uint8_t> junk = {9, 9, 9};
  client.send_bytes(net::encode_frame(FrameType::kSenseRequest, 1, junk));
  EXPECT_THROW(client.sense(corpus[0], bed.tag_id()), RemoteError);

  server.stop();
  const net::ServerStats stats = server.stats();
  // Exactly two frames ever hit the wire: the junk request and ONE copy
  // of the real request. A retried RemoteError would have sent more.
  EXPECT_EQ(stats.frames_received, 2u);
  EXPECT_EQ(stats.requests_failed, 1u);
}

TEST(NetServer, RetriesExhaustedSurfaceAsNetError) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  ClientConfig config = client_config(server.port());
  config.request_attempts = 3;
  config.request_backoff_s = 0.01;
  config.connect_timeout_s = 1.0;
  Client client(config);
  client.ping();

  // Once the server is gone for good, every attempt fails — the first on
  // the dead connection, the reconnects on the closed port — and after
  // request_attempts tries the NetError surfaces to the caller.
  server.stop();
  EXPECT_THROW(client.ping(), NetError);
}

TEST(NetServer, StalledConnectionIsShedWithoutDisturbingOthers) {
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 2, 0);

  SensingEngine engine(2);
  ServerConfig config;
  config.stall_timeout_s = 0.2;
  config.idle_timeout_s = 5.0;
  Server server(bed.prism(), engine, config);
  server.start();

  Client healthy(client_config(server.port()));
  ClientConfig loris_config = client_config(server.port());
  loris_config.request_attempts = 1;  // observe the shed, don't mask it
  Client loris(loris_config);

  // The slow-loris shape: half a frame, then a one-byte trickle. Every
  // trickled byte refreshes the *idle* timer, but none completes a frame,
  // so the connection makes no protocol progress and the stall timer
  // fires at last_progress + stall_timeout_s.
  const std::vector<std::uint8_t> request =
      net::encode_frame(FrameType::kSenseRequest, 1,
                        net::encode_sense_request(bed.tag_id(), corpus[0]));
  loris.send_bytes({request.data(), request.size() / 2});

  // Meanwhile a healthy pipelined client is serviced normally.
  std::vector<std::uint32_t> seqs;
  for (std::size_t k = 0; k < 4; ++k) {
    seqs.push_back(healthy.send_sense(corpus[k % corpus.size()],
                                      bed.tag_id()));
  }

  std::size_t offset = request.size() / 2;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool shed = false;
  while (!shed) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stalled connection was never shed";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    try {
      if (offset < request.size()) {
        loris.send_bytes({request.data() + offset, 1});
        ++offset;
      }
    } catch (const NetError&) {
      shed = true;  // the send saw the close first
    }
    if (server.stats().connections_closed_stalled > 0) shed = true;
  }

  // The loris connection is gone; the healthy one never noticed — its
  // responses arrive complete and in request order.
  EXPECT_THROW(loris.read_frame(), NetError);
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    const Frame frame = healthy.read_frame();
    ASSERT_EQ(frame.type, FrameType::kSenseResponse) << "response " << k;
    EXPECT_EQ(frame.seq, seqs[k]) << "response " << k;
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_closed_stalled, 1u);
  EXPECT_EQ(stats.connections_closed_idle, 0u);
  EXPECT_EQ(stats.requests_completed, seqs.size());
}

TEST(NetServer, DriftEnabledServerObservesAndReportsStats) {
  const Testbed& bed = shared_bed();

  RfPrismConfig prism_config = bed.prism().config();
  prism_config.disentangle.drift.enable = true;
  const RfPrism prism = bed.make_pipeline_variant(std::move(prism_config));

  SensingEngine engine(2);
  engine.enable_drift(prism.config().geometry.n_antennas(),
                      prism.config().disentangle.drift);

  Server server(prism, engine);
  server.start();

  // Clean rounds from a static tag: the estimator warms up, corrections
  // stay tiny, and no alarm ever fires.
  const TagState state = bed.tag_state({0.8, 1.2}, 0.5, "glass");
  Client client(client_config(server.port()));
  constexpr std::size_t kRounds = 12;
  for (std::size_t k = 0; k < kRounds; ++k) {
    const SensingResult result =
        client.sense(bed.collect(state, 8000 + k), bed.tag_id());
    EXPECT_TRUE(result.valid) << "round " << k;
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_completed, kRounds);
  EXPECT_EQ(stats.drift_rounds_observed, kRounds);
  EXPECT_EQ(stats.drift_alarms_raised, 0u);
  EXPECT_EQ(stats.drift_alarms_active, 0u);
  EXPECT_EQ(stats.drift_ports_dropped, 0u);
  EXPECT_TRUE(engine.drift_corrections().active);  // past warm-up
}

TEST(NetServer, OlderVersionPeerGetsGoodbyeEncodedAtItsVersion) {
  // A v1 client must receive its kUnsupportedVersion goodbye *as a v1
  // frame* (the error payload layout is unchanged since v1), so it can
  // decode why it was refused. The frame is read raw here because a
  // current-version FrameDecoder would itself reject a v1 reply.
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  std::string error;
  UniqueFd fd = tcp_connect("127.0.0.1", server.port(), 5.0, &error);
  ASSERT_TRUE(fd.valid()) << error;
  const std::vector<std::uint8_t> v1_ping =
      net::encode_frame(FrameType::kPing, 1, {}, /*version=*/1);
  ASSERT_TRUE(send_all(fd.get(), v1_ping.data(), v1_ping.size(), 5.0));

  // Read until EOF: expect exactly one goodbye frame, then the close.
  std::vector<std::uint8_t> reply;
  for (;;) {
    std::uint8_t buf[4096];
    const IoResult r = recv_with_timeout(fd.get(), buf, sizeof buf, 30.0);
    if (r.status != IoStatus::kOk) {
      EXPECT_EQ(r.status, IoStatus::kClosed);  // clean close, not a reset
      break;
    }
    reply.insert(reply.end(), buf, buf + r.bytes);
  }
  ASSERT_GE(reply.size(), net::kHeaderSize);
  auto u16_at = [&](std::size_t off) {
    return static_cast<std::uint16_t>(reply[off] | (reply[off + 1] << 8));
  };
  auto u32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(reply[off]) |
           (static_cast<std::uint32_t>(reply[off + 1]) << 8) |
           (static_cast<std::uint32_t>(reply[off + 2]) << 16) |
           (static_cast<std::uint32_t>(reply[off + 3]) << 24);
  };
  EXPECT_EQ(u32_at(0), net::kMagic);
  EXPECT_EQ(u16_at(4), 1u);  // goodbye speaks the peer's version
  EXPECT_EQ(u16_at(6), static_cast<std::uint16_t>(FrameType::kError));
  const std::uint32_t payload_len = u32_at(12);
  ASSERT_EQ(reply.size(), net::kHeaderSize + payload_len);
  WireError code;
  std::string message;
  ASSERT_TRUE(net::decode_error_payload(
      {reply.data() + net::kHeaderSize, payload_len}, code, message));
  EXPECT_EQ(code, WireError::kUnsupportedVersion);

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_closed_version, 1u);
  EXPECT_EQ(stats.connections_closed_protocol, 0u);
}

TEST(NetServer, NewerVersionPeerGetsCurrentVersionGoodbye) {
  // A peer from the future: the server cannot know its error layout, so
  // the goodbye is encoded at the server's own version — which this
  // (current-version) client can decode normally.
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  Server server(bed.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  client.send_bytes(net::encode_frame(FrameType::kPing, 1, {},
                                      net::kVersion + 1));
  try {
    const Frame frame = client.read_frame();
    ASSERT_EQ(frame.type, FrameType::kError);
    WireError code;
    std::string message;
    ASSERT_TRUE(net::decode_error_payload(frame.payload, code, message));
    EXPECT_EQ(code, WireError::kUnsupportedVersion);
    EXPECT_THROW(client.read_frame(), NetError);  // then the close
  } catch (const NetError&) {
    // Close raced ahead of the goodbye read; also acceptable.
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_closed_version, 1u);
  EXPECT_EQ(stats.connections_closed_protocol, 0u);
}

TEST(NetServer, ReorderCapShedsConnectionParkedBehindSlowSolve) {
  // One real solve occupies the single engine worker; a burst of junk
  // requests behind it is answered inline with error frames that must
  // park in the reorder map (response order!) until the solve finishes.
  // Parked bytes past max_reorder_bytes shed the connection instead of
  // holding unbounded memory hostage.
  const Testbed& bed = shared_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed, 1, 0);

  SensingEngine engine(1);
  ServerConfig config;
  config.max_reorder_bytes = 512;
  Server server(bed.prism(), engine, config);
  server.start();

  ClientConfig cc = client_config(server.port());
  cc.request_attempts = 1;  // observe the shed, don't mask it
  Client client(cc);

  // One buffer, parsed in one pass: the sense request is submitted to the
  // worker, then every junk frame's error response parks behind it.
  std::vector<std::uint8_t> burst = net::encode_frame(
      FrameType::kSenseRequest, 1,
      net::encode_sense_request(bed.tag_id(), corpus[0]));
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  for (std::uint32_t k = 0; k < 24; ++k) {
    net::append_frame(burst, FrameType::kSenseRequest, 2 + k, junk);
  }
  client.send_bytes(burst);

  // The connection is shed; reading surfaces the close.
  EXPECT_THROW(
      {
        for (;;) (void)client.read_frame();
      },
      NetError);

  server.stop();
  EXPECT_EQ(server.stats().reorder_evictions, 1u);
}

TEST(NetServer, StartStopWithoutTrafficIsClean) {
  const Testbed& bed = shared_bed();
  SensingEngine engine(1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    Server server(bed.prism(), engine);
    server.start();
    server.stop();
  }
  // And a destructor-only teardown (no explicit stop).
  Server server(bed.prism(), engine);
  server.start();
}

}  // namespace
}  // namespace rfp
