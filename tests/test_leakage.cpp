#include "rfp/core/leakage.hpp"

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/dsp/cusum.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

// ---- CUSUM unit tests ---------------------------------------------------

TEST(Cusum, StaysQuietOnStationaryStream) {
  Rng rng(701);
  CusumConfig config;
  config.warmup = 10;
  config.drift = 0.3;
  config.threshold = 2.0;
  CusumDetector detector(config);
  for (int i = 0; i < 500; ++i) {
    ASSERT_FALSE(detector.update(rng.gaussian(3.0, 0.1))) << i;
  }
  EXPECT_TRUE(detector.armed());
  EXPECT_NEAR(detector.reference_mean(), 3.0, 0.1);
}

TEST(Cusum, DetectsUpwardStep) {
  Rng rng(702);
  CusumDetector detector({.warmup = 10, .drift = 0.2, .threshold = 1.5});
  for (int i = 0; i < 30; ++i) detector.update(rng.gaussian(0.0, 0.1));
  ASSERT_FALSE(detector.alarmed());
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = detector.update(rng.gaussian(1.0, 0.1));
  }
  EXPECT_TRUE(fired);
}

TEST(Cusum, DetectsDownwardStep) {
  Rng rng(703);
  CusumDetector detector({.warmup = 10, .drift = 0.2, .threshold = 1.5});
  for (int i = 0; i < 30; ++i) detector.update(rng.gaussian(5.0, 0.1));
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = detector.update(rng.gaussian(4.0, 0.1));
  }
  EXPECT_TRUE(fired);
}

TEST(Cusum, DetectsSlowDrift) {
  Rng rng(704);
  CusumDetector detector({.warmup = 10, .drift = 0.05, .threshold = 1.0});
  for (int i = 0; i < 20; ++i) detector.update(rng.gaussian(0.0, 0.02));
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = detector.update(rng.gaussian(0.002 * i, 0.02));
  }
  EXPECT_TRUE(fired);
}

TEST(Cusum, AlarmLatchesUntilReset) {
  CusumDetector detector({.warmup = 2, .drift = 0.1, .threshold = 0.5});
  detector.update(0.0);
  detector.update(0.0);
  detector.update(5.0);
  ASSERT_TRUE(detector.alarmed());
  EXPECT_TRUE(detector.update(0.0));  // latched
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_FALSE(detector.armed());
}

TEST(Cusum, BadConfigThrows) {
  EXPECT_THROW(CusumDetector({.warmup = 0}), InvalidArgument);
  EXPECT_THROW(CusumDetector({.warmup = 1, .drift = -1.0}), InvalidArgument);
  EXPECT_THROW(
      CusumDetector({.warmup = 1, .drift = 0.0, .threshold = 0.0}),
      InvalidArgument);
}

// ---- LeakageMonitor on synthetic results --------------------------------

SensingResult result_with(double kt_rad_per_ghz, double bt) {
  SensingResult r;
  r.valid = true;
  r.kt = kt_rad_per_ghz * 1e-9;
  r.bt = bt;
  return r;
}

TEST(LeakageMonitor, LearnsThenStaysSteady) {
  Rng rng(705);
  LeakageMonitor monitor;
  // The monitor arms on the warmup-completing (5th) sample, so the first
  // four updates report learning.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(monitor.update(result_with(7.0 + rng.gaussian(0.0, 0.5),
                                         1.25 + rng.gaussian(0.0, 0.1))),
              LeakageStatus::kLearning);
  }
  monitor.update(result_with(7.0, 1.25));
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(monitor.update(result_with(7.0 + rng.gaussian(0.0, 0.5),
                                         1.25 + rng.gaussian(0.0, 0.1))),
              LeakageStatus::kSteady);
  }
  EXPECT_NEAR(monitor.baseline_kt(), 7.0, 1.0);
}

TEST(LeakageMonitor, AlarmsOnContentChange) {
  Rng rng(706);
  LeakageMonitor monitor;
  // Water baseline...
  for (int i = 0; i < 12; ++i) {
    monitor.update(result_with(7.0 + rng.gaussian(0.0, 0.5),
                               1.25 + rng.gaussian(0.0, 0.1)));
  }
  ASSERT_EQ(monitor.status(), LeakageStatus::kSteady);
  // ...then the bottle drains (coupling weakens toward the bare response).
  LeakageStatus status = LeakageStatus::kSteady;
  for (int i = 0; i < 25 && status != LeakageStatus::kAlarm; ++i) {
    const double fill = std::max(0.0, 1.0 - 0.15 * i);
    status = monitor.update(result_with(7.0 * fill + rng.gaussian(0.0, 0.5),
                                        1.25 * fill +
                                            rng.gaussian(0.0, 0.1)));
  }
  EXPECT_EQ(status, LeakageStatus::kAlarm);
}

TEST(LeakageMonitor, InvalidResultsSkipped) {
  LeakageMonitor monitor;
  SensingResult invalid;
  invalid.valid = false;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(monitor.update(invalid), LeakageStatus::kLearning);
  }
}

TEST(LeakageMonitor, ResetRelearns) {
  LeakageMonitor monitor;
  for (int i = 0; i < 10; ++i) monitor.update(result_with(7.0, 1.25));
  monitor.reset();
  EXPECT_EQ(monitor.status(), LeakageStatus::kLearning);
}

// ---- End-to-end with the simulator --------------------------------------

TEST(LeakageMonitor, EndToEndDrainedBottleDetected) {
  // A tagged water bottle sits still; after 10 rounds it has leaked
  // empty (material coupling drops to the bare-tag response). Position
  // never changes, so only the disentangled material parameters can tell.
  Testbed bed{};
  LeakageMonitor monitor;
  const Vec2 slot{1.1, 0.9};
  LeakageStatus status = LeakageStatus::kLearning;
  for (int round = 0; round < 10; ++round) {
    status = monitor.update(
        bed.sense(bed.tag_state(slot, 0.3, "water"), 900 + round));
  }
  EXPECT_EQ(status, LeakageStatus::kSteady);
  for (int round = 10; round < 30 && status != LeakageStatus::kAlarm;
       ++round) {
    status = monitor.update(
        bed.sense(bed.tag_state(slot, 0.3, "none"), 900 + round));
  }
  EXPECT_EQ(status, LeakageStatus::kAlarm);
}

TEST(LeakageMonitor, EndToEndNudgeDoesNotAlarm) {
  // The tag is nudged a few cm and rotated between rounds — the failure
  // mode that breaks entangled-phase leak detectors. The disentangled
  // kt/bt stay put, so no alarm.
  Testbed bed{};
  LeakageMonitor monitor;
  Rng rng(707);
  LeakageStatus status = LeakageStatus::kLearning;
  for (int round = 0; round < 30; ++round) {
    const Vec2 slot{1.1 + rng.uniform(-0.04, 0.04),
                    0.9 + rng.uniform(-0.04, 0.04)};
    const double alpha = rng.uniform(0.0, kPi);
    status = monitor.update(
        bed.sense(bed.tag_state(slot, alpha, "water"), 950 + round));
    ASSERT_NE(status, LeakageStatus::kAlarm) << "round " << round;
  }
  EXPECT_EQ(status, LeakageStatus::kSteady);
}

TEST(LeakageStatusNames, Stable) {
  EXPECT_STREQ(to_string(LeakageStatus::kLearning), "learning");
  EXPECT_STREQ(to_string(LeakageStatus::kSteady), "steady");
  EXPECT_STREQ(to_string(LeakageStatus::kAlarm), "alarm");
}

}  // namespace
}  // namespace rfp
