#include "rfp/dsp/stats.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Mean, EmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), InvalidArgument);
}

TEST(Stddev, KnownValue) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.138, 0.001);  // sample stddev (n-1)
}

TEST(Stddev, SingleElementIsZero) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Median, UnaffectedByOutlier) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(Mad, KnownValue) {
  // median = 3; |x - 3| = {2,1,0,1,2}; mad = 1.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mad(v), 1.0);
}

TEST(Mad, RobustToOutliers) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0, 1e9};
  EXPECT_LE(mad(v), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(Percentile, MedianAgreement) {
  Rng rng(61);
  std::vector<double> v;
  for (int i = 0; i < 999; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(percentile(v, 50.0), median(v), 1e-9);
}

TEST(Percentile, OutOfRangeThrows) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), InvalidArgument);
  EXPECT_THROW(percentile(v, 101.0), InvalidArgument);
}

TEST(MinMax, Basic) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Cdf, StepsThroughSample) {
  const Cdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, MonotoneNondecreasing) {
  Rng rng(62);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.gaussian(0.0, 2.0));
  const Cdf cdf(v);
  double prev = -1.0;
  for (double x = -8.0; x <= 8.0; x += 0.05) {
    const double c = cdf.at(x);
    ASSERT_GE(c, prev);
    prev = c;
  }
}

TEST(Cdf, QuantileInvertsAt) {
  Rng rng(63);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform());
  const Cdf cdf(v);
  for (double q : {0.1, 0.25, 0.5, 0.9, 1.0}) {
    const double x = cdf.quantile(q);
    EXPECT_GE(cdf.at(x), q - 1e-9);
  }
}

TEST(Cdf, SummaryStats) {
  const Cdf cdf(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_EQ(cdf.size(), 3u);
}

TEST(Cdf, CurveSpansRangeAndEndsAtOne) {
  Rng rng(64);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.gaussian(5.0, 1.0));
  const Cdf cdf(v);
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  EXPECT_DOUBLE_EQ(curve.front().first, cdf.min());
  EXPECT_DOUBLE_EQ(curve.back().first, cdf.max());
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Cdf, EmptyThrows) {
  EXPECT_THROW(Cdf(std::vector<double>{}), InvalidArgument);
}

TEST(Cdf, BadQuantileThrows) {
  const Cdf cdf(std::vector<double>{1.0});
  EXPECT_THROW(cdf.quantile(0.0), InvalidArgument);
  EXPECT_THROW(cdf.quantile(1.5), InvalidArgument);
}

}  // namespace
}  // namespace rfp
