#include "rfp/rfsim/material.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(MaterialDB, StandardContainsPaperMaterials) {
  const MaterialDB db = MaterialDB::standard();
  for (const char* name : {"none", "wood", "plastic", "glass", "metal",
                           "water", "milk", "oil", "alcohol"}) {
    EXPECT_TRUE(db.contains(name)) << name;
  }
  EXPECT_EQ(db.size(), 9u);
}

TEST(MaterialDB, NoneIsNeutral) {
  const MaterialDB db = MaterialDB::standard();
  const Material& none = db.get("none");
  EXPECT_DOUBLE_EQ(none.kt, 0.0);
  EXPECT_DOUBLE_EQ(none.bt, 0.0);
  EXPECT_DOUBLE_EQ(none.signature(915e6), 0.0);
  EXPECT_FALSE(none.conductive);
}

TEST(MaterialDB, ConductivityAssignments) {
  const MaterialDB db = MaterialDB::standard();
  EXPECT_TRUE(db.get("metal").conductive);
  EXPECT_TRUE(db.get("water").conductive);
  EXPECT_TRUE(db.get("milk").conductive);
  EXPECT_TRUE(db.get("alcohol").conductive);
  EXPECT_FALSE(db.get("wood").conductive);
  EXPECT_FALSE(db.get("oil").conductive);
}

TEST(MaterialDB, DistinctKtPerMaterial) {
  const MaterialDB db = MaterialDB::standard();
  const auto names = db.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(db.get(names[i]).kt, db.get(names[j]).kt)
          << names[i] << " vs " << names[j];
    }
  }
}

TEST(MaterialDB, WaterAndMilkAreNeighbours) {
  // The paper's confusion matrix hinges on water ~ milk similarity.
  const MaterialDB db = MaterialDB::standard();
  const double gap = std::abs(db.get("water").kt - db.get("milk").kt);
  for (const auto& name : db.names()) {
    if (name == "water" || name == "milk" || name == "none") continue;
    EXPECT_GT(std::abs(db.get("water").kt - db.get(name).kt), gap) << name;
  }
}

TEST(MaterialDB, UnknownThrowsAndFindReturnsNullopt) {
  const MaterialDB db = MaterialDB::standard();
  EXPECT_THROW(db.get("plutonium"), NotFound);
  EXPECT_FALSE(db.find("plutonium").has_value());
  EXPECT_TRUE(db.find("wood").has_value());
}

TEST(MaterialDB, AddReplacesByName) {
  MaterialDB db;
  db.add({.name = "x", .kt = 1.0});
  db.add({.name = "x", .kt = 2.0});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.get("x").kt, 2.0);
}

TEST(MaterialDB, EmptyNameThrows) {
  MaterialDB db;
  EXPECT_THROW(db.add(Material{}), InvalidArgument);
}

TEST(MaterialSignature, DeterministicAndBounded) {
  const MaterialDB db = MaterialDB::standard();
  const Material& glass = db.get("glass");
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    const double f = channel_frequency(i);
    const double a = glass.signature(f);
    const double b = glass.signature(f);
    ASSERT_DOUBLE_EQ(a, b);
    ASSERT_LE(std::abs(a), glass.ripple_amplitude + 1e-12);
  }
}

TEST(MaterialSignature, DiffersAcrossMaterials) {
  const MaterialDB db = MaterialDB::standard();
  const double f = 915e6;
  EXPECT_NE(db.get("glass").signature(f), db.get("wood").signature(f));
  EXPECT_NE(db.get("water").signature(f), db.get("milk").signature(f));
}

TEST(MaterialSignature, SlopeLeakageIsSmall) {
  // The signature must not masquerade as propagation distance: its OLS
  // slope across the band must stay well below 1 cm equivalent.
  const MaterialDB db = MaterialDB::standard();
  for (const auto& name : db.names()) {
    const Material& m = db.get(name);
    double sxy = 0.0, sxx = 0.0;
    const double f_mean = kMidBandHz;
    double y_mean = 0.0;
    for (std::size_t i = 0; i < kNumChannels; ++i) {
      y_mean += m.signature(channel_frequency(i));
    }
    y_mean /= static_cast<double>(kNumChannels);
    for (std::size_t i = 0; i < kNumChannels; ++i) {
      const double fx = channel_frequency(i) - f_mean;
      sxx += fx * fx;
      sxy += fx * (m.signature(channel_frequency(i)) - y_mean);
    }
    const double slope = sxy / sxx;
    const double equivalent_distance = slope / kSlopePerMeter;
    // The leakage is common-mode across antennas (absorbed into kt), so
    // it never biases position; this bound just keeps it from distorting
    // the kt feature by more than ~material spacing.
    EXPECT_LT(std::abs(equivalent_distance), 0.05) << name;
  }
}

TEST(MaterialDB, NamesInInsertionOrder) {
  MaterialDB db;
  db.add({.name = "b"});
  db.add({.name = "a"});
  const auto names = db.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
}

}  // namespace
}  // namespace rfp
