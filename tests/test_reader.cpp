#include "rfp/rfsim/reader.hpp"

#include <set>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

class ReaderTest : public ::testing::Test {
 protected:
  ReaderTest()
      : scene_(make_scene_2d(31)),
        tag_(make_tag_hardware("t", 31)),
        state_{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.0), "none"} {
    channel_ = ChannelConfig::clean();
  }

  Scene scene_;
  TagHardware tag_;
  TagState state_;
  ReaderConfig reader_;
  ChannelConfig channel_;
};

TEST_F(ReaderTest, VisitsEveryChannelOnEveryAntenna) {
  Rng rng(1);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  EXPECT_EQ(trace.n_antennas, 3u);
  EXPECT_EQ(trace.dwells.size(), kNumChannels * 3u);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& dwell : trace.dwells) {
    seen.insert({dwell.antenna, dwell.channel});
    EXPECT_EQ(dwell.phases.size(), reader_.reads_per_antenna_per_channel);
    EXPECT_EQ(dwell.rssi_dbm.size(), dwell.phases.size());
  }
  EXPECT_EQ(seen.size(), kNumChannels * 3u);
}

TEST_F(ReaderTest, PhasesAreWrapped) {
  Rng rng(2);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  for (const auto& dwell : trace.dwells) {
    for (double p : dwell.phases) {
      ASSERT_GE(p, 0.0);
      ASSERT_LT(p, kTwoPi);
    }
  }
}

TEST_F(ReaderTest, RoundDurationMatchesDwellTimes) {
  Rng rng(3);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  // The paper's R420 figure: 50 channels x 200 ms = 10 s.
  EXPECT_NEAR(trace.duration_s, 10.0, 1e-12);
  for (const auto& dwell : trace.dwells) {
    ASSERT_GE(dwell.start_time_s, 0.0);
    ASSERT_LT(dwell.start_time_s, trace.duration_s);
  }
}

TEST_F(ReaderTest, HopOrderRandomizedButDeterministicPerTrial) {
  Rng rng1(4), rng2(4), rng3(4);
  const RoundTrace a =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng1);
  const RoundTrace b =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng2);
  const RoundTrace c =
      collect_round(scene_, reader_, channel_, tag_, state_, 101, rng3);
  // Same trial seed -> same hop order.
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    ASSERT_EQ(a.dwells[i].channel, b.dwells[i].channel);
  }
  // Different trial seed -> (almost surely) different order.
  bool differs = false;
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    if (a.dwells[i].channel != c.dwells[i].channel) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
  // Not simply ascending.
  bool ascending = true;
  for (std::size_t i = 3; i < a.dwells.size(); i += 3) {
    if (a.dwells[i].channel < a.dwells[i - 3].channel) ascending = false;
  }
  EXPECT_FALSE(ascending);
}

TEST_F(ReaderTest, SequentialHopOrderWhenRequested) {
  reader_.randomize_hop_order = false;
  Rng rng(5);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  for (std::size_t i = trace.n_antennas; i < trace.dwells.size();
       i += trace.n_antennas) {
    ASSERT_EQ(trace.dwells[i].channel,
              trace.dwells[i - trace.n_antennas].channel + 1);
  }
}

TEST_F(ReaderTest, PiJumpsOccurAtConfiguredRate) {
  reader_.pi_jump_prob = 0.25;
  reader_.read_phase_noise = 0.0;
  channel_.trial_ripple_amplitude = 0.0;
  channel_.trial_offset_sigma = 0.0;
  channel_.trial_range_jitter_m = 0.0;
  channel_.channel_corruption_prob = 0.0;
  Rng rng(6);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  // Within each dwell, reads are either the base phase or base + pi; count
  // the minority fraction.
  std::size_t jumps = 0, total = 0;
  for (const auto& dwell : trace.dwells) {
    for (double p : dwell.phases) {
      // Compare against the first read modulo pi parity.
      const double delta = std::abs(ang_diff(p, dwell.phases[0]));
      ++total;
      if (delta > kPi / 2.0) ++jumps;
    }
  }
  const double rate = static_cast<double>(jumps) / total;
  // First read itself may be jumped; the observable flip rate vs read 0 is
  // p*(1-p)*2 = 0.375 for p = 0.25.
  EXPECT_NEAR(rate, 0.375, 0.05);
}

TEST_F(ReaderTest, NoiseFreeReadsAreExact) {
  reader_.pi_jump_prob = 0.0;
  reader_.read_phase_noise = 0.0;
  channel_ = ChannelConfig();
  channel_.trial_ripple_amplitude = 0.0;
  channel_.trial_offset_sigma = 0.0;
  channel_.trial_range_jitter_m = 0.0;
  channel_.channel_corruption_prob = 0.0;
  Rng rng(7);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng);
  const ChannelModel model(scene_, channel_, 100);
  for (const auto& dwell : trace.dwells) {
    const double expected = wrap_to_2pi(
        model.reported_phase(dwell.antenna, state_, tag_, dwell.frequency_hz));
    for (double p : dwell.phases) {
      ASSERT_NEAR(std::abs(ang_diff(p, expected)), 0.0, 1e-9);
    }
  }
}

TEST_F(ReaderTest, MobilityChangesPhasesAcrossTheRound) {
  reader_.pi_jump_prob = 0.0;
  reader_.read_phase_noise = 0.0;
  const MobilityModel moving =
      MobilityModel::linear_motion(state_, Vec3{0.05, 0.0, 0.0});
  Rng rng(8);
  const RoundTrace trace =
      collect_round(scene_, reader_, channel_, tag_, moving, 100, rng);
  // The same channel visited at different times by different antennas is
  // fine; instead compare first and last read within one dwell: the tag
  // moves ~ 0.05 m/s * (dwell/antennas) which shifts phase measurably
  // across the whole round. Check across two dwells of one antenna.
  const Dwell* first = nullptr;
  const Dwell* last = nullptr;
  for (const auto& dwell : trace.dwells) {
    if (dwell.antenna != 0) continue;
    if (first == nullptr) first = &dwell;
    last = &dwell;
  }
  ASSERT_NE(first, last);
  EXPECT_GT(last->start_time_s - first->start_time_s, 5.0);
}

TEST_F(ReaderTest, ZeroReadsThrows) {
  reader_.reads_per_antenna_per_channel = 0;
  Rng rng(9);
  EXPECT_THROW(
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng),
      InvalidArgument);
}

TEST_F(ReaderTest, BadDwellThrows) {
  reader_.dwell_s = 0.0;
  Rng rng(10);
  EXPECT_THROW(
      collect_round(scene_, reader_, channel_, tag_, state_, 100, rng),
      InvalidArgument);
}

}  // namespace
}  // namespace rfp
