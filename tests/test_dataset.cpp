#include "rfp/ml/dataset.hpp"

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"

namespace rfp {
namespace {

Dataset two_class_data() {
  Dataset d({"a", "b"});
  d.add({0.0, 0.0}, 0);
  d.add({0.1, 0.0}, 0);
  d.add({1.0, 1.0}, 1);
  d.add({1.1, 1.0}, 1);
  return d;
}

TEST(Dataset, AddAndAccess) {
  const Dataset d = two_class_data();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.n_classes(), 2u);
  EXPECT_EQ(d.label(2), 1);
  EXPECT_DOUBLE_EQ(d.features(1)[0], 0.1);
}

TEST(Dataset, DimensionMismatchThrows) {
  Dataset d({"a"});
  d.add({1.0, 2.0}, 0);
  EXPECT_THROW(d.add({1.0}, 0), InvalidArgument);
}

TEST(Dataset, LabelOutOfRangeThrows) {
  Dataset d({"a"});
  EXPECT_THROW(d.add({1.0}, 1), InvalidArgument);
  EXPECT_THROW(d.add({1.0}, -1), InvalidArgument);
}

TEST(Dataset, EmptyFeatureVectorThrows) {
  Dataset d({"a"});
  EXPECT_THROW(d.add({}, 0), InvalidArgument);
}

TEST(Dataset, LabelIdRegistersNewClasses) {
  Dataset d;
  EXPECT_EQ(d.label_id("x"), 0);
  EXPECT_EQ(d.label_id("y"), 1);
  EXPECT_EQ(d.label_id("x"), 0);
  EXPECT_EQ(d.n_classes(), 2u);
}

TEST(StratifiedSplit, PreservesClassBalance) {
  Dataset d({"a", "b"});
  for (int i = 0; i < 40; ++i) d.add({static_cast<double>(i)}, 0);
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i) + 100}, 1);
  Rng rng(111);
  const auto [train, test] = d.stratified_split(0.5, rng);
  EXPECT_EQ(train.size(), 30u);
  EXPECT_EQ(test.size(), 30u);
  std::size_t train_a = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (train.label(i) == 0) ++train_a;
  }
  EXPECT_EQ(train_a, 20u);
}

TEST(StratifiedSplit, DisjointAndComplete) {
  Dataset d({"a"});
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 0);
  Rng rng(112);
  const auto [train, test] = d.stratified_split(0.7, rng);
  EXPECT_EQ(train.size() + test.size(), 10u);
  // Every original value appears exactly once across the two splits.
  std::vector<double> seen;
  for (std::size_t i = 0; i < train.size(); ++i) {
    seen.push_back(train.features(i)[0]);
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    seen.push_back(test.features(i)[0]);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(StratifiedSplit, BadFractionThrows) {
  Dataset d = two_class_data();
  Rng rng(113);
  EXPECT_THROW(d.stratified_split(0.0, rng), InvalidArgument);
  EXPECT_THROW(d.stratified_split(1.0, rng), InvalidArgument);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Dataset d({"a"});
  d.add({1.0, 100.0}, 0);
  d.add({2.0, 200.0}, 0);
  d.add({3.0, 300.0}, 0);
  const Standardizer s(d);
  const Dataset t = s.transform(d);
  for (std::size_t j = 0; j < 2; ++j) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      sum += t.features(i)[j];
      sum2 += t.features(i)[j] * t.features(i)[j];
    }
    EXPECT_NEAR(sum, 0.0, 1e-9);
    EXPECT_NEAR(sum2 / 2.0, 1.0, 1e-9);  // n-1 = 2
  }
}

TEST(Standardizer, ConstantFeatureLeftCentered) {
  Dataset d({"a"});
  d.add({5.0}, 0);
  d.add({5.0}, 0);
  const Standardizer s(d);
  const auto t = s.transform(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

TEST(Standardizer, DimensionMismatchThrows) {
  const Dataset d = two_class_data();
  const Standardizer s(d);
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Standardizer, EmptyDatasetThrows) {
  EXPECT_THROW(Standardizer(Dataset{}), InvalidArgument);
}

}  // namespace
}  // namespace rfp
