/// Multi-tenant serving end to end over loopback: wire-v2 sessions ship
/// their own deployments, and every tenant's responses must be
/// byte-identical to a single-tenant baseline solved locally with the
/// same grafted pipeline — across engine thread counts, reactor counts,
/// rank kernels, and faulted/degraded rounds. Also: streaming sessions
/// vs a local StreamingSensor, session replay on reconnect, registry
/// exhaustion over the wire, per-tenant drift, and a session
/// setup/teardown fuzz loop for the sanitizer jobs.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/deployment_registry.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/net/client.hpp"
#include "rfp/net/server.hpp"
#include "rfp/rfsim/faults.hpp"

namespace rfp {
namespace {

using net::Client;
using net::ClientConfig;
using net::RemoteError;
using net::Server;
using net::ServerConfig;
using net::SessionReady;
using net::WireError;

/// The server's own deployment: the 4-antenna fault-tolerance rig.
const Testbed& default_bed() {
  static const Testbed bed([] {
    TestbedConfig config;
    config.n_antennas = 4;
    return config;
  }());
  return bed;
}

/// Session deployment B: same antenna count, different site (seed moves
/// every surveyed antenna), so a cross-tenant mixup still solves — only
/// byte comparison catches it.
const Testbed& bed_b() {
  static const Testbed bed([] {
    TestbedConfig config;
    config.seed = 7;
    config.n_antennas = 4;
    return config;
  }());
  return bed;
}

/// Session deployment C: different antenna count entirely.
const Testbed& bed_c() {
  static const Testbed bed([] {
    TestbedConfig config;
    config.seed = 9;
    return config;  // 3-antenna planar default
  }());
  return bed;
}

ClientConfig client_config(std::uint16_t port) {
  ClientConfig config;
  config.port = port;
  config.io_timeout_s = 120.0;  // solves on a loaded CI box can be slow
  return config;
}

/// Mirror of the registry's graft: the server's solver settings with the
/// shipped deployment's geometry + calibrations. This is the single-tenant
/// pipeline a dedicated daemon for that site would run.
RfPrism graft(const RfPrism& server_prism, const Testbed& bed) {
  RfPrismConfig config = server_prism.config();
  config.geometry = bed.prism().config().geometry;
  RfPrism prism(std::move(config));
  prism.import_calibrations(bed.prism().calibrations());
  return prism;
}

std::vector<RoundTrace> make_corpus(const Testbed& bed, std::size_t n_clean,
                                    std::size_t n_faulted,
                                    std::uint64_t salt) {
  std::vector<RoundTrace> corpus;
  Rng rng(mix_seed(salt, 0x7E4A));
  const auto materials = paper_materials();
  const FaultInjector injector(
      FaultProfile::scaled(0.8, mix_seed(salt, 0xFA17)));
  for (std::size_t k = 0; k < n_clean + n_faulted; ++k) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state = bed.tag_state(p, rng.uniform(0.0, kPi),
                                         materials[k % materials.size()]);
    RoundTrace round = bed.collect(state, 7000 + salt * 100 + k);
    if (k >= n_clean) round = injector.apply(round, 7000 + salt * 100 + k);
    corpus.push_back(std::move(round));
  }
  return corpus;
}

std::vector<std::vector<std::uint8_t>> expected_bytes(
    const RfPrism& prism, const std::vector<RoundTrace>& corpus,
    SensingEngine& engine, const std::string& tag_id) {
  std::vector<std::vector<std::uint8_t>> expected;
  expected.reserve(corpus.size());
  for (const SensingResult& r : prism.sense_batch(corpus, engine, tag_id)) {
    expected.push_back(net::encode_sense_response(r));
  }
  return expected;
}

/// Require that a corpus's expected bytes span beyond kFull — identical
/// bytes on trivially clean rounds would prove nothing about the faulted
/// paths.
void require_grade_spread(const RfPrism& prism,
                          const std::vector<RoundTrace>& corpus,
                          const std::string& tag_id) {
  bool saw_non_full = false;
  for (const RoundTrace& round : corpus) {
    if (prism.sense(round, tag_id).grade != SensingGrade::kFull) {
      saw_non_full = true;
    }
  }
  ASSERT_TRUE(saw_non_full) << "fault injection produced only full grades";
}

/// The core isolation check: three tenants (default A, sessions B and C)
/// hammered concurrently, every response compared byte-for-byte against
/// its single-tenant baseline.
void run_isolation_sweep(std::size_t engine_threads, std::size_t reactors,
                         bool scalar_kernel) {
  const Testbed& bed_a = default_bed();
  RfPrismConfig server_config_prism = bed_a.prism().config();
  if (scalar_kernel) {
    server_config_prism.disentangle.rank_kernel = RankKernel::kFactoredScalar;
  }
  const RfPrism server_prism =
      bed_a.make_pipeline_variant(std::move(server_config_prism));

  const RfPrism prism_b = graft(server_prism, bed_b());
  const RfPrism prism_c = graft(server_prism, bed_c());

  const std::vector<RoundTrace> corpus_a = make_corpus(bed_a, 3, 3, 1);
  const std::vector<RoundTrace> corpus_b = make_corpus(bed_b(), 3, 3, 2);
  const std::vector<RoundTrace> corpus_c = make_corpus(bed_c(), 3, 3, 3);

  SensingEngine engine(engine_threads);
  const auto expected_a =
      expected_bytes(server_prism, corpus_a, engine, bed_a.tag_id());
  const auto expected_b =
      expected_bytes(prism_b, corpus_b, engine, bed_b().tag_id());
  const auto expected_c =
      expected_bytes(prism_c, corpus_c, engine, bed_c().tag_id());

  ServerConfig config;
  config.reactors = reactors;
  Server server(server_prism, engine, config);
  server.start();

  struct Job {
    const Testbed* bed;
    const std::vector<RoundTrace>* corpus;
    const std::vector<std::vector<std::uint8_t>>* expected;
    bool session;
  };
  const std::vector<Job> jobs = {
      {&bed_a, &corpus_a, &expected_a, false},
      {&bed_b(), &corpus_b, &expected_b, true},
      {&bed_c(), &corpus_c, &expected_c, true},
  };

  std::vector<std::string> failures(jobs.size());
  std::vector<std::thread> threads;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    threads.emplace_back([&, j] {
      const Job& job = jobs[j];
      try {
        Client client(client_config(server.port()));
        if (job.session) {
          const SessionReady ready = client.setup_session(
              job.bed->prism().config().geometry,
              job.bed->prism().calibrations());
          if (ready.n_antennas !=
              job.bed->prism().config().geometry.n_antennas()) {
            failures[j] = "session ready antenna count mismatch";
            return;
          }
        }
        for (std::size_t pass = 0; pass < 2; ++pass) {
          for (std::size_t k = 0; k < job.corpus->size(); ++k) {
            const std::vector<std::uint8_t> raw =
                client.sense_raw((*job.corpus)[k], job.bed->tag_id());
            if (raw != (*job.expected)[k]) {
              failures[j] = "tenant response bytes differ for round " +
                            std::to_string(k);
              return;
            }
          }
        }
      } catch (const std::exception& e) {
        failures[j] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(failures[j], "") << "tenant job " << j;
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.tenants_resident, 3u);  // default + B + C
  EXPECT_EQ(stats.requests_failed, 0u);

  // Per-tenant accounting: every tenant saw exactly its own corpus.
  for (const TenantStats& tenant : server.tenant_stats()) {
    if (tenant.is_default) {
      EXPECT_EQ(tenant.requests_completed, 2 * corpus_a.size());
    } else {
      EXPECT_EQ(tenant.sessions_opened, 1u);
      EXPECT_EQ(tenant.requests_completed, 2 * corpus_b.size());
    }
  }
}

TEST(MultiTenant, ConcurrentTenantsAreByteIdenticalSingleThread) {
  run_isolation_sweep(/*engine_threads=*/1, /*reactors=*/1,
                      /*scalar_kernel=*/false);
}

TEST(MultiTenant, ConcurrentTenantsAreByteIdenticalTwoThreadsTwoReactors) {
  run_isolation_sweep(/*engine_threads=*/2, /*reactors=*/2,
                      /*scalar_kernel=*/false);
}

TEST(MultiTenant, ConcurrentTenantsAreByteIdenticalEightThreads) {
  run_isolation_sweep(/*engine_threads=*/8, /*reactors=*/2,
                      /*scalar_kernel=*/false);
}

TEST(MultiTenant, ConcurrentTenantsAreByteIdenticalScalarKernel) {
  run_isolation_sweep(/*engine_threads=*/2, /*reactors=*/1,
                      /*scalar_kernel=*/true);
}

TEST(MultiTenant, FaultedCorpusSpansGrades) {
  // Guard for the sweeps above: the shared corpora must actually exercise
  // the degraded/rejected paths on at least one tenant.
  const RfPrism prism_b = graft(default_bed().prism(), bed_b());
  require_grade_spread(prism_b, make_corpus(bed_b(), 3, 3, 2),
                       bed_b().tag_id());
}

TEST(MultiTenant, StreamingSessionMatchesLocalStreamingSensor) {
  const Testbed& bed_a = default_bed();
  const RfPrism prism_b = graft(bed_a.prism(), bed_b());

  SensingEngine engine(2);
  Server server(bed_a.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  client.setup_session(bed_b().prism().config().geometry,
                       bed_b().prism().calibrations());

  // Local reference: the same sensor a dedicated deployment would run
  // (engine-less is bit-identical per StreamingSensor's contract).
  StreamingSensor local(prism_b, ServerConfig{}.stream);

  Rng rng(mix_seed(5, 0x57));
  const auto materials = paper_materials();
  double clock = 0.0;
  std::size_t emissions = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const Vec2 p{0.4 + 1.2 * rng.uniform(), 0.4 + 1.2 * rng.uniform()};
    const TagState state = bed_b().tag_state(p, rng.uniform(0.0, kPi),
                                             materials[k]);
    const RoundTrace round = bed_b().collect(state, 9100 + k);
    std::vector<TagRead> reads =
        round_to_reads(round, "stream-" + std::to_string(k));
    for (TagRead& read : reads) read.time_s += clock;
    double newest = clock;
    for (const TagRead& read : reads) newest = std::max(newest, read.time_s);
    clock = newest + 0.5;

    const std::vector<std::uint8_t> remote =
        client.push_stream_raw(reads, clock);
    local.push(reads);
    const std::vector<std::uint8_t> expected =
        net::encode_stream_results(local.poll(clock));
    EXPECT_EQ(remote, expected) << "stream round " << k;
    std::vector<StreamedResult> decoded;
    ASSERT_TRUE(net::decode_stream_results(remote, decoded));
    emissions += decoded.size();
  }
  EXPECT_GT(emissions, 0u);  // the comparison exercised real emissions

  client.close_session();
  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.stream_results, emissions);
  EXPECT_GT(stats.stream_reads, 0u);
}

TEST(MultiTenant, SessionReplayAfterReconnectStaysOnTenant) {
  const Testbed& bed_a = default_bed();
  const RfPrism prism_b = graft(bed_a.prism(), bed_b());
  const std::vector<RoundTrace> corpus = make_corpus(bed_b(), 2, 0, 6);

  SensingEngine engine(2);
  const auto expected =
      expected_bytes(prism_b, corpus, engine, bed_b().tag_id());

  Server server(bed_a.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  client.setup_session(bed_b().prism().config().geometry,
                       bed_b().prism().calibrations());
  EXPECT_TRUE(client.has_session());
  EXPECT_EQ(client.sense_raw(corpus[0], bed_b().tag_id()), expected[0]);

  // Kill the connection: the next request reconnects and must replay the
  // session setup first — the response is still tenant B's bytes, never
  // the default tenant's.
  client.close();
  EXPECT_EQ(client.sense_raw(corpus[1], bed_b().tag_id()), expected[1]);

  server.stop();
  const std::uint64_t digest_b = DeploymentRegistry::digest_of(
      bed_b().prism().config().geometry, bed_b().prism().calibrations());
  for (const TenantStats& tenant : server.tenant_stats()) {
    if (tenant.digest != digest_b) continue;
    EXPECT_EQ(tenant.sessions_opened, 2u);  // original + replay
    EXPECT_EQ(tenant.requests_completed, 2u);
  }
  EXPECT_EQ(server.stats().sessions_opened, 2u);
}

TEST(MultiTenant, RegistryExhaustionSurfacesAsRemoteError) {
  const Testbed& bed_a = default_bed();
  SensingEngine engine(1);
  ServerConfig config;
  config.max_tenants = 2;  // default + exactly one session deployment
  Server server(bed_a.prism(), engine, config);
  server.start();

  Client first(client_config(server.port()));
  first.setup_session(bed_b().prism().config().geometry,
                      bed_b().prism().calibrations());

  Client second(client_config(server.port()));
  try {
    second.setup_session(bed_c().prism().config().geometry,
                         bed_c().prism().calibrations());
    FAIL() << "registry full was not reported";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(),
              static_cast<std::uint32_t>(WireError::kRegistryFull));
  }

  // Closing the pinning session frees the slot: the same setup now
  // succeeds by evicting tenant B.
  first.close_session();
  EXPECT_FALSE(first.has_session());
  const SessionReady ready =
      second.setup_session(bed_c().prism().config().geometry,
                           bed_c().prism().calibrations());
  EXPECT_EQ(ready.n_antennas,
            bed_c().prism().config().geometry.n_antennas());

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.tenants_evicted, 1u);
  EXPECT_EQ(stats.tenants_resident, 2u);
}

TEST(MultiTenant, MalformedSessionSetupKeepsConnectionUsable) {
  const Testbed& bed_a = default_bed();
  const std::vector<RoundTrace> corpus = make_corpus(bed_a, 1, 0, 8);
  SensingEngine engine(1);
  Server server(bed_a.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  const std::vector<std::uint8_t> junk = {4, 5, 6};
  client.send_bytes(
      net::encode_frame(net::FrameType::kSessionSetup, 501, junk));
  const net::Frame frame = client.read_frame();
  ASSERT_EQ(frame.type, net::FrameType::kError);
  EXPECT_EQ(frame.seq, 501u);
  WireError code;
  std::string message;
  ASSERT_TRUE(net::decode_error_payload(frame.payload, code, message));
  EXPECT_EQ(code, WireError::kMalformedPayload);

  // The connection survives, still bound to the default tenant.
  EXPECT_EQ(client.sense_raw(corpus[0], bed_a.tag_id()),
            net::encode_sense_response(
                bed_a.prism().sense(corpus[0], bed_a.tag_id())));

  server.stop();
  EXPECT_EQ(server.stats().sessions_opened, 0u);
  EXPECT_EQ(server.stats().connections_closed_protocol, 0u);
}

TEST(MultiTenant, SessionCloseIsIdempotentAndRebindsToDefault) {
  const Testbed& bed_a = default_bed();
  const std::vector<RoundTrace> corpus_a = make_corpus(bed_a, 1, 0, 10);
  SensingEngine engine(1);
  Server server(bed_a.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  client.setup_session(bed_b().prism().config().geometry,
                       bed_b().prism().calibrations());
  client.close_session();
  client.close_session();  // idempotent: second close is a no-op ack

  // Back on the default tenant: default-deployment rounds solve again.
  EXPECT_EQ(client.sense_raw(corpus_a[0], bed_a.tag_id()),
            net::encode_sense_response(
                bed_a.prism().sense(corpus_a[0], bed_a.tag_id())));

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);  // only the bound close counts
}

TEST(MultiTenant, DriftEnabledSessionReportsPerTenantDrift) {
  const Testbed& bed_a = default_bed();
  SensingEngine engine(2);
  Server server(bed_a.prism(), engine);
  server.start();

  Client client(client_config(server.port()));
  const SessionReady ready = client.setup_session(
      bed_b().prism().config().geometry, bed_b().prism().calibrations(),
      /*enable_drift=*/true);
  EXPECT_TRUE(ready.drift_enabled);

  const TagState state = bed_b().tag_state({0.8, 1.2}, 0.5, "glass");
  constexpr std::size_t kRounds = 6;
  for (std::size_t k = 0; k < kRounds; ++k) {
    const SensingResult result =
        client.sense(bed_b().collect(state, 9500 + k), bed_b().tag_id());
    EXPECT_TRUE(result.valid) << "round " << k;
  }

  server.stop();
  const std::uint64_t digest_b = DeploymentRegistry::digest_of(
      bed_b().prism().config().geometry, bed_b().prism().calibrations());
  bool found = false;
  for (const TenantStats& tenant : server.tenant_stats()) {
    if (tenant.digest != digest_b) continue;
    found = true;
    EXPECT_TRUE(tenant.drift_enabled);
    EXPECT_EQ(tenant.drift.rounds_observed, kRounds);
  }
  EXPECT_TRUE(found);
  // The engine's deployment-level estimator stays untouched.
  EXPECT_EQ(server.stats().drift_rounds_observed, 0u);
}

TEST(MultiTenant, SessionSetupTeardownFuzz) {
  // Sanitizer hunting ground: concurrent clients churning sessions open
  // and closed across two deployments, with malformed setups and abrupt
  // disconnects mixed in. Any outcome is fine except a crash, a data
  // race, or a wrong-tenant response.
  const Testbed& bed_a = default_bed();
  const RfPrism prism_b = graft(bed_a.prism(), bed_b());
  const RfPrism prism_c = graft(bed_a.prism(), bed_c());
  const std::vector<RoundTrace> corpus_b = make_corpus(bed_b(), 1, 0, 12);
  const std::vector<RoundTrace> corpus_c = make_corpus(bed_c(), 1, 0, 13);

  SensingEngine engine(2);
  const auto expected_b =
      expected_bytes(prism_b, corpus_b, engine, bed_b().tag_id());
  const auto expected_c =
      expected_bytes(prism_c, corpus_c, engine, bed_c().tag_id());

  ServerConfig config;
  config.reactors = 2;
  config.max_tenants = 3;
  Server server(bed_a.prism(), engine, config);
  server.start();

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kIterations = 8;
  std::atomic<std::uint64_t> malformed_sent{0};
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(mix_seed(t, 0xF422));
      try {
        for (std::size_t i = 0; i < kIterations; ++i) {
          Client client(client_config(server.port()));
          const bool use_b = rng.bernoulli(0.5);
          const Testbed& bed = use_b ? bed_b() : bed_c();
          if (rng.bernoulli(0.2)) {
            // Malformed setup: answered with an error, connection lives.
            const std::vector<std::uint8_t> junk = {1, 2, 3};
            client.send_bytes(net::encode_frame(
                net::FrameType::kSessionSetup, 1, junk));
            (void)client.read_frame();
            ++malformed_sent;
            continue;  // drop the connection abruptly
          }
          client.setup_session(bed.prism().config().geometry,
                               bed.prism().calibrations(),
                               rng.bernoulli(0.3));
          if (rng.bernoulli(0.5)) {
            const auto& corpus = use_b ? corpus_b : corpus_c;
            const auto& expected = use_b ? expected_b : expected_c;
            const std::vector<std::uint8_t> raw =
                client.sense_raw(corpus[0], bed.tag_id());
            if (raw != expected[0]) {
              failures[t] = "fuzz: wrong-tenant response bytes";
              return;
            }
          }
          if (rng.bernoulli(0.5)) client.close_session();
          // Otherwise the destructor drops the connection mid-session.
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "fuzz thread " << t;
  }

  server.stop();
  // Malformed setups are answered with error frames and counted as failed
  // requests; nothing else may fail.
  EXPECT_EQ(server.stats().requests_failed, malformed_sent.load());
  EXPECT_LE(server.stats().tenants_resident, 3u);
}

}  // namespace
}  // namespace rfp
