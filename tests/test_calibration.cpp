#include "rfp/core/calibration.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;
using testutil::fit_round;
using testutil::noiseless_channel;
using testutil::noiseless_reader;

class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest()
      : scene_(make_scene_2d(61)),
        geometry_(exact_geometry(scene_)),
        reference_{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.0)} {}

  Scene scene_;
  DeploymentGeometry geometry_;
  ReferencePose reference_;
};

TEST_F(CalibrationTest, ReaderCalibrationRecoversPortDifferences) {
  const TagHardware ref_tag = make_tag_hardware("ref", 61);
  const TagState state{reference_.position, reference_.polarization, "none"};
  Rng rng(1);
  const auto lines = fit_round(scene_, noiseless_reader(),
                               noiseless_channel(), ref_tag, state, 5, rng);
  const ReaderCalibration cal = calibrate_reader(geometry_, lines, reference_);
  ASSERT_EQ(cal.n_antennas(), 3u);
  EXPECT_DOUBLE_EQ(cal.delta_k[0], 0.0);
  EXPECT_DOUBLE_EQ(cal.delta_b[0], 0.0);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_NEAR(cal.delta_k[i],
                scene_.antennas[i].kr - scene_.antennas[0].kr, 1e-11);
    EXPECT_NEAR(std::abs(ang_diff(
                    cal.delta_b[i],
                    scene_.antennas[i].br - scene_.antennas[0].br)),
                0.0, 1e-6);
  }
}

TEST_F(CalibrationTest, ApplyEqualizesPorts) {
  const TagHardware ref_tag = make_tag_hardware("ref", 61);
  const TagState state{reference_.position, reference_.polarization, "none"};
  Rng rng(2);
  auto lines = fit_round(scene_, noiseless_reader(), noiseless_channel(),
                         ref_tag, state, 6, rng);
  const ReaderCalibration cal = calibrate_reader(geometry_, lines, reference_);
  apply_reader_calibration(cal, lines);
  // After equalization, every antenna's slope residual (k - C*d) is the
  // same (kr of antenna 0 plus the tag device slope).
  std::vector<double> residuals;
  for (const auto& line : lines) {
    const double d = distance(geometry_.antenna_positions[line.antenna],
                              reference_.position);
    residuals.push_back(line.fit.slope - kSlopePerMeter * d);
  }
  EXPECT_NEAR(residuals[0], residuals[1], 1e-11);
  EXPECT_NEAR(residuals[0], residuals[2], 1e-11);
}

TEST_F(CalibrationTest, TagCalibrationRecoversDeviceResponse) {
  const TagHardware tag = make_tag_hardware("tag-x", 62);
  const TagState state{reference_.position, reference_.polarization, "none"};
  Rng rng(3);
  auto lines = fit_round(scene_, noiseless_reader(), noiseless_channel(),
                         tag, state, 7, rng);
  // Equalize ports first (same round works for this purpose here).
  const ReaderCalibration reader_cal =
      calibrate_reader(geometry_, lines, reference_);
  apply_reader_calibration(reader_cal, lines);
  const TagCalibration cal = calibrate_tag(geometry_, lines, reference_);
  // kd stored = tag.kd + antenna-0 port slope (shared reference).
  EXPECT_NEAR(cal.kd, tag.kd + scene_.antennas[0].kr, 1e-10);
  EXPECT_NEAR(std::abs(ang_diff(cal.bd, tag.bd + scene_.antennas[0].br)), 0.0,
              0.05);
  ASSERT_EQ(cal.residual_curve.size(), kNumChannels);
  for (double r : cal.residual_curve) EXPECT_LT(std::abs(r), 0.05);
}

TEST_F(CalibrationTest, MismatchedLineCountThrows) {
  std::vector<AntennaLine> two(2);
  two[0].fit.n = 10;
  two[1].fit.n = 10;
  EXPECT_THROW(calibrate_reader(geometry_, two, reference_), InvalidArgument);
}

TEST_F(CalibrationTest, UnusableLineThrows) {
  std::vector<AntennaLine> lines(3);
  for (std::size_t i = 0; i < 3; ++i) {
    lines[i].antenna = i;
    lines[i].fit.n = 0;  // unusable
  }
  EXPECT_THROW(calibrate_reader(geometry_, lines, reference_),
               InvalidArgument);
}

TEST_F(CalibrationTest, ApplyCountMismatchThrows) {
  ReaderCalibration cal;
  cal.delta_k = {0.0, 0.0};
  cal.delta_b = {0.0, 0.0};
  std::vector<AntennaLine> lines(3);
  EXPECT_THROW(apply_reader_calibration(cal, lines), InvalidArgument);
}

TEST(CalibrationDB, StoresAndLooksUp) {
  CalibrationDB db;
  EXPECT_FALSE(db.reader().has_value());
  EXPECT_FALSE(db.has_tag("t"));
  EXPECT_EQ(db.find_tag("t"), nullptr);

  db.set_reader(ReaderCalibration{{0.0}, {0.0}});
  EXPECT_TRUE(db.reader().has_value());

  TagCalibration cal;
  cal.kd = 1e-9;
  db.set_tag("t", cal);
  ASSERT_TRUE(db.has_tag("t"));
  EXPECT_DOUBLE_EQ(db.find_tag("t")->kd, 1e-9);
  EXPECT_EQ(db.n_tags(), 1u);

  // Overwrite.
  cal.kd = 2e-9;
  db.set_tag("t", cal);
  EXPECT_DOUBLE_EQ(db.find_tag("t")->kd, 2e-9);
  EXPECT_EQ(db.n_tags(), 1u);
}

TEST(CalibrationDB, EmptyTagIdThrows) {
  CalibrationDB db;
  EXPECT_THROW(db.set_tag("", TagCalibration{}), InvalidArgument);
}

}  // namespace
}  // namespace rfp
