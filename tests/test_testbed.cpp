#include "rfp/exp/testbed.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(TestbedHelpers, PaperRotationAngles) {
  const auto angles = paper_rotation_angles();
  ASSERT_EQ(angles.size(), 6u);
  EXPECT_DOUBLE_EQ(angles[0], 0.0);
  EXPECT_NEAR(angles[5], deg2rad(150.0), 1e-12);
}

TEST(TestbedHelpers, PaperMaterials) {
  const auto materials = paper_materials();
  ASSERT_EQ(materials.size(), 8u);
  EXPECT_EQ(materials[0], "wood");
  EXPECT_EQ(materials[7], "alcohol");
}

TEST(TestbedHelpers, PaperGridIs25PointsInsideRegion) {
  const Rect region{{0.0, 0.0}, {2.0, 2.0}};
  const auto grid = paper_grid_positions(region);
  ASSERT_EQ(grid.size(), 25u);
  for (Vec2 p : grid) {
    EXPECT_TRUE(region.contains(p));
    EXPECT_GT(p.x, 0.2);
    EXPECT_LT(p.x, 1.8);
  }
}

TEST(Testbed, ConstructsCalibratedPipeline) {
  const Testbed bed{};
  EXPECT_TRUE(bed.prism().reader_calibrated());
  EXPECT_TRUE(bed.prism().calibrations().has_tag(bed.tag_id()));
  EXPECT_EQ(bed.scene().antennas.size(), 3u);
}

TEST(Testbed, SenseIsDeterministicPerTrial) {
  const Testbed bed{};
  const TagState state = bed.tag_state({1.0, 1.0}, 0.5, "glass");
  const SensingResult a = bed.sense(state, 7);
  const SensingResult b = bed.sense(state, 7);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(a.position, b.position);
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
  const SensingResult c = bed.sense(state, 8);
  EXPECT_NE(a.position, c.position);
}

TEST(Testbed, HeadlineAccuracyInCleanSpace) {
  // The calibration pass of this reproduction: clean-space localization
  // and orientation errors must sit near the paper's headline numbers
  // (7.61 cm, 9.83 deg) — enforced loosely so the test is robust.
  const Testbed bed{};
  Rng rng(1);
  double loc_sum = 0.0, ori_sum = 0.0;
  int n = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const double alpha = rng.uniform(0.0, kPi);
    const SensingResult r =
        bed.sense(bed.tag_state(p, alpha, "plastic"), 100 + trial);
    if (!r.valid) continue;
    loc_sum += distance(r.position, Vec3{p, 0.0});
    ori_sum += rad2deg(planar_angle_error(r.alpha, alpha));
    ++n;
  }
  ASSERT_GT(n, 25);
  EXPECT_LT(loc_sum / n, 0.15);   // mean loc error < 15 cm
  EXPECT_GT(loc_sum / n, 0.02);   // and not implausibly perfect
  EXPECT_LT(ori_sum / n, 20.0);   // mean orientation error < 20 deg
}

TEST(Testbed, RegionsPartitionTheGrid) {
  const Testbed bed{};
  int near = 0, medium = 0, far = 0;
  for (Vec2 p : paper_grid_positions(bed.scene().working_region)) {
    switch (bed.region_of(p)) {
      case Region::kNear:
        ++near;
        break;
      case Region::kMedium:
        ++medium;
        break;
      case Region::kFar:
        ++far;
        break;
    }
  }
  EXPECT_GT(near, 4);
  EXPECT_GT(medium, 4);
  EXPECT_GT(far, 4);
  EXPECT_EQ(near + medium + far, 25);
}

TEST(Testbed, RegionOrderingMatchesDistance) {
  const Testbed bed{};
  // The closest grid row to the antennas must be 'near', the farthest
  // 'far'.
  EXPECT_EQ(bed.region_of({1.0, 0.3}), Region::kNear);
  EXPECT_EQ(bed.region_of({1.0, 1.9}), Region::kFar);
}

TEST(Testbed, MultipathEnvironmentAddsClutter) {
  TestbedConfig config;
  config.multipath_environment = true;
  config.n_clutter = 5;
  const Testbed bed(config);
  EXPECT_EQ(bed.scene().reflectors.size(), 5u);
  EXPECT_GT(bed.config().channel.channel_corruption_prob,
            ChannelConfig::clean().channel_corruption_prob);
}

TEST(Testbed, Mode3dBuildsFourAntennaScene) {
  TestbedConfig config;
  config.mode_3d = true;
  const Testbed bed(config);
  EXPECT_EQ(bed.scene().antennas.size(), 4u);
}

TEST(Testbed, UnknownMaterialThrows) {
  const Testbed bed{};
  EXPECT_THROW(bed.tag_state({1.0, 1.0}, 0.0, "adamantium"), InvalidArgument);
}

TEST(RegionNames, Stable) {
  EXPECT_STREQ(to_string(Region::kNear), "near");
  EXPECT_STREQ(to_string(Region::kMedium), "medium");
  EXPECT_STREQ(to_string(Region::kFar), "far");
}

}  // namespace
}  // namespace rfp
