#pragma once

/// Shared helpers for core/system tests: canonical noiseless and
/// mildly-noisy setups over the standard 2D scene, with exact geometry
/// handed to the pipeline (tests that want survey error add it
/// themselves).

#include <string>

#include "rfp/core/fitting.hpp"
#include "rfp/core/preprocess.hpp"
#include "rfp/core/types.hpp"
#include "rfp/rfsim/reader.hpp"

namespace rfp::testutil {

inline ChannelConfig noiseless_channel() {
  ChannelConfig c;
  c.trial_ripple_amplitude = 0.0;
  c.trial_offset_sigma = 0.0;
  c.trial_range_jitter_m = 0.0;
  c.channel_corruption_prob = 0.0;
  c.material_kt_rel_sigma = 0.0;
  c.material_bt_sigma = 0.0;
  c.material_ripple_rel_sigma = 0.0;
  return c;
}

inline ReaderConfig noiseless_reader() {
  ReaderConfig r;
  r.read_phase_noise = 0.0;
  r.pi_jump_prob = 0.0;
  r.rssi_noise_db = 0.0;
  return r;
}

/// Exact deployment geometry (no survey error) from a scene.
inline DeploymentGeometry exact_geometry(const Scene& scene) {
  DeploymentGeometry g;
  for (const auto& a : scene.antennas) {
    g.antenna_positions.push_back(a.position);
    g.antenna_frames.push_back(a.frame);
  }
  g.working_region = scene.working_region;
  g.tag_plane_z = scene.tag_plane_z;
  return g;
}

/// Collect a round and fit all antennas in one step.
inline std::vector<AntennaLine> fit_round(const Scene& scene,
                                          const ReaderConfig& reader,
                                          const ChannelConfig& channel,
                                          const TagHardware& tag,
                                          const TagState& state,
                                          std::uint64_t trial, Rng& rng,
                                          const FittingConfig& fitting = {}) {
  const RoundTrace round =
      collect_round(scene, reader, channel, tag, state, trial, rng);
  return fit_all_antennas(preprocess_round(round), fitting);
}

}  // namespace rfp::testutil
