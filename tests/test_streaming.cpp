#include "rfp/core/streaming.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

/// Convert a simulated round into the interleaved read stream a real
/// reader would deliver.
std::vector<TagRead> stream_of(const RoundTrace& round,
                               const std::string& tag_id) {
  std::vector<TagRead> reads;
  for (const Dwell& dwell : round.dwells) {
    for (std::size_t i = 0; i < dwell.phases.size(); ++i) {
      TagRead read;
      read.tag_id = tag_id;
      read.antenna = dwell.antenna;
      read.channel = dwell.channel;
      read.frequency_hz = dwell.frequency_hz;
      read.time_s = dwell.start_time_s + 1e-3 * static_cast<double>(i);
      read.phase = dwell.phases[i];
      read.rssi_dbm = dwell.rssi_dbm[i];
      reads.push_back(read);
    }
  }
  return reads;
}

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() : bed_{} {}
  Testbed bed_;
};

TEST_F(StreamingTest, EmitsWhenRoundCompletes) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({0.8, 1.2}, 0.5, "glass");
  const auto reads = stream_of(bed_.collect(state, 1), bed_.tag_id());

  // Nothing emitted while the round is partial.
  sensor.push(std::span<const TagRead>(reads.data(), reads.size() / 4));
  EXPECT_TRUE(sensor.poll().empty());
  EXPECT_EQ(sensor.pending_tags(), 1u);

  sensor.push(std::span<const TagRead>(reads.data() + reads.size() / 4,
                                       reads.size() - reads.size() / 4));
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].tag_id, bed_.tag_id());
  ASSERT_TRUE(emitted[0].result.valid);
  EXPECT_LT(distance(emitted[0].result.position, state.position), 0.25);
  // Buffer cleared after emission.
  EXPECT_EQ(sensor.pending_tags(), 0u);
}

TEST_F(StreamingTest, MatchesBatchPipelineResult) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({1.3, 0.7}, 1.0, "wood");
  const RoundTrace round = bed_.collect(state, 2);
  sensor.push(stream_of(round, bed_.tag_id()));
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);

  const SensingResult direct = bed_.prism().sense(round, bed_.tag_id());
  ASSERT_EQ(emitted[0].result.valid, direct.valid);
  EXPECT_NEAR(distance(emitted[0].result.position, direct.position), 0.0,
              1e-9);
  EXPECT_NEAR(emitted[0].result.alpha, direct.alpha, 1e-9);
}

TEST_F(StreamingTest, InterleavedTagsSeparated) {
  StreamingSensor sensor(bed_.prism());
  const TagState s1 = bed_.tag_state({0.5, 0.6}, 0.2, "water");
  const TagState s2 = bed_.tag_state({1.5, 1.5}, 1.2, "metal");
  const auto r1 = stream_of(bed_.collect(s1, 3), "tag-A");
  const auto r2 = stream_of(bed_.collect(s2, 4), "tag-B");

  // Interleave the two streams read-by-read.
  std::vector<TagRead> mixed;
  for (std::size_t i = 0; i < std::max(r1.size(), r2.size()); ++i) {
    if (i < r1.size()) mixed.push_back(r1[i]);
    if (i < r2.size()) mixed.push_back(r2[i]);
  }
  sensor.push(mixed);
  auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 2u);
  std::sort(emitted.begin(), emitted.end(),
            [](const auto& a, const auto& b) { return a.tag_id < b.tag_id; });
  ASSERT_TRUE(emitted[0].result.valid);
  ASSERT_TRUE(emitted[1].result.valid);
  EXPECT_LT(distance(emitted[0].result.position, s1.position), 0.3);
  EXPECT_LT(distance(emitted[1].result.position, s2.position), 0.3);
}

TEST_F(StreamingTest, StaleTagDropped) {
  StreamingConfig config;
  config.tag_timeout_s = 5.0;
  StreamingSensor sensor(bed_.prism(), config);

  // A few reads of a tag that then disappears.
  TagRead read;
  read.tag_id = "ghost";
  read.antenna = 0;
  read.channel = 0;
  read.frequency_hz = 903e6;
  read.time_s = 0.0;
  read.phase = 1.0;
  read.rssi_dbm = -60.0;
  sensor.push(read);
  EXPECT_EQ(sensor.pending_tags(), 1u);

  // Another tag keeps reading far later: the ghost ages out.
  read.tag_id = "alive";
  read.time_s = 100.0;
  sensor.push(read);
  sensor.poll();
  EXPECT_EQ(sensor.pending_tags(), 1u);  // only "alive" remains
}

TEST_F(StreamingTest, BufferedReadsCounted) {
  StreamingSensor sensor(bed_.prism());
  TagRead read;
  read.tag_id = "t";
  read.antenna = 1;
  read.channel = 3;
  read.frequency_hz = 905e6;
  read.phase = 0.5;
  sensor.push(read);
  sensor.push(read);
  EXPECT_EQ(sensor.buffered_reads(), 2u);
  sensor.clear();
  EXPECT_EQ(sensor.buffered_reads(), 0u);
  EXPECT_EQ(sensor.pending_tags(), 0u);
}

TEST_F(StreamingTest, RejectsMalformedReads) {
  StreamingSensor sensor(bed_.prism());
  TagRead read;
  read.tag_id = "";
  read.frequency_hz = 905e6;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
  read.tag_id = "t";
  read.antenna = 99;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
  read.antenna = 0;
  read.frequency_hz = 0.0;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
}

TEST_F(StreamingTest, BadConfigThrows) {
  StreamingConfig config;
  config.min_channels_per_antenna = 2;
  EXPECT_THROW(StreamingSensor(bed_.prism(), config), InvalidArgument);
}

}  // namespace
}  // namespace rfp
