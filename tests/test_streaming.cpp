#include "rfp/core/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() : bed_{} {}
  Testbed bed_;
};

TEST_F(StreamingTest, EmitsWhenRoundCompletes) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({0.8, 1.2}, 0.5, "glass");
  const auto reads = round_to_reads(bed_.collect(state, 1), bed_.tag_id());

  // Nothing emitted while the round is partial.
  sensor.push(std::span<const TagRead>(reads.data(), reads.size() / 4));
  EXPECT_TRUE(sensor.poll().empty());
  EXPECT_EQ(sensor.pending_tags(), 1u);

  sensor.push(std::span<const TagRead>(reads.data() + reads.size() / 4,
                                       reads.size() - reads.size() / 4));
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].tag_id, bed_.tag_id());
  ASSERT_TRUE(emitted[0].result.valid);
  EXPECT_EQ(emitted[0].result.grade, SensingGrade::kFull);
  EXPECT_LT(distance(emitted[0].result.position, state.position), 0.25);
  // Buffer cleared after emission.
  EXPECT_EQ(sensor.pending_tags(), 0u);
  EXPECT_EQ(sensor.stats().rounds_emitted, 1u);
  EXPECT_EQ(sensor.stats().rounds_full, 1u);
}

TEST_F(StreamingTest, MatchesBatchPipelineResult) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({1.3, 0.7}, 1.0, "wood");
  const RoundTrace round = bed_.collect(state, 2);
  sensor.push(round_to_reads(round, bed_.tag_id()));
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);

  const SensingResult direct = bed_.prism().sense(round, bed_.tag_id());
  ASSERT_EQ(emitted[0].result.valid, direct.valid);
  EXPECT_NEAR(distance(emitted[0].result.position, direct.position), 0.0,
              1e-9);
  EXPECT_NEAR(emitted[0].result.alpha, direct.alpha, 1e-9);
}

TEST_F(StreamingTest, InterleavedTagsSeparated) {
  StreamingSensor sensor(bed_.prism());
  const TagState s1 = bed_.tag_state({0.5, 0.6}, 0.2, "water");
  const TagState s2 = bed_.tag_state({1.5, 1.5}, 1.2, "metal");
  const auto r1 = round_to_reads(bed_.collect(s1, 3), "tag-A");
  const auto r2 = round_to_reads(bed_.collect(s2, 4), "tag-B");

  // Interleave the two streams read-by-read.
  std::vector<TagRead> mixed;
  for (std::size_t i = 0; i < std::max(r1.size(), r2.size()); ++i) {
    if (i < r1.size()) mixed.push_back(r1[i]);
    if (i < r2.size()) mixed.push_back(r2[i]);
  }
  sensor.push(mixed);
  auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 2u);
  std::sort(emitted.begin(), emitted.end(),
            [](const auto& a, const auto& b) { return a.tag_id < b.tag_id; });
  ASSERT_TRUE(emitted[0].result.valid);
  ASSERT_TRUE(emitted[1].result.valid);
  EXPECT_LT(distance(emitted[0].result.position, s1.position), 0.3);
  EXPECT_LT(distance(emitted[1].result.position, s2.position), 0.3);
}

TEST_F(StreamingTest, StaleTagDropped) {
  StreamingConfig config;
  config.tag_timeout_s = 5.0;
  StreamingSensor sensor(bed_.prism(), config);

  // A few reads of a tag that then disappears.
  TagRead read;
  read.tag_id = "ghost";
  read.antenna = 0;
  read.channel = 0;
  read.frequency_hz = 903e6;
  read.time_s = 0.0;
  read.phase = 1.0;
  read.rssi_dbm = -60.0;
  sensor.push(read);
  EXPECT_EQ(sensor.pending_tags(), 1u);

  // Another tag keeps reading far later: the ghost ages out.
  read.tag_id = "alive";
  read.time_s = 100.0;
  sensor.push(read);
  sensor.poll();
  EXPECT_EQ(sensor.pending_tags(), 1u);  // only "alive" remains
  EXPECT_EQ(sensor.stats().tags_timed_out, 1u);
}

TEST_F(StreamingTest, InjectedClockExpiresDepartedTags) {
  StreamingConfig config;
  config.tag_timeout_s = 5.0;
  StreamingSensor sensor(bed_.prism(), config);

  TagRead read;
  read.tag_id = "departed";
  read.antenna = 0;
  read.channel = 0;
  read.frequency_hz = 903e6;
  read.time_s = 10.0;
  read.phase = 1.0;
  sensor.push(read);

  // The stream fully stalls: no more reads ever arrive. With the buffered
  // high-water clock alone, the tag would be pending forever.
  EXPECT_TRUE(sensor.poll().empty());
  EXPECT_EQ(sensor.pending_tags(), 1u);

  EXPECT_TRUE(sensor.poll(14.0).empty());  // not yet timed out
  EXPECT_EQ(sensor.pending_tags(), 1u);
  EXPECT_TRUE(sensor.poll(16.0).empty());  // 10 + 5 < 16: departed
  EXPECT_EQ(sensor.pending_tags(), 0u);
  EXPECT_EQ(sensor.stats().tags_timed_out, 1u);
}

TEST_F(StreamingTest, DuplicateReadsDropped) {
  StreamingSensor sensor(bed_.prism());
  TagRead read;
  read.tag_id = "t";
  read.antenna = 1;
  read.channel = 3;
  read.frequency_hz = 905e6;
  read.time_s = 1.0;
  read.phase = 0.5;
  sensor.push(read);
  sensor.push(read);  // exact LLRP-style redelivery
  sensor.push(read);
  EXPECT_EQ(sensor.buffered_reads(), 1u);
  EXPECT_EQ(sensor.stats().reads_accepted, 1u);
  EXPECT_EQ(sensor.stats().duplicates_dropped, 2u);

  // Same timestamp but a different phase is a genuine new read.
  read.phase = 0.7;
  sensor.push(read);
  EXPECT_EQ(sensor.buffered_reads(), 2u);
}

TEST_F(StreamingTest, OutOfOrderTimestampsTolerated) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({1.1, 0.9}, 0.8, "plastic");
  const RoundTrace round = bed_.collect(state, 5);
  auto reads = round_to_reads(round, bed_.tag_id());
  std::reverse(reads.begin(), reads.end());
  sensor.push(reads);
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);
  ASSERT_TRUE(emitted[0].result.valid);
  EXPECT_LT(distance(emitted[0].result.position, state.position), 0.3);
  EXPECT_EQ(sensor.stats().stale_dropped, 0u);
}

TEST_F(StreamingTest, EmissionsSortedByCompletionTime) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({0.9, 1.0}, 0.4, "wood");

  // "late" completes after "early" but is pushed first; and two tags that
  // complete at the same instant come out in id order.
  auto early = round_to_reads(bed_.collect(state, 6), "b-early");
  auto late = round_to_reads(bed_.collect(state, 7), "a-late");
  auto tied = round_to_reads(bed_.collect(state, 6), "c-tied");
  for (auto& r : late) r.time_s += 5.0;
  std::vector<TagRead> all;
  all.insert(all.end(), late.begin(), late.end());
  all.insert(all.end(), early.begin(), early.end());
  all.insert(all.end(), tied.begin(), tied.end());
  sensor.push(all);

  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0].tag_id, "b-early");
  EXPECT_EQ(emitted[1].tag_id, "c-tied");
  EXPECT_EQ(emitted[2].tag_id, "a-late");
  EXPECT_LE(emitted[0].completed_at_s, emitted[1].completed_at_s);
  EXPECT_LE(emitted[1].completed_at_s, emitted[2].completed_at_s);
}

TEST_F(StreamingTest, PartialRoundEmittedWhenPortIsSilent) {
  TestbedConfig bed_config;
  bed_config.n_antennas = 4;
  Testbed bed(bed_config);
  StreamingSensor sensor(bed.prism());
  const TagState state = bed.tag_state({0.8, 1.2}, 0.5, "glass");
  const RoundTrace round = bed.collect(state, 8);
  auto reads = round_to_reads(round, bed.tag_id());
  // Port 3 delivers nothing at all (dead cable).
  std::erase_if(reads, [](const TagRead& r) { return r.antenna == 3; });
  sensor.push(reads);

  // The healthy subset is complete but the sensor still waits for port 3.
  EXPECT_TRUE(sensor.poll().empty());

  // Once the subset has waited out the round-age window, a degraded round
  // is emitted rather than blocking forever on the dead port.
  double last = 0.0;
  for (const TagRead& r : reads) last = std::max(last, r.time_s);
  const auto emitted = sensor.poll(last + 31.0);
  ASSERT_EQ(emitted.size(), 1u);
  ASSERT_TRUE(emitted[0].result.valid);
  EXPECT_EQ(emitted[0].result.grade, SensingGrade::kDegraded);
  ASSERT_EQ(emitted[0].result.excluded_antennas.size(), 1u);
  EXPECT_EQ(emitted[0].result.excluded_antennas[0], 3u);
  EXPECT_LT(distance(emitted[0].result.position, state.position), 0.35);
  EXPECT_EQ(sensor.stats().rounds_degraded, 1u);
}

TEST_F(StreamingTest, TimedOutTagWithCompleteAntennaFlushesReject) {
  // 3-antenna rig + dead port 1: the round can never complete, so the
  // timeout path must flush it as an explicit antenna-health reject
  // instead of silently dropping the tag.
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({0.8, 1.2}, 0.5, "glass");
  auto reads = round_to_reads(bed_.collect(state, 11), bed_.tag_id());
  std::erase_if(reads, [](const TagRead& r) { return r.antenna == 1; });
  sensor.push(reads);
  EXPECT_TRUE(sensor.poll().empty());

  double last = 0.0;
  for (const TagRead& r : reads) last = std::max(last, r.time_s);
  const auto emitted = sensor.poll(last + 121.0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_FALSE(emitted[0].result.valid);
  EXPECT_EQ(emitted[0].result.reject_reason, RejectReason::kAntennaHealth);
  EXPECT_EQ(sensor.stats().tags_timed_out, 1u);
  EXPECT_EQ(sensor.stats().rejected_antenna_health, 1u);
  ASSERT_NE(sensor.health(), nullptr);
  EXPECT_LT(sensor.health()->port(1).ewma_read_rate, 0.5);
  EXPECT_EQ(sensor.pending_tags(), 0u);
}

TEST_F(StreamingTest, BufferedReadsCounted) {
  StreamingSensor sensor(bed_.prism());
  TagRead read;
  read.tag_id = "t";
  read.antenna = 1;
  read.channel = 3;
  read.frequency_hz = 905e6;
  read.phase = 0.5;
  sensor.push(read);
  read.time_s = 0.001;  // distinct read, not a redelivery
  sensor.push(read);
  EXPECT_EQ(sensor.buffered_reads(), 2u);
  sensor.clear();
  EXPECT_EQ(sensor.buffered_reads(), 0u);
  EXPECT_EQ(sensor.pending_tags(), 0u);
}

TEST_F(StreamingTest, NeverCompletingTagStaysWithinPoolBudget) {
  StreamingConfig config;
  config.max_reads_per_pool = 8;
  StreamingSensor sensor(bed_.prism(), config);

  // A chattering tag read forever on one channel, never enough channels
  // to complete a round.
  TagRead read;
  read.tag_id = "chatter";
  read.antenna = 0;
  read.channel = 0;
  read.frequency_hz = 903e6;
  read.phase = 0.25;
  for (int i = 0; i < 10000; ++i) {
    read.time_s = 1e-3 * i;
    read.phase = wrap_to_2pi(read.phase + 0.01);
    sensor.push(read);
  }
  EXPECT_LE(sensor.buffered_reads(), 8u);
  EXPECT_EQ(sensor.stats().pool_cap_evictions, 10000u - 8u);
}

TEST_F(StreamingTest, ClearResetsStatsAndState) {
  StreamingSensor sensor(bed_.prism());
  const TagState state = bed_.tag_state({0.8, 1.2}, 0.5, "glass");
  sensor.push(round_to_reads(bed_.collect(state, 9), bed_.tag_id()));
  ASSERT_EQ(sensor.poll().size(), 1u);
  ASSERT_GT(sensor.stats().reads_accepted, 0u);
  ASSERT_GT(sensor.stats().rounds_emitted, 0u);

  sensor.clear();
  EXPECT_EQ(sensor.stats().reads_accepted, 0u);
  EXPECT_EQ(sensor.stats().rounds_emitted, 0u);
  EXPECT_EQ(sensor.pending_tags(), 0u);
  ASSERT_NE(sensor.health(), nullptr);
  for (std::size_t a = 0; a < sensor.health()->n_antennas(); ++a) {
    EXPECT_EQ(sensor.health()->port(a).rounds_observed, 0u);
  }

  // The sensor is fully reusable after clear(), including its clock.
  sensor.push(round_to_reads(bed_.collect(state, 10), bed_.tag_id()));
  EXPECT_EQ(sensor.poll().size(), 1u);
}

TEST_F(StreamingTest, RejectsMalformedReads) {
  StreamingSensor sensor(bed_.prism());
  TagRead read;
  read.tag_id = "";
  read.frequency_hz = 905e6;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
  read.tag_id = "t";
  read.antenna = 99;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
  read.antenna = 0;
  read.frequency_hz = 0.0;
  EXPECT_THROW(sensor.push(read), InvalidArgument);
  read.frequency_hz = 905e6;
  read.time_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sensor.push(read), InvalidArgument);
}

TEST_F(StreamingTest, BadConfigThrows) {
  StreamingConfig config;
  config.min_channels_per_antenna = 2;
  EXPECT_THROW(StreamingSensor(bed_.prism(), config), InvalidArgument);
  config = {};
  config.max_pending_tags = 0;
  EXPECT_THROW(StreamingSensor(bed_.prism(), config), InvalidArgument);
}

TEST_F(StreamingTest, AdversarialFuzzStreamStaysBounded) {
  StreamingConfig config;
  config.max_pending_tags = 64;
  config.max_channels_per_antenna = 8;
  config.max_reads_per_pool = 8;
  StreamingSensor sensor(bed_.prism(), config);
  const std::size_t n_antennas = bed_.prism().config().geometry.n_antennas();
  const std::size_t bound = config.max_pending_tags * n_antennas *
                            config.max_channels_per_antenna *
                            config.max_reads_per_pool;

  // One million hostile reads: churning tag population, garbage channel
  // indices, timestamps jumping forward and backward, duplicates. Memory
  // must stay within the configured bound and poll() must never throw.
  Rng rng(0xF022);
  double t = 0.0;
  constexpr std::size_t kReads = 1'000'000;
  for (std::size_t i = 0; i < kReads; ++i) {
    TagRead read;
    // Mostly a stable population (their pools fill up and evict), plus a
    // trickle of never-repeating garbage ids (tag churn).
    read.tag_id = rng.bernoulli(0.9)
                      ? "fuzz-" + std::to_string(rng.uniform_index(32))
                      : "ghost-" + std::to_string(i);
    read.antenna = rng.uniform_index(n_antennas);
    read.channel = rng.uniform_index(100000);
    read.frequency_hz = 902e6 + 1e6 * rng.uniform();
    t += rng.uniform() < 0.1 ? -rng.uniform() : 1e-3 * rng.uniform();
    read.time_s = t;
    read.phase = rng.uniform() * 6.28;
    read.rssi_dbm = -80.0 + 40.0 * rng.uniform();
    sensor.push(read);
    if (i % 100000 == 0) {
      EXPECT_NO_THROW(sensor.poll());
    }
  }
  EXPECT_NO_THROW(sensor.poll());
  EXPECT_LE(sensor.buffered_reads(), bound);
  EXPECT_LE(sensor.pending_tags(), config.max_pending_tags);
  const StreamingStats& stats = sensor.stats();
  EXPECT_GT(stats.tag_evictions, 0u);
  EXPECT_GT(stats.channel_evictions, 0u);
  // Every read was either accepted or accounted to a drop cause.
  EXPECT_EQ(stats.reads_accepted + stats.duplicates_dropped +
                stats.stale_dropped,
            kReads);
}

}  // namespace
}  // namespace rfp
