#include <sstream>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/core/pipeline.hpp"
#include "rfp/io/calibration_io.hpp"
#include "rfp/io/geometry_io.hpp"
#include "rfp/io/trace_io.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::noiseless_channel;
using testutil::noiseless_reader;

RoundTrace sample_round(std::uint64_t trial) {
  const Scene scene = make_scene_2d(201);
  const TagHardware tag = make_tag_hardware("t", 201);
  const TagState state{Vec3{0.9, 1.1, 0.0}, planar_polarization(0.4), "oil"};
  Rng rng(trial);
  ReaderConfig reader;  // default noisy config: exercises real values
  return collect_round(scene, reader, ChannelConfig::clean(), tag, state,
                       trial, rng);
}

void expect_rounds_equal(const RoundTrace& a, const RoundTrace& b) {
  ASSERT_EQ(a.n_antennas, b.n_antennas);
  ASSERT_DOUBLE_EQ(a.duration_s, b.duration_s);
  ASSERT_EQ(a.dwells.size(), b.dwells.size());
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    const Dwell& da = a.dwells[i];
    const Dwell& db = b.dwells[i];
    ASSERT_EQ(da.antenna, db.antenna);
    ASSERT_EQ(da.channel, db.channel);
    ASSERT_DOUBLE_EQ(da.frequency_hz, db.frequency_hz);
    ASSERT_DOUBLE_EQ(da.start_time_s, db.start_time_s);
    ASSERT_EQ(da.phases.size(), db.phases.size());
    for (std::size_t r = 0; r < da.phases.size(); ++r) {
      ASSERT_DOUBLE_EQ(da.phases[r], db.phases[r]);
      ASSERT_DOUBLE_EQ(da.rssi_dbm[r], db.rssi_dbm[r]);
    }
  }
}

TEST(TraceIo, RoundTripsExactly) {
  const RoundTrace original = sample_round(11);
  std::stringstream ss;
  write_round(ss, original);
  const RoundTrace reloaded = read_round(ss);
  expect_rounds_equal(original, reloaded);
}

TEST(TraceIo, FileRoundTrip) {
  const RoundTrace original = sample_round(12);
  const std::string path = testing::TempDir() + "/rfp_trace_test.txt";
  save_round(path, original);
  const RoundTrace reloaded = load_round(path);
  expect_rounds_equal(original, reloaded);
}

TEST(TraceIo, ReplayedRoundSensesIdentically) {
  // The point of the format: a replayed round must produce bit-identical
  // sensing output.
  const Scene scene = make_scene_2d(201);
  RfPrismConfig config;
  config.geometry = testutil::exact_geometry(scene);
  const RfPrism prism(config);

  const RoundTrace original = sample_round(13);
  std::stringstream ss;
  write_round(ss, original);
  const RoundTrace reloaded = read_round(ss);

  const SensingResult a = prism.sense(original);
  const SensingResult b = prism.sense(reloaded);
  ASSERT_EQ(a.valid, b.valid);
  if (a.valid) {
    EXPECT_EQ(a.position, b.position);
    EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
    EXPECT_DOUBLE_EQ(a.kt, b.kt);
  }
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss("not-a-trace v1\n");
  EXPECT_THROW(read_round(ss), Error);
}

TEST(TraceIo, RejectsBadVersion) {
  std::stringstream ss("rfprism-trace v9\nround 3 10 0\n");
  EXPECT_THROW(read_round(ss), Error);
}

TEST(TraceIo, RejectsTruncatedReads) {
  std::stringstream ss(
      "rfprism-trace v1\nround 1 10 1\ndwell 0 0 903e6 0.0 3\n1.0 -50\n");
  EXPECT_THROW(read_round(ss), Error);
}

TEST(TraceIo, RejectsAntennaOutOfRange) {
  std::stringstream ss(
      "rfprism-trace v1\nround 1 10 1\ndwell 5 0 903e6 0.0 1\n1.0 -50\n");
  EXPECT_THROW(read_round(ss), Error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_round("/nonexistent/path/trace.txt"), Error);
}

std::vector<StreamRead> sample_read_log() {
  std::vector<StreamRead> reads;
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    StreamRead read;
    read.tag_id = i % 2 == 0 ? "pallet-a" : "pallet-b";
    read.antenna = static_cast<std::size_t>(i % 4);
    read.channel = static_cast<std::size_t>(i % 16);
    read.frequency_hz = 902.75e6 + 0.5e6 * (i % 16);
    read.time_s = 0.05 * i;
    read.phase = rng.uniform(0.0, 2.0 * kPi);
    read.rssi_dbm = -55.0 + rng.gaussian(0.0, 3.0);
    reads.push_back(std::move(read));
  }
  return reads;
}

TEST(ReadLogIo, RoundTripsExactly) {
  const std::vector<StreamRead> original = sample_read_log();
  std::stringstream ss;
  write_read_log(ss, original);
  const std::vector<StreamRead> reloaded = read_read_log(ss);
  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reloaded[i].tag_id, original[i].tag_id);
    EXPECT_EQ(reloaded[i].antenna, original[i].antenna);
    EXPECT_EQ(reloaded[i].channel, original[i].channel);
    ASSERT_DOUBLE_EQ(reloaded[i].frequency_hz, original[i].frequency_hz);
    ASSERT_DOUBLE_EQ(reloaded[i].time_s, original[i].time_s);
    ASSERT_DOUBLE_EQ(reloaded[i].phase, original[i].phase);
    ASSERT_DOUBLE_EQ(reloaded[i].rssi_dbm, original[i].rssi_dbm);
  }
}

TEST(ReadLogIo, FileRoundTrip) {
  const std::vector<StreamRead> original = sample_read_log();
  const std::string path = testing::TempDir() + "/rfp_readlog_test.txt";
  save_read_log(path, original);
  EXPECT_EQ(load_read_log(path).size(), original.size());
}

TEST(ReadLogIo, EmptyLogRoundTrips) {
  std::stringstream ss;
  write_read_log(ss, {});
  EXPECT_TRUE(read_read_log(ss).empty());
}

TEST(ReadLogIo, WhitespaceTagIdRejectedOnWrite) {
  // Whitespace in a tag id would shift every later column on reload.
  for (const char* bad : {"", "two words", "tab\tid", "nl\nid"}) {
    std::vector<StreamRead> reads(1);
    reads[0].tag_id = bad;
    std::stringstream ss;
    EXPECT_THROW(write_read_log(ss, reads), Error) << "tag '" << bad << "'";
  }
}

TEST(ReadLogIo, RejectsBadMagicAndVersion) {
  std::stringstream bad_magic("rfprism-trace v1\nreads 0\n");
  EXPECT_THROW(read_read_log(bad_magic), Error);
  std::stringstream bad_version("rfprism-readlog v9\nreads 0\n");
  EXPECT_THROW(read_read_log(bad_version), Error);
}

TEST(ReadLogIo, RejectsTruncation) {
  const std::vector<StreamRead> original = sample_read_log();
  std::stringstream ss;
  write_read_log(ss, original);
  const std::string text = ss.str();
  // Cut mid-way through the read lines: the parser must throw, not
  // silently return a short log.
  std::stringstream cut(text.substr(0, text.size() * 2 / 3));
  EXPECT_THROW(read_read_log(cut), Error);
}

TEST(CalibrationIo, EmptyDbRoundTrips) {
  CalibrationDB db;
  std::stringstream ss;
  write_calibrations(ss, db);
  const CalibrationDB reloaded = read_calibrations(ss);
  EXPECT_FALSE(reloaded.reader().has_value());
  EXPECT_EQ(reloaded.n_tags(), 0u);
}

TEST(CalibrationIo, FullDbRoundTrips) {
  CalibrationDB db;
  ReaderCalibration reader;
  reader.delta_k = {0.0, 1.5e-9, -2.25e-9};
  reader.delta_b = {0.0, 0.75, -1.125};
  db.set_reader(reader);

  TagCalibration tag;
  tag.kd = 3.5e-10;
  tag.bd = 2.7182818;
  tag.residual_curve = {0.01, -0.02, 0.035};
  db.set_tag("tag-7", tag);
  db.set_tag("tag-9", TagCalibration{});

  std::stringstream ss;
  write_calibrations(ss, db);
  const CalibrationDB reloaded = read_calibrations(ss);

  ASSERT_TRUE(reloaded.reader().has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(reloaded.reader()->delta_k[i], reader.delta_k[i]);
    EXPECT_DOUBLE_EQ(reloaded.reader()->delta_b[i], reader.delta_b[i]);
  }
  ASSERT_EQ(reloaded.n_tags(), 2u);
  const TagCalibration* t7 = reloaded.find_tag("tag-7");
  ASSERT_NE(t7, nullptr);
  EXPECT_DOUBLE_EQ(t7->kd, tag.kd);
  EXPECT_DOUBLE_EQ(t7->bd, tag.bd);
  ASSERT_EQ(t7->residual_curve.size(), 3u);
  EXPECT_DOUBLE_EQ(t7->residual_curve[2], 0.035);
  ASSERT_NE(reloaded.find_tag("tag-9"), nullptr);
}

TEST(CalibrationIo, PipelineCalibrationsSurviveRoundTrip) {
  // End-to-end: calibrate a pipeline, persist, reload into a fresh
  // pipeline, and verify it senses identically.
  const Scene scene = make_scene_2d(202);
  RfPrismConfig config;
  config.geometry = testutil::exact_geometry(scene);
  RfPrism prism(config);
  const TagHardware tag = make_tag_hardware("t", 202);
  const ReferencePose reference{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.0)};
  const TagState ref_state{reference.position, reference.polarization, "none"};
  Rng rng(1);
  prism.calibrate_reader(
      collect_round(scene, noiseless_reader(), noiseless_channel(),
                    make_tag_hardware("ref", 202), ref_state, 1, rng),
      reference);
  prism.calibrate_tag("t",
                      collect_round(scene, noiseless_reader(),
                                    noiseless_channel(), tag, ref_state, 2,
                                    rng),
                      reference);

  std::stringstream ss;
  write_calibrations(ss, prism.calibrations());
  RfPrism fresh(config);
  fresh.import_calibrations(read_calibrations(ss));

  const TagState state{Vec3{0.6, 1.4, 0.0}, planar_polarization(0.8), "glass"};
  Rng rng2(3);
  const RoundTrace round = collect_round(
      scene, noiseless_reader(), noiseless_channel(), tag, state, 3, rng2);
  const SensingResult a = prism.sense(round, "t");
  const SensingResult b = fresh.sense(round, "t");
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_EQ(a.position, b.position);
  EXPECT_DOUBLE_EQ(a.kt, b.kt);
  EXPECT_DOUBLE_EQ(a.bt, b.bt);
}

TEST(CalibrationIo, WhitespaceTagIdRejectedOnWrite) {
  CalibrationDB db;
  db.set_tag("bad id", TagCalibration{});
  std::stringstream ss;
  EXPECT_THROW(write_calibrations(ss, db), InvalidArgument);
}

TEST(CalibrationIo, RejectsBadHeader) {
  std::stringstream ss("wrong v1\n");
  EXPECT_THROW(read_calibrations(ss), Error);
}

TEST(CalibrationIo, RejectsTruncatedTags) {
  std::stringstream ss("rfprism-calibration v1\ntags 2\ntag a 0 0 0\n");
  EXPECT_THROW(read_calibrations(ss), Error);
}

// ---- Drift-estimator state ("rfprism-drift v1") ---------------------------

DriftEstimator sample_drift_estimator() {
  DriftConfig config;
  config.enable = true;
  DriftEstimator estimator(3, config);
  std::vector<AntennaDriftState> state(3);
  state[0].slope = 1.25e-9;
  state[0].intercept = -0.375;
  state[0].slope_rate = 2.5e-11;
  state[0].intercept_rate = -1e-3;
  state[0].slope_spread = 5e-10;
  state[0].intercept_spread = 0.0625;
  state[0].updates = 41;
  state[2].slope = -9.5e-9;
  state[2].updates = 17;
  state[2].alarmed = true;
  estimator.restore(std::move(state), 44);
  return estimator;
}

TEST(DriftStateIo, RoundTripsExactly) {
  const DriftEstimator original = sample_drift_estimator();
  std::stringstream ss;
  write_drift_state(ss, original);

  DriftConfig config;
  config.enable = true;
  DriftEstimator reloaded(3, config);
  read_drift_state(ss, reloaded);

  EXPECT_EQ(reloaded.rounds_observed(), original.rounds_observed());
  ASSERT_EQ(reloaded.state().size(), original.state().size());
  for (std::size_t a = 0; a < original.state().size(); ++a) {
    const AntennaDriftState& want = original.state()[a];
    const AntennaDriftState& got = reloaded.state()[a];
    EXPECT_DOUBLE_EQ(got.slope, want.slope) << "antenna " << a;
    EXPECT_DOUBLE_EQ(got.intercept, want.intercept) << "antenna " << a;
    EXPECT_DOUBLE_EQ(got.slope_rate, want.slope_rate) << "antenna " << a;
    EXPECT_DOUBLE_EQ(got.intercept_rate, want.intercept_rate)
        << "antenna " << a;
    EXPECT_DOUBLE_EQ(got.slope_spread, want.slope_spread) << "antenna " << a;
    EXPECT_DOUBLE_EQ(got.intercept_spread, want.intercept_spread)
        << "antenna " << a;
    EXPECT_EQ(got.updates, want.updates) << "antenna " << a;
    EXPECT_EQ(got.alarmed, want.alarmed) << "antenna " << a;
  }
  // Alarm latches and warm-up survive the round trip.
  ASSERT_EQ(reloaded.alarms().size(), 1u);
  EXPECT_EQ(reloaded.alarms()[0].antenna, 2u);
  EXPECT_TRUE(reloaded.corrections().active);
}

TEST(DriftStateIo, FileRoundTrip) {
  const DriftEstimator original = sample_drift_estimator();
  const std::string path = testing::TempDir() + "/rfp_drift_test.txt";
  save_drift_state(path, original);
  DriftEstimator reloaded(3, DriftConfig{});
  load_drift_state(path, reloaded);
  EXPECT_EQ(reloaded.rounds_observed(), 44u);
  EXPECT_DOUBLE_EQ(reloaded.state()[2].slope, -9.5e-9);
}

TEST(DriftStateIo, CorruptInputsRejectedAndEstimatorUntouched) {
  const auto expect_rejected = [](const std::string& text) {
    SCOPED_TRACE(text);
    DriftEstimator estimator(3, DriftConfig{});
    std::vector<AntennaDriftState> sentinel(3);
    sentinel[1].slope = 7e-9;
    estimator.restore(sentinel, 5);

    std::stringstream ss(text);
    EXPECT_THROW(read_drift_state(ss, estimator), Error);
    // Failure must leave the estimator exactly as it was.
    EXPECT_EQ(estimator.rounds_observed(), 5u);
    EXPECT_DOUBLE_EQ(estimator.state()[1].slope, 7e-9);
  };

  expect_rejected("not-drift v1\n");
  expect_rejected("rfprism-drift v9\nantennas 3 rounds 1\n");
  expect_rejected("rfprism-drift v1\nantennae 3 rounds 1\n");
  expect_rejected("rfprism-drift v1\nantennas 0 rounds 1\n");
  // Antenna count mismatch (file says 2, estimator holds 3).
  expect_rejected(
      "rfprism-drift v1\nantennas 2 rounds 1\n"
      "0 0 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n");
  // Truncated per-antenna state.
  expect_rejected(
      "rfprism-drift v1\nantennas 3 rounds 1\n"
      "0 0 0 0 0 0 0 0\n0 0 0 0\n");
  // Non-finite values.
  expect_rejected(
      "rfprism-drift v1\nantennas 3 rounds 1\n"
      "nan 0 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n");
  expect_rejected(
      "rfprism-drift v1\nantennas 3 rounds 1\n"
      "0 inf 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n");
  // Alarmed flag outside {0, 1}.
  expect_rejected(
      "rfprism-drift v1\nantennas 3 rounds 1\n"
      "0 0 0 0 0 0 0 2\n0 0 0 0 0 0 0 0\n0 0 0 0 0 0 0 0\n");
}

TEST(DriftStateIo, MissingFileThrows) {
  DriftEstimator estimator(3, DriftConfig{});
  EXPECT_THROW(load_drift_state("/nonexistent/path/drift.txt", estimator),
               Error);
}

TEST(GeometryIo, SurveyRoundTripsExactly) {
  const Scene scene = make_scene_2d(203);
  const DeploymentGeometry geometry = testutil::exact_geometry(scene);

  std::stringstream ss;
  write_geometry(ss, geometry);
  const DeploymentGeometry reloaded = read_geometry(ss);

  ASSERT_EQ(reloaded.n_antennas(), geometry.n_antennas());
  for (std::size_t a = 0; a < geometry.n_antennas(); ++a) {
    EXPECT_EQ(reloaded.antenna_positions[a], geometry.antenna_positions[a]);
    EXPECT_EQ(reloaded.antenna_frames[a].u, geometry.antenna_frames[a].u);
    EXPECT_EQ(reloaded.antenna_frames[a].v, geometry.antenna_frames[a].v);
    EXPECT_EQ(reloaded.antenna_frames[a].n, geometry.antenna_frames[a].n);
  }
  EXPECT_EQ(reloaded.working_region.lo, geometry.working_region.lo);
  EXPECT_EQ(reloaded.working_region.hi, geometry.working_region.hi);
  EXPECT_DOUBLE_EQ(reloaded.tag_plane_z, geometry.tag_plane_z);
}

TEST(GeometryIo, ReloadedSurveyBuildsAnIdenticalPipeline) {
  // The point of the format: a daemon serving a reloaded survey must
  // sense bit-identically to one built from the original.
  const Scene scene = make_scene_2d(204);
  RfPrismConfig config;
  config.geometry = testutil::exact_geometry(scene);

  std::stringstream ss;
  write_geometry(ss, config.geometry);
  RfPrismConfig reloaded_config = config;
  reloaded_config.geometry = read_geometry(ss);

  const RfPrism original(config);
  const RfPrism reloaded(reloaded_config);
  const TagHardware tag = make_tag_hardware("t", 204);
  const TagState state{Vec3{0.8, 1.1, 0.0}, planar_polarization(0.6), "oil"};
  Rng rng(4);
  const RoundTrace round = collect_round(
      scene, noiseless_reader(), noiseless_channel(), tag, state, 4, rng);
  const SensingResult a = original.sense(round);
  const SensingResult b = reloaded.sense(round);
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.position, b.position);
  EXPECT_DOUBLE_EQ(a.kt, b.kt);
}

TEST(GeometryIo, FileRoundTrip) {
  const Scene scene = make_scene_2d(205);
  const DeploymentGeometry geometry = testutil::exact_geometry(scene);
  const std::string path = testing::TempDir() + "/rfp_geom_test.txt";
  save_geometry(path, geometry);
  const DeploymentGeometry reloaded = load_geometry(path);
  ASSERT_EQ(reloaded.n_antennas(), geometry.n_antennas());
  EXPECT_EQ(reloaded.antenna_positions, geometry.antenna_positions);
}

TEST(GeometryIo, RejectsMalformedInput) {
  auto expect_rejected = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(read_geometry(ss), Error) << text;
  };
  expect_rejected("not-a-geometry v1\n");
  expect_rejected("rfprism-geometry v9\nantennas 1\n");
  // Truncated antenna line.
  expect_rejected(
      "rfprism-geometry v1\nantennas 1\nantenna 0 0 1\n");
  // Non-finite position.
  expect_rejected(
      "rfprism-geometry v1\nantennas 1\n"
      "antenna nan 0 1 1 0 0 0 1 0 0 0 -1\n"
      "region 0 0 2 2\ntag-plane-z 0\n");
  // Missing region/tag-plane trailer.
  expect_rejected(
      "rfprism-geometry v1\nantennas 1\n"
      "antenna 0 0 1 1 0 0 0 1 0 0 0 -1\n");
}

TEST(GeometryIo, MissingFileThrows) {
  EXPECT_THROW(load_geometry("/nonexistent/path/site.geom"), Error);
}

}  // namespace
}  // namespace rfp
