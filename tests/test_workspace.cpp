#include "rfp/common/workspace.hpp"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace rfp {
namespace {

TEST(SolveWorkspace, VecResizesToExactLength) {
  SolveWorkspace ws;
  EXPECT_EQ(ws.vec(0, 5).size(), 5u);
  EXPECT_EQ(ws.vec(0, 3).size(), 3u);
  EXPECT_EQ(ws.vec(0, 9).size(), 9u);
}

TEST(SolveWorkspace, SlotsAreIndependentBuffers) {
  SolveWorkspace ws;
  std::vector<double>& a = ws.vec(0, 4);
  std::vector<double>& b = ws.vec(1, 4);
  EXPECT_NE(&a, &b);
  a.assign(4, 1.0);
  b.assign(4, 2.0);
  EXPECT_EQ(ws.vec(0, 4)[0], 1.0);
  EXPECT_EQ(ws.vec(1, 4)[0], 2.0);
}

TEST(SolveWorkspace, ReferencesSurviveLaterBorrows) {
  // The stable-reference guarantee: borrowing a high slot later must not
  // relocate an earlier borrow.
  SolveWorkspace ws;
  std::vector<double>& a = ws.vec(0, 8);
  a.assign(8, 7.0);
  for (std::size_t slot = 1; slot < 40; ++slot) ws.vec(slot, 16);
  EXPECT_EQ(&a, &ws.vec(0, 8));
  EXPECT_EQ(a[7], 7.0);
  EXPECT_EQ(ws.slots(), 40u);
}

TEST(SolveWorkspace, CapacityIsReusedAcrossBorrows) {
  SolveWorkspace ws;
  ws.vec(0, 128);
  const double* data = ws.vec(0, 128).data();
  // Shrinking then re-borrowing at or under the high-water mark must not
  // reallocate — that is the whole point of the arena.
  ws.vec(0, 16);
  EXPECT_EQ(ws.vec(0, 128).data(), data);
}

struct ScratchA {
  int value = 11;
};
struct ScratchB {
  std::vector<int> items;
};

TEST(SolveWorkspace, ScratchReturnsOneInstancePerType) {
  SolveWorkspace ws;
  ScratchA& a1 = ws.scratch<ScratchA>();
  EXPECT_EQ(a1.value, 11);  // default-constructed on first use
  a1.value = 42;
  EXPECT_EQ(ws.scratch<ScratchA>().value, 42);
  EXPECT_EQ(&ws.scratch<ScratchA>(), &a1);

  ScratchB& b = ws.scratch<ScratchB>();
  b.items.push_back(1);
  EXPECT_EQ(&ws.scratch<ScratchB>(), &b);
  EXPECT_EQ(ws.scratch<ScratchA>().value, 42);  // types do not collide
}

TEST(SolveWorkspace, ScratchReferencesStableAcrossNewTypes) {
  SolveWorkspace ws;
  ScratchA& a = ws.scratch<ScratchA>();
  a.value = 5;
  (void)ws.scratch<ScratchB>();
  (void)ws.scratch<std::vector<double>>();
  EXPECT_EQ(&ws.scratch<ScratchA>(), &a);
  EXPECT_EQ(a.value, 5);
}

TEST(SolveWorkspace, MoveTransfersBuffers) {
  SolveWorkspace ws;
  ws.vec(0, 6).assign(6, 3.0);
  ws.scratch<ScratchA>().value = 9;
  SolveWorkspace moved(std::move(ws));
  EXPECT_EQ(moved.vec(0, 6)[5], 3.0);
  EXPECT_EQ(moved.scratch<ScratchA>().value, 9);
}

}  // namespace
}  // namespace rfp
