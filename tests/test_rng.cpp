#include "rfp/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"

namespace rfp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.5, 7.25);
    ASSERT_GE(v, -3.5);
    ASSERT_LT(v, 7.25);
  }
}

TEST(Rng, UniformBadRangeThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianScalesMeanAndStddev) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum2 += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(sum2 / n), 2.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(16);
  Rng child = parent.fork();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleIsUniformish) {
  // Position of element 0 after shuffling should be ~uniform.
  std::vector<int> counts(5, 0);
  Rng rng(18);
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.shuffle(v);
    for (int p = 0; p < 5; ++p) {
      if (v[p] == 0) ++counts[p];
    }
  }
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_indices(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    ASSERT_EQ(unique.size(), 8u);
    for (std::size_t idx : sample) ASSERT_LT(idx, 20u);
  }
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(20);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesTooManyThrows) {
  Rng rng(21);
  EXPECT_THROW(rng.sample_indices(3, 4), InvalidArgument);
}

TEST(MixSeed, OrderSensitive) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 3, 2));
}

TEST(MixSeed, Deterministic) {
  EXPECT_EQ(mix_seed(42, 7, 9), mix_seed(42, 7, 9));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t st = 99;
  const std::uint64_t a = splitmix64(st);
  const std::uint64_t b = splitmix64(st);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rfp
