#include "rfp/core/error_detector.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "rfp/core/fitting.hpp"
#include "rfp/core/preprocess.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::noiseless_channel;
using testutil::noiseless_reader;

AntennaLine healthy_line(std::size_t antenna, std::size_t n_inliers,
                         double rmse) {
  AntennaLine line;
  line.antenna = antenna;
  line.n_channels = 50;
  line.fit.n = n_inliers;
  line.fit.rmse = rmse;
  line.channel_inlier.assign(50, true);
  line.residual.assign(50, rmse * 0.7);
  return line;
}

TEST(ErrorDetector, PassesHealthyLines) {
  const std::vector<AntennaLine> lines{healthy_line(0, 50, 0.02),
                                       healthy_line(1, 48, 0.03),
                                       healthy_line(2, 50, 0.02)};
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}), RejectReason::kNone);
}

TEST(ErrorDetector, HighRmseFlagsMobility) {
  const std::vector<AntennaLine> lines{healthy_line(0, 50, 0.02),
                                       healthy_line(1, 50, 0.9),
                                       healthy_line(2, 50, 0.02)};
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}),
            RejectReason::kMobility);
}

TEST(ErrorDetector, BrokenLineSupportFlagsMobility) {
  // Most channels refuse the line on one antenna: the pose changed.
  const std::vector<AntennaLine> lines{healthy_line(0, 50, 0.02),
                                       healthy_line(1, 20, 0.02),
                                       healthy_line(2, 50, 0.02)};
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}),
            RejectReason::kMobility);
}

TEST(ErrorDetector, SparseCoverageFlagsTooFewChannels) {
  // An antenna that only saw 10 channels, fitting 8 of them: the line is
  // fine (80% support) but too thin to trust.
  AntennaLine sparse = healthy_line(1, 8, 0.02);
  sparse.n_channels = 10;
  const std::vector<AntennaLine> lines{healthy_line(0, 50, 0.02), sparse,
                                       healthy_line(2, 50, 0.02)};
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}),
            RejectReason::kTooFewChannels);
}

TEST(ErrorDetector, MedianResidualBackstop) {
  // RMSE within bounds but residual medians high on most antennas.
  auto make = [](std::size_t antenna) {
    AntennaLine line = healthy_line(antenna, 50, 0.2);
    line.residual.assign(50, 0.2);
    return line;
  };
  const std::vector<AntennaLine> lines{make(0), make(1), make(2)};
  ErrorDetectorConfig config;
  config.max_fit_rmse = 0.25;
  config.max_median_residual = 0.15;
  EXPECT_EQ(detect_errors(lines, config), RejectReason::kMobility);
}

TEST(ErrorDetector, ThresholdsConfigurable) {
  const std::vector<AntennaLine> lines{healthy_line(0, 20, 0.3),
                                       healthy_line(1, 20, 0.3),
                                       healthy_line(2, 20, 0.3)};
  ErrorDetectorConfig lax;
  lax.max_fit_rmse = 1.0;
  lax.min_inlier_channels = 5;
  lax.min_line_support_fraction = 0.3;
  lax.max_median_residual = 1.0;
  EXPECT_EQ(detect_errors(lines, lax), RejectReason::kNone);
  ErrorDetectorConfig strict;
  strict.max_fit_rmse = 0.1;
  EXPECT_EQ(detect_errors(lines, strict), RejectReason::kMobility);
}

TEST(ErrorDetector, EmptyThrows) {
  EXPECT_THROW(detect_errors(std::vector<AntennaLine>{}, {}),
               InvalidArgument);
}

class ErrorDetectorSimTest : public ::testing::Test {
 protected:
  ErrorDetectorSimTest()
      : scene_(make_scene_2d(81)), tag_(make_tag_hardware("t", 81)) {}

  std::vector<AntennaLine> lines_for(const MobilityModel& mobility,
                                     std::uint64_t trial) {
    Rng rng(trial);
    const RoundTrace round =
        collect_round(scene_, noiseless_reader(), noiseless_channel(), tag_,
                      mobility, trial, rng);
    return fit_all_antennas(preprocess_round(round), FittingConfig{});
  }

  Scene scene_;
  TagHardware tag_;
};

TEST_F(ErrorDetectorSimTest, StaticTagAccepted) {
  const TagState state{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.4), "none"};
  const auto lines = lines_for(MobilityModel::static_tag(state), 3);
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}), RejectReason::kNone);
}

TEST_F(ErrorDetectorSimTest, MovingTagRejected) {
  // 5 cm/s across a 10 s round = half a meter of travel: with randomized
  // hop order the phase-frequency relation shatters (paper §V-C).
  const TagState start{Vec3{0.6, 0.8, 0.0}, planar_polarization(0.4), "none"};
  const auto lines = lines_for(
      MobilityModel::linear_motion(start, Vec3{0.05, 0.02, 0.0}), 4);
  EXPECT_NE(detect_errors(lines, ErrorDetectorConfig{}), RejectReason::kNone);
}

TEST_F(ErrorDetectorSimTest, RotatingTagRejected) {
  const TagState start{Vec3{1.2, 1.2, 0.0}, planar_polarization(0.0), "none"};
  const auto lines =
      lines_for(MobilityModel::planar_rotation(start, deg2rad(25.0)), 5);
  EXPECT_NE(detect_errors(lines, ErrorDetectorConfig{}), RejectReason::kNone);
}

TEST_F(ErrorDetectorSimTest, SlowDriftBelowDetectionAccepted) {
  // 1 mm over the whole round is within noise: must not be rejected.
  const TagState start{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.4), "none"};
  const auto lines = lines_for(
      MobilityModel::linear_motion(start, Vec3{0.0001, 0.0, 0.0}), 6);
  EXPECT_EQ(detect_errors(lines, ErrorDetectorConfig{}), RejectReason::kNone);
}

}  // namespace
}  // namespace rfp
