#include "rfp/rfsim/channel.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"

namespace rfp {
namespace {

ChannelConfig noiseless() {
  ChannelConfig c;
  c.trial_ripple_amplitude = 0.0;
  c.trial_offset_sigma = 0.0;
  c.trial_range_jitter_m = 0.0;
  c.channel_corruption_prob = 0.0;
  c.material_kt_rel_sigma = 0.0;
  c.material_bt_sigma = 0.0;
  c.material_ripple_rel_sigma = 0.0;
  return c;
}

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest()
      : scene_(make_scene_2d(21)),
        tag_(make_tag_hardware("t", 21)),
        state_{Vec3{0.8, 1.1, 0.0}, planar_polarization(0.4), "glass"} {}

  Scene scene_;
  TagHardware tag_;
  TagState state_;
};

TEST_F(ChannelTest, PropagationPhaseMatchesFormula) {
  const ChannelModel model(scene_, noiseless(), 1);
  const double d = distance(scene_.antennas[0].position, state_.position);
  const double f = 915e6;
  EXPECT_NEAR(model.propagation_phase(0, state_, f),
              4.0 * kPi * d * f / kSpeedOfLight, 1e-6);
}

TEST_F(ChannelTest, PropagationPhaseLinearInFrequency) {
  const ChannelModel model(scene_, noiseless(), 1);
  const double p1 = model.propagation_phase(1, state_, 903e6);
  const double p2 = model.propagation_phase(1, state_, 913e6);
  const double p3 = model.propagation_phase(1, state_, 923e6);
  EXPECT_NEAR(p3 - p2, p2 - p1, 1e-9);
}

TEST_F(ChannelTest, OrientationPhaseIndependentOfFrequency) {
  // Paper Fig. 5: theta_orient does not change with frequency.
  const ChannelModel model(scene_, noiseless(), 1);
  const double o = model.orientation_phase(0, state_);
  TagState rotated = state_;
  rotated.polarization = planar_polarization(1.2);
  EXPECT_NE(model.orientation_phase(0, rotated), o);
}

TEST_F(ChannelTest, DevicePhaseLinearPlusSignature) {
  // Paper Fig. 6 / Eq. 5: theta_device = kt*f + bt (+ small signature).
  const ChannelModel model(scene_, noiseless(), 1);
  const Material& glass = scene_.materials.get("glass");
  const double f = 910e6;
  const double expected = (tag_.kd + glass.kt) * f + tag_.bd + glass.bt +
                          glass.signature(f);
  EXPECT_NEAR(model.device_phase(state_, tag_, f), expected, 1e-9);
}

TEST_F(ChannelTest, MaterialVariabilityPerturbsDevicePhase) {
  ChannelConfig config = noiseless();
  config.material_kt_rel_sigma = 0.2;
  const ChannelModel a(scene_, config, 1);
  const ChannelModel b(scene_, config, 2);
  EXPECT_NE(a.device_phase(state_, tag_, 910e6),
            b.device_phase(state_, tag_, 910e6));
  // But deterministic within a trial.
  EXPECT_DOUBLE_EQ(a.device_phase(state_, tag_, 910e6),
                   a.device_phase(state_, tag_, 910e6));
}

TEST_F(ChannelTest, BareTagHasNoMaterialVariability) {
  ChannelConfig config = noiseless();
  config.material_kt_rel_sigma = 0.5;
  config.material_bt_sigma = 0.5;
  TagState bare = state_;
  bare.material = "none";
  const ChannelModel a(scene_, config, 1);
  const ChannelModel b(scene_, config, 2);
  EXPECT_DOUBLE_EQ(a.device_phase(bare, tag_, 910e6),
                   b.device_phase(bare, tag_, 910e6));
}

TEST_F(ChannelTest, ReaderPhasePerPort) {
  const ChannelModel model(scene_, noiseless(), 1);
  const double f = 915e6;
  for (std::size_t ai = 0; ai < scene_.antennas.size(); ++ai) {
    EXPECT_NEAR(model.reader_phase(ai, f),
                scene_.antennas[ai].kr * f + scene_.antennas[ai].br, 1e-9);
  }
}

TEST_F(ChannelTest, ReportedPhaseIsSumOfParts) {
  const ChannelModel model(scene_, noiseless(), 1);
  const double f = 920e6;
  const double total = model.reported_phase(0, state_, tag_, f);
  const double parts = model.propagation_phase(0, state_, f) +
                       model.orientation_phase(0, state_) +
                       model.device_phase(state_, tag_, f) +
                       model.reader_phase(0, f);
  EXPECT_NEAR(total, parts, 1e-9);
}

TEST_F(ChannelTest, NoMultipathWithoutReflectors) {
  const ChannelModel model(scene_, noiseless(), 1);
  EXPECT_DOUBLE_EQ(model.multipath_phase_shift(0, state_, 915e6), 0.0);
  EXPECT_DOUBLE_EQ(model.multipath_amplitude(0, state_, 915e6), 1.0);
}

TEST_F(ChannelTest, ReflectorsPerturbPhaseAndAmplitude) {
  Scene cluttered = scene_;
  add_clutter(cluttered, 5, 7);
  const ChannelModel model(cluttered, noiseless(), 1);
  double max_shift = 0.0;
  for (std::size_t ch = 0; ch < kNumChannels; ++ch) {
    max_shift = std::max(
        max_shift,
        std::abs(model.multipath_phase_shift(0, state_, channel_frequency(ch))));
  }
  EXPECT_GT(max_shift, 0.0005);
  EXPECT_NE(model.multipath_amplitude(0, state_, 915e6), 1.0);
}

TEST_F(ChannelTest, CorruptionHitsExpectedFraction) {
  ChannelConfig config = noiseless();
  config.channel_corruption_prob = 0.2;
  std::size_t corrupted = 0;
  std::size_t total = 0;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const ChannelModel model(scene_, config, trial);
    const ChannelModel clean_model(scene_, noiseless(), trial);
    for (std::size_t ch = 0; ch < kNumChannels; ++ch) {
      const double f = channel_frequency(ch);
      const double delta = model.reported_phase(0, state_, tag_, f) -
                           clean_model.reported_phase(0, state_, tag_, f);
      ++total;
      if (std::abs(delta) > 1e-9) ++corrupted;
    }
  }
  const double rate = static_cast<double>(corrupted) / total;
  EXPECT_NEAR(rate, 0.2, 0.05);
}

TEST_F(ChannelTest, CorruptionMagnitudeBounded) {
  ChannelConfig config = noiseless();
  config.channel_corruption_prob = 1.0;
  config.corruption_max_rad = 1.5;
  const ChannelModel model(scene_, config, 3);
  const ChannelModel reference(scene_, noiseless(), 3);
  for (std::size_t ch = 0; ch < kNumChannels; ++ch) {
    const double f = channel_frequency(ch);
    const double delta = std::abs(model.reported_phase(0, state_, tag_, f) -
                                  reference.reported_phase(0, state_, tag_, f));
    ASSERT_LE(delta, 1.5 + 1e-9);
    ASSERT_GE(delta, 0.6 * 1.5 - 1e-9);
  }
}

TEST_F(ChannelTest, RangeJitterIsPureDelay) {
  // The jitter must change the slope but not the f=0 intercept: evaluate
  // the reported phase at two frequencies and extrapolate to zero.
  ChannelConfig with_jitter = noiseless();
  with_jitter.trial_range_jitter_m = 0.05;
  const ChannelModel jittered(scene_, with_jitter, 5);
  const ChannelModel reference(scene_, noiseless(), 5);
  const double f1 = 903e6, f2 = 927e6;
  const auto intercept_of = [&](const ChannelModel& m) {
    const double p1 = m.reported_phase(0, state_, tag_, f1);
    const double p2 = m.reported_phase(0, state_, tag_, f2);
    const double slope = (p2 - p1) / (f2 - f1);
    return p1 - slope * f1;
  };
  EXPECT_NEAR(intercept_of(jittered), intercept_of(reference), 1e-6);
  EXPECT_NE(jittered.reported_phase(0, state_, tag_, f1),
            reference.reported_phase(0, state_, tag_, f1));
}

TEST_F(ChannelTest, RssiDecreasesWithDistance) {
  const ChannelModel model(scene_, noiseless(), 1);
  TagState near = state_;
  near.position = {1.0, 0.3, 0.0};
  TagState far = state_;
  far.position = {1.0, 1.9, 0.0};
  EXPECT_GT(model.mean_rssi_dbm(1, near, 915e6),
            model.mean_rssi_dbm(1, far, 915e6));
}

TEST_F(ChannelTest, RssiFollowsFortyLogTen) {
  // Backscatter: doubling the distance costs ~12 dB.
  Scene scene = make_scene_2d(22);
  scene.antennas[0].position = {0.0, 0.0, 0.0};
  const ChannelModel model(scene, noiseless(), 1);
  TagState s1{Vec3{1.0, 0.0, 0.0}, planar_polarization(0.0), "none"};
  TagState s2{Vec3{2.0, 0.0, 0.0}, planar_polarization(0.0), "none"};
  const double drop =
      model.mean_rssi_dbm(0, s1, 915e6) - model.mean_rssi_dbm(0, s2, 915e6);
  EXPECT_NEAR(drop, 40.0 * std::log10(2.0), 1e-6);
}

TEST_F(ChannelTest, MaterialAttenuationLowersRssi) {
  const ChannelModel model(scene_, noiseless(), 1);
  TagState bare = state_;
  bare.material = "none";
  TagState watered = state_;
  watered.material = "water";
  EXPECT_GT(model.mean_rssi_dbm(0, bare, 915e6),
            model.mean_rssi_dbm(0, watered, 915e6));
}

TEST_F(ChannelTest, NoiseScaleConductiveAndDistance) {
  const ChannelModel model(scene_, noiseless(), 1);
  TagState wood = state_;
  wood.material = "wood";
  TagState metal = state_;
  metal.material = "metal";
  EXPECT_GT(model.noise_scale(0, metal), model.noise_scale(0, wood));

  TagState near = wood;
  near.position = {1.0, 0.2, 0.0};
  TagState far = wood;
  far.position = {1.0, 1.9, 0.0};
  EXPECT_GT(model.noise_scale(1, far), model.noise_scale(1, near));
}

TEST_F(ChannelTest, InvalidAntennaThrows) {
  const ChannelModel model(scene_, noiseless(), 1);
  EXPECT_THROW(model.propagation_phase(9, state_, 915e6), InvalidArgument);
  EXPECT_THROW(model.reported_phase(9, state_, tag_, 915e6), InvalidArgument);
}

TEST_F(ChannelTest, UnknownMaterialThrows) {
  const ChannelModel model(scene_, noiseless(), 1);
  TagState bad = state_;
  bad.material = "unobtainium";
  EXPECT_THROW(model.device_phase(bad, tag_, 915e6), NotFound);
}

TEST(ChannelConfigPresets, MultipathIsHarsherThanClean) {
  const ChannelConfig clean = ChannelConfig::clean();
  const ChannelConfig mp = ChannelConfig::multipath();
  EXPECT_GT(mp.channel_corruption_prob, clean.channel_corruption_prob);
  EXPECT_GE(mp.trial_ripple_amplitude, clean.trial_ripple_amplitude);
  EXPECT_GE(mp.trial_range_jitter_m, clean.trial_range_jitter_m);
}

}  // namespace
}  // namespace rfp
