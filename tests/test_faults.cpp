#include "rfp/rfsim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rfp/common/error.hpp"
#include "rfp/core/streaming.hpp"
#include "rfp/exp/testbed.hpp"

namespace rfp {
namespace {

class FaultsTest : public ::testing::Test {
 protected:
  FaultsTest() {
    TestbedConfig config;
    config.n_antennas = 4;
    bed_ = std::make_unique<Testbed>(config);
    state_ = bed_->tag_state({0.8, 1.2}, 0.5, "glass");
    round_ = bed_->collect(state_, 1);
  }

  static std::size_t total_reads(const RoundTrace& round) {
    std::size_t n = 0;
    for (const auto& dwell : round.dwells) n += dwell.phases.size();
    return n;
  }

  static std::set<std::size_t> antennas_present(const RoundTrace& round) {
    std::set<std::size_t> out;
    for (const auto& dwell : round.dwells) out.insert(dwell.antenna);
    return out;
  }

  std::unique_ptr<Testbed> bed_;
  TagState state_;
  RoundTrace round_;
};

TEST_F(FaultsTest, ZeroIntensityIsIdentity) {
  FaultInjector injector(FaultProfile::scaled(0.0));
  const RoundTrace faulted = injector.apply(round_, 7);
  ASSERT_EQ(faulted.dwells.size(), round_.dwells.size());
  EXPECT_EQ(total_reads(faulted), total_reads(round_));
  for (std::size_t i = 0; i < faulted.dwells.size(); ++i) {
    EXPECT_EQ(faulted.dwells[i].phases, round_.dwells[i].phases);
  }
  EXPECT_EQ(injector.last_summary().dwells_dropped, 0u);
  EXPECT_EQ(injector.last_summary().reads_dropped, 0u);
}

TEST_F(FaultsTest, DeterministicInSeedAndTrial) {
  FaultInjector injector(FaultProfile::scaled(0.6));
  const RoundTrace a = injector.apply(round_, 3);
  const RoundTrace b = injector.apply(round_, 3);
  ASSERT_EQ(a.dwells.size(), b.dwells.size());
  for (std::size_t i = 0; i < a.dwells.size(); ++i) {
    EXPECT_EQ(a.dwells[i].antenna, b.dwells[i].antenna);
    EXPECT_EQ(a.dwells[i].phases, b.dwells[i].phases);
  }
  // A different trial realizes different faults.
  const RoundTrace c = injector.apply(round_, 4);
  const bool differs = c.dwells.size() != a.dwells.size() ||
                       total_reads(c) != total_reads(a);
  EXPECT_TRUE(differs);
}

TEST_F(FaultsTest, DeadAntennaSilencedEveryRound) {
  FaultProfile profile;
  profile.dead_antennas = {2};
  FaultInjector injector(profile);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    const RoundTrace faulted = injector.apply(bed_->collect(state_, trial),
                                              trial);
    EXPECT_EQ(faulted.n_antennas, round_.n_antennas);  // geometry preserved
    EXPECT_FALSE(antennas_present(faulted).contains(2));
    EXPECT_GE(injector.last_summary().ports_silenced, 1u);
  }
}

TEST_F(FaultsTest, DwellAndReadLossThinTheRound) {
  FaultProfile profile;
  profile.dwell_loss_prob = 0.4;
  profile.read_loss_prob = 0.3;
  FaultInjector injector(profile);
  const RoundTrace faulted = injector.apply(round_, 11);
  EXPECT_LT(faulted.dwells.size(), round_.dwells.size());
  EXPECT_LT(total_reads(faulted), total_reads(round_));
  EXPECT_GT(injector.last_summary().dwells_dropped, 0u);
  EXPECT_GT(injector.last_summary().reads_dropped, 0u);
}

TEST_F(FaultsTest, BurstPerturbsPhasesInWindow) {
  FaultProfile profile;
  profile.burst_prob = 1.0;
  profile.burst_duration_s = 1e6;  // whole round in-burst
  profile.burst_phase_noise = 0.5;
  FaultInjector injector(profile);
  const RoundTrace faulted = injector.apply(round_, 2);
  ASSERT_EQ(faulted.dwells.size(), round_.dwells.size());
  EXPECT_GT(injector.last_summary().reads_perturbed, 0u);
  bool any_changed = false;
  for (std::size_t i = 0; i < faulted.dwells.size(); ++i) {
    if (faulted.dwells[i].phases != round_.dwells[i].phases)
      any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST_F(FaultsTest, MultiTagRoundsShareRoundLevelFaults) {
  FaultProfile profile;
  profile.antenna_dropout_prob = 0.5;
  FaultInjector injector(profile);
  const std::vector<RoundTrace> rounds = {bed_->collect(state_, 1),
                                          bed_->collect(state_, 2)};
  const auto faulted =
      injector.apply(std::span<const RoundTrace>(rounds), 5);
  ASSERT_EQ(faulted.size(), 2u);
  // A round-level port dropout is shared: the same ports are silent for
  // every tag in the inventory.
  EXPECT_EQ(antennas_present(faulted[0]), antennas_present(faulted[1]));
}

TEST_F(FaultsTest, StreamDuplicatesAndJitter) {
  const auto reads = round_to_reads(round_, "tag-1");
  FaultProfile profile;
  profile.duplicate_prob = 0.3;
  profile.timestamp_jitter_s = 0.01;
  FaultInjector injector(profile);
  const auto faulted =
      injector.apply_stream(std::span<const StreamRead>(reads), 1);
  EXPECT_GT(faulted.size(), reads.size());
  EXPECT_GT(injector.last_summary().reads_duplicated, 0u);
  for (const auto& read : faulted) EXPECT_GE(read.time_s, 0.0);
}

TEST_F(FaultsTest, StreamReorderingPreservesContent) {
  const auto reads = round_to_reads(round_, "tag-1");
  FaultProfile profile;
  profile.reorder_prob = 0.5;
  FaultInjector injector(profile);
  const auto faulted =
      injector.apply_stream(std::span<const StreamRead>(reads), 9);
  ASSERT_EQ(faulted.size(), reads.size());
  EXPECT_GT(injector.last_summary().reads_reordered, 0u);
  // Same multiset of phases, different order.
  std::vector<double> a, b;
  for (const auto& r : reads) a.push_back(r.phase);
  for (const auto& r : faulted) b.push_back(r.phase);
  EXPECT_NE(a, b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(FaultsTest, FaultedStreamSurvivesStreamingSensor) {
  // End-to-end: hostile transport into StreamingSensor still yields a
  // valid (possibly degraded) pose.
  StreamingSensor sensor(bed_->prism());
  FaultProfile profile;
  profile.duplicate_prob = 0.2;
  profile.reorder_prob = 0.3;
  profile.timestamp_jitter_s = 0.005;
  profile.read_loss_prob = 0.1;
  FaultInjector injector(profile);
  const auto reads = round_to_reads(round_, bed_->tag_id());
  sensor.push(injector.apply_stream(std::span<const StreamRead>(reads), 3));
  const auto emitted = sensor.poll();
  ASSERT_EQ(emitted.size(), 1u);
  ASSERT_TRUE(emitted[0].result.valid);
  EXPECT_LT(distance(emitted[0].result.position, state_.position), 0.4);
  EXPECT_GT(sensor.stats().duplicates_dropped, 0u);
}

TEST_F(FaultsTest, ScaledIntensityIsMonotoneInSurvivingReads) {
  const FaultInjector mild(FaultProfile::scaled(0.2));
  const FaultInjector harsh(FaultProfile::scaled(0.9));
  std::size_t mild_reads = 0, harsh_reads = 0;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    mild_reads += total_reads(mild.apply(round_, trial));
    harsh_reads += total_reads(harsh.apply(round_, trial));
  }
  EXPECT_GT(mild_reads, harsh_reads);
}

TEST_F(FaultsTest, ValidatesProfile) {
  FaultProfile profile;
  profile.dwell_loss_prob = 1.5;
  EXPECT_THROW(FaultInjector{profile}, InvalidArgument);
  profile = {};
  profile.burst_prob = 0.5;
  profile.burst_duration_s = -1.0;
  EXPECT_THROW(FaultInjector{profile}, InvalidArgument);
  EXPECT_THROW(FaultProfile::scaled(-0.1), InvalidArgument);
  EXPECT_THROW(FaultProfile::scaled(1.1), InvalidArgument);
}

}  // namespace
}  // namespace rfp
