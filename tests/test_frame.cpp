#include "rfp/geom/frame.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

void expect_orthonormal(const OrthoFrame& f) {
  EXPECT_NEAR(f.u.norm(), 1.0, 1e-9);
  EXPECT_NEAR(f.v.norm(), 1.0, 1e-9);
  EXPECT_NEAR(f.n.norm(), 1.0, 1e-9);
  EXPECT_NEAR(f.u.dot(f.v), 0.0, 1e-9);
  EXPECT_NEAR(f.u.dot(f.n), 0.0, 1e-9);
  EXPECT_NEAR(f.v.dot(f.n), 0.0, 1e-9);
  // Right-handed: n == u x v.
  EXPECT_NEAR(distance(f.u.cross(f.v), f.n), 0.0, 1e-9);
}

TEST(MakeFrame, OrthonormalForRandomBoresights) {
  Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    const Vec3 b{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    if (b.norm() < 1e-6) continue;
    const OrthoFrame f = make_frame(b, rng.uniform(0.0, kTwoPi));
    expect_orthonormal(f);
    EXPECT_NEAR(distance(f.n, b.normalized()), 0.0, 1e-9);
  }
}

TEST(MakeFrame, ZeroRollUIsHorizontal) {
  const OrthoFrame f = make_frame({1.0, 2.0, -0.5});
  EXPECT_NEAR(f.u.z, 0.0, 1e-12);
}

TEST(MakeFrame, VerticalBoresightHandled) {
  const OrthoFrame up = make_frame({0.0, 0.0, 1.0});
  expect_orthonormal(up);
  const OrthoFrame down = make_frame({0.0, 0.0, -1.0});
  expect_orthonormal(down);
}

TEST(MakeFrame, ZeroBoresightThrows) {
  EXPECT_THROW(make_frame({0.0, 0.0, 0.0}), InvalidArgument);
}

TEST(MakeFrame, RollRotatesAboutBoresight) {
  const Vec3 b{0.0, 1.0, 0.0};
  const OrthoFrame f0 = make_frame(b, 0.0);
  const OrthoFrame f90 = make_frame(b, kPi / 2.0);
  // u rotates onto v.
  EXPECT_NEAR(distance(f90.u, f0.v), 0.0, 1e-9);
  EXPECT_NEAR(distance(f90.v, -f0.u), 0.0, 1e-9);
}

TEST(LookAtFrame, PointsAtTarget) {
  const Vec3 from{0.0, 0.0, 1.0};
  const Vec3 at{1.0, 1.0, 0.0};
  const OrthoFrame f = look_at_frame(from, at);
  EXPECT_NEAR(distance(f.n, (at - from).normalized()), 0.0, 1e-12);
}

TEST(PolarizationPhase, IsTwiceTheApertureAngle) {
  // With u = x, v = y and w in the aperture plane at angle phi,
  // Eq. (4) gives exactly 2*phi (mod 2*pi).
  const OrthoFrame f = make_frame({0.0, 0.0, -1.0});
  // Build w in terms of the frame's own axes to avoid axis conventions.
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const double phi = rng.uniform(-kPi, kPi);
    const Vec3 w = f.u * std::cos(phi) + f.v * std::sin(phi);
    const double theta = polarization_phase(f, w);
    ASSERT_NEAR(std::abs(ang_diff(theta, 2.0 * phi)), 0.0, 1e-9) << phi;
  }
}

TEST(PolarizationPhase, PeriodPiInPolarization) {
  const OrthoFrame f = make_frame({0.2, 1.0, -0.4});
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    const Vec3 w =
        spherical_polarization(rng.uniform(0.0, kTwoPi), rng.uniform(-1.0, 1.0));
    const double a = polarization_phase(f, w);
    const double b = polarization_phase(f, -w);
    ASSERT_NEAR(std::abs(ang_diff(a, b)), 0.0, 1e-9);
  }
}

TEST(PolarizationPhase, OrthogonalPolarizationReturnsZero) {
  const OrthoFrame f = make_frame({0.0, 1.0, 0.0});
  // w along the boresight has no aperture projection.
  EXPECT_DOUBLE_EQ(polarization_phase(f, f.n), 0.0);
}

TEST(PolarizationPhase, InvariantToWScale) {
  const OrthoFrame f = make_frame({1.0, 1.0, -1.0});
  const Vec3 w{0.3, -0.8, 0.1};
  EXPECT_NEAR(polarization_phase(f, w), polarization_phase(f, w * 7.0), 1e-12);
}

TEST(PropagationAdjustedFrame, OrthonormalAndAimedAtTag) {
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    const Vec3 ant{rng.uniform(-1, 3), rng.uniform(-2, 0), rng.uniform(0.3, 2)};
    const Vec3 tag{rng.uniform(0, 2), rng.uniform(0, 2), 0.0};
    const OrthoFrame f = make_frame(Vec3{0.0, 1.0, -0.5}, 0.3);
    const OrthoFrame g = propagation_adjusted_frame(f, ant, tag);
    expect_orthonormal(g);
    ASSERT_NEAR(distance(g.n, (tag - ant).normalized()), 0.0, 1e-9);
  }
}

TEST(PropagationAdjustedFrame, NoOpWhenRayEqualsBoresight) {
  const Vec3 ant{0.0, -1.0, 1.0};
  const Vec3 tag{1.0, 1.0, 0.0};
  const OrthoFrame f = look_at_frame(ant, tag, 0.0);
  const OrthoFrame g = propagation_adjusted_frame(f, ant, tag);
  EXPECT_NEAR(distance(g.u, f.u), 0.0, 1e-9);
  EXPECT_NEAR(distance(g.v, f.v), 0.0, 1e-9);
  EXPECT_NEAR(distance(g.n, f.n), 0.0, 1e-9);
}

TEST(PropagationAdjustedFrame, CoincidentPointsThrow) {
  const OrthoFrame f = make_frame({0.0, 1.0, 0.0});
  EXPECT_THROW(propagation_adjusted_frame(f, Vec3{1, 1, 1}, Vec3{1, 1, 1}),
               InvalidArgument);
}

TEST(PolarizationPhaseToward, DependsOnTagPosition) {
  // The whole point of the adjusted model: different tag positions see
  // different projections, giving independent orientation equations.
  const Vec3 ant{1.0, -0.7, 1.5};
  const OrthoFrame f = look_at_frame(ant, Vec3{1.0, 1.0, 0.0});
  const Vec3 w = planar_polarization(deg2rad(40.0));
  const double a = polarization_phase_toward(f, ant, Vec3{0.3, 0.4, 0.0}, w);
  const double b = polarization_phase_toward(f, ant, Vec3{1.8, 1.9, 0.0}, w);
  EXPECT_GT(std::abs(ang_diff(a, b)), 0.01);
}

TEST(PlanarPolarization, UnitAndInPlane) {
  Rng rng(45);
  for (int i = 0; i < 100; ++i) {
    const Vec3 w = planar_polarization(rng.uniform(0.0, kTwoPi));
    ASSERT_NEAR(w.norm(), 1.0, 1e-12);
    ASSERT_DOUBLE_EQ(w.z, 0.0);
  }
}

TEST(SphericalPolarization, MatchesPlanarAtZeroElevation) {
  const double az = 0.77;
  EXPECT_NEAR(
      distance(spherical_polarization(az, 0.0), planar_polarization(az)), 0.0,
      1e-12);
}

TEST(PolarizationAngleError, ModuloPi) {
  const Vec3 a = planar_polarization(0.1);
  const Vec3 b = planar_polarization(0.1 + kPi);  // same line
  EXPECT_NEAR(polarization_angle_error(a, b), 0.0, 1e-9);
}

TEST(PolarizationAngleError, MaxIsHalfPi) {
  const Vec3 a = planar_polarization(0.0);
  const Vec3 b = planar_polarization(kPi / 2.0);
  EXPECT_NEAR(polarization_angle_error(a, b), kPi / 2.0, 1e-9);
}

TEST(PlanarAngleError, WrapsModuloPi) {
  EXPECT_NEAR(planar_angle_error(0.05, kPi - 0.05), 0.1, 1e-12);
  EXPECT_NEAR(planar_angle_error(1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(planar_angle_error(0.0, kPi / 2.0), kPi / 2.0, 1e-12);
  EXPECT_NEAR(planar_angle_error(deg2rad(10.0), deg2rad(170.0)),
              deg2rad(20.0), 1e-12);
}

TEST(Rect, ContainsAndClamp) {
  const Rect r{{0.0, 0.0}, {2.0, 1.0}};
  EXPECT_TRUE(r.contains({1.0, 0.5}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_FALSE(r.contains({2.1, 0.5}));
  EXPECT_EQ(r.clamp({3.0, -1.0}), (Vec2{2.0, 0.0}));
  EXPECT_EQ(r.center(), (Vec2{1.0, 0.5}));
  EXPECT_DOUBLE_EQ(r.width(), 2.0);
  EXPECT_DOUBLE_EQ(r.height(), 1.0);
}

TEST(GridPoints, CountAndCoverage) {
  const Rect r{{0.0, 0.0}, {1.0, 1.0}};
  const auto pts = grid_points(r, 3, 4);
  EXPECT_EQ(pts.size(), 12u);
  EXPECT_EQ(pts.front(), (Vec2{0.0, 0.0}));
  EXPECT_EQ(pts.back(), (Vec2{1.0, 1.0}));
}

TEST(GridPoints, SinglePointIsCenter) {
  const Rect r{{0.0, 0.0}, {2.0, 4.0}};
  const auto pts = grid_points(r, 1, 1);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0], (Vec2{1.0, 2.0}));
}

TEST(GridPoints, ZeroCountThrows) {
  const Rect r{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_THROW(grid_points(r, 0, 2), InvalidArgument);
}

}  // namespace
}  // namespace rfp
