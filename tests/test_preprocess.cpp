#include "rfp/core/preprocess.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::noiseless_channel;
using testutil::noiseless_reader;

class PreprocessTest : public ::testing::Test {
 protected:
  PreprocessTest()
      : scene_(make_scene_2d(41)),
        tag_(make_tag_hardware("t", 41)),
        state_{Vec3{0.9, 1.2, 0.0}, planar_polarization(0.5), "none"} {}

  Scene scene_;
  TagHardware tag_;
  TagState state_;
};

TEST_F(PreprocessTest, OneTracePerAntennaAllChannels) {
  Rng rng(1);
  const RoundTrace round = collect_round(scene_, noiseless_reader(),
                                         noiseless_channel(), tag_, state_,
                                         10, rng);
  const auto traces = preprocess_round(round);
  ASSERT_EQ(traces.size(), 3u);
  for (const auto& t : traces) {
    EXPECT_EQ(t.trace.frequency_hz.size(), kNumChannels);
    EXPECT_EQ(t.wrapped_phase.size(), kNumChannels);
    EXPECT_EQ(t.mean_rssi_dbm.size(), kNumChannels);
    EXPECT_EQ(t.phase_spread.size(), kNumChannels);
  }
}

TEST_F(PreprocessTest, FrequenciesSortedAscending) {
  Rng rng(2);
  const RoundTrace round = collect_round(scene_, noiseless_reader(),
                                         noiseless_channel(), tag_, state_,
                                         11, rng);
  for (const auto& t : preprocess_round(round)) {
    for (std::size_t i = 1; i < t.trace.frequency_hz.size(); ++i) {
      ASSERT_GT(t.trace.frequency_hz[i], t.trace.frequency_hz[i - 1]);
    }
  }
}

TEST_F(PreprocessTest, WrappedPhasesMatchChannelModel) {
  Rng rng(3);
  const RoundTrace round = collect_round(scene_, noiseless_reader(),
                                         noiseless_channel(), tag_, state_,
                                         12, rng);
  const ChannelModel model(scene_, noiseless_channel(), 12);
  for (const auto& t : preprocess_round(round)) {
    for (std::size_t i = 0; i < t.trace.frequency_hz.size(); ++i) {
      const double expected = wrap_to_2pi(model.reported_phase(
          t.antenna, state_, tag_, t.trace.frequency_hz[i]));
      ASSERT_NEAR(std::abs(ang_diff(t.wrapped_phase[i], expected)), 0.0, 1e-9);
    }
  }
}

TEST_F(PreprocessTest, PiJumpsRemovedByDwellAggregation) {
  ReaderConfig reader = noiseless_reader();
  reader.pi_jump_prob = 0.15;
  Rng rng(4);
  const RoundTrace round = collect_round(scene_, reader, noiseless_channel(),
                                         tag_, state_, 13, rng);
  const ChannelModel model(scene_, noiseless_channel(), 13);
  for (const auto& t : preprocess_round(round)) {
    for (std::size_t i = 0; i < t.trace.frequency_hz.size(); ++i) {
      const double expected = wrap_to_2pi(model.reported_phase(
          t.antenna, state_, tag_, t.trace.frequency_hz[i]));
      // Each dwell's majority vote restores the base phase.
      ASSERT_NEAR(std::abs(ang_diff(t.wrapped_phase[i], expected)), 0.0, 0.01)
          << "antenna " << t.antenna << " channel " << i;
    }
  }
}

TEST_F(PreprocessTest, SpreadReflectsNoise) {
  ReaderConfig noisy = noiseless_reader();
  noisy.read_phase_noise = 0.2;
  Rng rng(5);
  const RoundTrace quiet_round = collect_round(
      scene_, noiseless_reader(), noiseless_channel(), tag_, state_, 14, rng);
  const RoundTrace noisy_round = collect_round(
      scene_, noisy, noiseless_channel(), tag_, state_, 14, rng);
  const auto quiet = preprocess_round(quiet_round);
  const auto loud = preprocess_round(noisy_round);
  double quiet_spread = 0.0, loud_spread = 0.0;
  for (std::size_t a = 0; a < quiet.size(); ++a) {
    for (std::size_t i = 0; i < quiet[a].phase_spread.size(); ++i) {
      ASSERT_TRUE(std::isfinite(quiet[a].phase_spread[i]));
      ASSERT_TRUE(std::isfinite(loud[a].phase_spread[i]));
      quiet_spread += quiet[a].phase_spread[i];
      loud_spread += loud[a].phase_spread[i];
    }
  }
  EXPECT_GT(loud_spread, quiet_spread + 1.0);
}

TEST_F(PreprocessTest, MeanRssiPlausible) {
  Rng rng(6);
  const RoundTrace round = collect_round(scene_, noiseless_reader(),
                                         noiseless_channel(), tag_, state_,
                                         15, rng);
  for (const auto& t : preprocess_round(round)) {
    const double rssi = trace_mean_rssi(t);
    EXPECT_LT(rssi, -20.0);
    EXPECT_GT(rssi, -90.0);
  }
}

TEST_F(PreprocessTest, EmptyRoundThrows) {
  RoundTrace empty;
  EXPECT_THROW(preprocess_round(empty), InvalidArgument);
}

TEST_F(PreprocessTest, AntennaWithoutDwellsYieldsEmptyTrace) {
  Rng rng(7);
  RoundTrace round = collect_round(scene_, noiseless_reader(),
                                   noiseless_channel(), tag_, state_, 16, rng);
  // Drop all antenna-2 dwells (e.g. port failure).
  std::erase_if(round.dwells,
                [](const Dwell& d) { return d.antenna == 2; });
  const auto traces = preprocess_round(round);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_TRUE(traces[2].trace.frequency_hz.empty());
  EXPECT_EQ(traces[0].trace.frequency_hz.size(), kNumChannels);
}

TEST_F(PreprocessTest, TraceMeanRssiEmptyThrows) {
  AntennaTrace empty;
  EXPECT_THROW(trace_mean_rssi(empty), InvalidArgument);
}

}  // namespace
}  // namespace rfp
