#include <gtest/gtest.h>

#include "rfp/baselines/mobitagbot.hpp"
#include "rfp/baselines/tagtag.hpp"
#include "rfp/common/angles.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;
using testutil::noiseless_channel;
using testutil::noiseless_reader;

class MobiTagbotTest : public ::testing::Test {
 protected:
  MobiTagbotTest()
      : scene_(make_scene_2d(111)),
        tag_(make_tag_hardware("t", 111)),
        baseline_(exact_geometry(scene_), MobiTagbotConfig{}) {}

  RoundTrace round_at(const TagState& state, std::uint64_t trial) {
    Rng rng(trial);
    return collect_round(scene_, noiseless_reader(), noiseless_channel(),
                         tag_, state, trial, rng);
  }

  Scene scene_;
  TagHardware tag_;
  MobiTagbot baseline_;
};

TEST_F(MobiTagbotTest, AccurateWhenNothingVaries) {
  const Vec3 cal_pos{1.0, 1.0, 0.0};
  const TagState cal_state{cal_pos, planar_polarization(0.0), "plastic"};
  baseline_.calibrate(round_at(cal_state, 1), cal_pos);
  // Same orientation, same material, new position: the regime where the
  // paper finds MobiTagbot competitive (Fig. 14).
  const TagState test{Vec3{1.4, 1.3, 0.0}, planar_polarization(0.0),
                      "plastic"};
  const auto est = baseline_.localize(round_at(test, 2));
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(distance(*est, test.position), 0.05);
}

TEST_F(MobiTagbotTest, OrientationChangeDegradesIt) {
  const Vec3 cal_pos{1.0, 1.0, 0.0};
  const TagState cal_state{cal_pos, planar_polarization(0.0), "plastic"};
  baseline_.calibrate(round_at(cal_state, 3), cal_pos);

  const Vec3 test_pos{0.7, 1.4, 0.0};
  const TagState same_orient{test_pos, planar_polarization(0.0), "plastic"};
  const TagState rotated{test_pos, planar_polarization(deg2rad(70.0)),
                         "plastic"};
  const double err_same =
      distance(*baseline_.localize(round_at(same_orient, 4)), test_pos);
  const double err_rot =
      distance(*baseline_.localize(round_at(rotated, 5)), test_pos);
  EXPECT_GT(err_rot, err_same + 0.01);
}

TEST_F(MobiTagbotTest, MaterialChangeDegradesItMore) {
  const Vec3 cal_pos{1.0, 1.0, 0.0};
  const TagState cal_state{cal_pos, planar_polarization(0.0), "plastic"};
  baseline_.calibrate(round_at(cal_state, 6), cal_pos);

  const Vec3 test_pos{1.3, 0.7, 0.0};
  const TagState plastic{test_pos, planar_polarization(0.0), "plastic"};
  const TagState metal{test_pos, planar_polarization(0.0), "metal"};
  const double err_plastic =
      distance(*baseline_.localize(round_at(plastic, 7)), test_pos);
  const double err_metal =
      distance(*baseline_.localize(round_at(metal, 8)), test_pos);
  // Metal's kt masquerades as ~30 cm of extra distance for the slope
  // ranger.
  EXPECT_GT(err_metal, err_plastic + 0.05);
}

TEST_F(MobiTagbotTest, RangeAllReportsConfiguredAntennas) {
  const Vec3 cal_pos{1.0, 1.0, 0.0};
  const TagState cal_state{cal_pos, planar_polarization(0.0), "none"};
  baseline_.calibrate(round_at(cal_state, 9), cal_pos);
  const auto ranges = baseline_.range_all(round_at(cal_state, 10));
  ASSERT_EQ(ranges.size(), 2u);  // default config uses antennas {0, 1}
  for (const auto& [ai, d] : ranges) {
    EXPECT_TRUE(ai == 0 || ai == 1);
    const double truth = distance(scene_.antennas[ai].position, cal_pos);
    EXPECT_NEAR(d, truth, 0.03);
  }
}

TEST_F(MobiTagbotTest, LocalizeBeforeCalibrateThrows) {
  const TagState state{Vec3{1.0, 1.0, 0.0}, planar_polarization(0.0), "none"};
  EXPECT_THROW(baseline_.localize(round_at(state, 11)), Error);
}

TEST_F(MobiTagbotTest, BadConfigThrows) {
  MobiTagbotConfig config;
  config.antennas = {0};
  EXPECT_THROW(MobiTagbot(exact_geometry(scene_), config), InvalidArgument);
  config.antennas = {0, 9};
  EXPECT_THROW(MobiTagbot(exact_geometry(scene_), config), InvalidArgument);
}

class TagtagTest : public ::testing::Test {
 protected:
  TagtagTest() : scene_(make_scene_2d(112)), tag_(make_tag_hardware("t", 112)) {}

  RoundTrace round_at(Vec2 p, const std::string& material,
                      std::uint64_t trial) {
    Rng rng(trial);
    const TagState state{Vec3{p, 0.0}, planar_polarization(0.0), material};
    return collect_round(scene_, noiseless_reader(), noiseless_channel(),
                         tag_, state, trial, rng);
  }

  Scene scene_;
  TagHardware tag_;
};

TEST_F(TagtagTest, RssDistanceEstimateIsCoarseButSane) {
  Tagtag baseline;
  const Vec2 cal_p{1.0, 1.0};
  const double cal_d =
      distance(scene_.antennas[0].position, Vec3{cal_p, 0.0});
  baseline.calibrate_link(round_at(cal_p, "none", 1), cal_d);
  const Vec2 test_p{1.5, 1.6};
  const double truth =
      distance(scene_.antennas[0].position, Vec3{test_p, 0.0});
  const double est = baseline.estimate_distance(round_at(test_p, "none", 2));
  EXPECT_NEAR(est, truth, 0.4);
}

TEST_F(TagtagTest, ClassifiesDistinctMaterialsAtFixedPose) {
  Tagtag baseline;
  const Vec2 p{1.0, 1.0};
  baseline.calibrate_link(
      round_at(p, "none", 1),
      distance(scene_.antennas[0].position, Vec3{p, 0.0}));
  std::uint64_t trial = 10;
  for (int rep = 0; rep < 6; ++rep) {
    for (const char* m : {"wood", "metal", "water"}) {
      baseline.add_sample(round_at(p, m, trial++), m);
    }
  }
  EXPECT_EQ(baseline.n_samples(), 18u);
  EXPECT_EQ(baseline.classes().size(), 3u);
  int correct = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (const char* m : {"wood", "metal", "water"}) {
      correct += baseline.predict(round_at(p, m, trial++)) == m;
    }
  }
  EXPECT_GE(correct, 10);
}

TEST_F(TagtagTest, SampleBeforeLinkCalibrationThrows) {
  Tagtag baseline;
  EXPECT_THROW(baseline.add_sample(round_at({1.0, 1.0}, "wood", 1), "wood"),
               Error);
}

TEST_F(TagtagTest, PredictWithoutSamplesThrows) {
  Tagtag baseline;
  baseline.calibrate_link(round_at({1.0, 1.0}, "none", 1), 1.5);
  EXPECT_THROW(baseline.predict(round_at({1.0, 1.0}, "wood", 2)), Error);
}

TEST_F(TagtagTest, BadCalibrationDistanceThrows) {
  Tagtag baseline;
  EXPECT_THROW(baseline.calibrate_link(round_at({1.0, 1.0}, "none", 1), 0.0),
               InvalidArgument);
}

TEST_F(TagtagTest, EmptyMaterialNameThrows) {
  Tagtag baseline;
  baseline.calibrate_link(round_at({1.0, 1.0}, "none", 1), 1.5);
  EXPECT_THROW(baseline.add_sample(round_at({1.0, 1.0}, "wood", 2), ""),
               InvalidArgument);
}

}  // namespace
}  // namespace rfp
