#include "rfp/common/angles.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(WrapTo2Pi, CanonicalValues) {
  EXPECT_DOUBLE_EQ(wrap_to_2pi(0.0), 0.0);
  EXPECT_NEAR(wrap_to_2pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_to_2pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_to_2pi(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_to_2pi(-5.0 * kTwoPi + 1.0), 1.0, 1e-9);
}

TEST(WrapTo2Pi, AlwaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-1e4, 1e4);
    const double w = wrap_to_2pi(a);
    ASSERT_GE(w, 0.0) << a;
    ASSERT_LT(w, kTwoPi) << a;
    // Congruence: w - a is a multiple of 2*pi.
    const double m = (a - w) / kTwoPi;
    ASSERT_NEAR(m, std::round(m), 1e-6) << a;
  }
}

TEST(WrapToPi, RangeAndCongruence) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-1e4, 1e4);
    const double w = wrap_to_pi(a);
    ASSERT_GE(w, -kPi);
    ASSERT_LT(w, kPi);
    const double m = (a - w) / kTwoPi;
    ASSERT_NEAR(m, std::round(m), 1e-6);
  }
}

TEST(AngDiff, ShortestRotation) {
  EXPECT_NEAR(ang_diff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(ang_diff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
  EXPECT_NEAR(ang_diff(1.0, 1.0), 0.0, 1e-12);
  // Antipodal difference maps to -pi (half-open convention).
  EXPECT_NEAR(ang_diff(0.0, kPi), -kPi, 1e-12);
}

TEST(AngDiff, AntiSymmetricUpToWrap) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(0.0, kTwoPi);
    const double b = rng.uniform(0.0, kTwoPi);
    const double d1 = ang_diff(a, b);
    const double d2 = ang_diff(b, a);
    if (std::abs(std::abs(d1) - kPi) > 1e-9) {
      ASSERT_NEAR(d1, -d2, 1e-9);
    }
  }
}

TEST(CircularMean, SimpleCluster) {
  const std::vector<double> angles{0.1, 0.2, 0.3};
  EXPECT_NEAR(circular_mean(angles), 0.2, 1e-12);
}

TEST(CircularMean, WrapsAroundZero) {
  const std::vector<double> angles{kTwoPi - 0.1, 0.1};
  EXPECT_NEAR(wrap_to_pi(circular_mean(angles)), 0.0, 1e-9);
}

TEST(CircularMean, EmptyThrows) {
  EXPECT_THROW(circular_mean(std::vector<double>{}), InvalidArgument);
}

TEST(CircularMean, AntipodalThrows) {
  const std::vector<double> angles{0.0, kPi};
  EXPECT_THROW(circular_mean(angles), InvalidArgument);
}

TEST(CircularMean, InvariantToRotation) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> angles;
    for (int i = 0; i < 9; ++i) angles.push_back(rng.gaussian(1.0, 0.3));
    const double base = circular_mean(angles);
    const double shift = rng.uniform(0.0, kTwoPi);
    for (double& a : angles) a = wrap_to_2pi(a + shift);
    const double shifted = circular_mean(angles);
    ASSERT_NEAR(std::abs(ang_diff(shifted, base + shift)), 0.0, 1e-9);
  }
}

TEST(CircularResultantLength, ConcentratedNearOne) {
  const std::vector<double> angles{1.0, 1.0, 1.0};
  EXPECT_NEAR(circular_resultant_length(angles), 1.0, 1e-12);
}

TEST(CircularResultantLength, SpreadNearZero) {
  const std::vector<double> angles{0.0, kTwoPi / 3.0, 2.0 * kTwoPi / 3.0};
  EXPECT_NEAR(circular_resultant_length(angles), 0.0, 1e-9);
}

TEST(CircularStddev, ZeroForIdenticalAngles) {
  const std::vector<double> angles{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(circular_stddev(angles), 0.0, 1e-6);
}

TEST(CircularStddev, MatchesLinearStddevForSmallSpread) {
  // For tightly clustered angles the circular stddev approaches the
  // linear one.
  Rng rng(5);
  std::vector<double> angles;
  for (int i = 0; i < 5000; ++i) angles.push_back(rng.gaussian(3.0, 0.05));
  EXPECT_NEAR(circular_stddev(angles), 0.05, 0.005);
}

TEST(Unwrap, RemovesArtificialWraps) {
  // A steadily increasing sequence wrapped to [0, 2*pi) must unwrap back
  // to itself (up to the starting offset).
  std::vector<double> truth;
  std::vector<double> wrapped;
  for (int i = 0; i < 200; ++i) {
    const double v = 0.35 * static_cast<double>(i);
    truth.push_back(v);
    wrapped.push_back(wrap_to_2pi(v));
  }
  const std::vector<double> un = unwrap(wrapped);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ASSERT_NEAR(un[i] - un[0], truth[i] - truth[0], 1e-9);
  }
}

TEST(Unwrap, AdjacentStepsBelowPi) {
  Rng rng(6);
  std::vector<double> wrapped;
  for (int i = 0; i < 500; ++i) wrapped.push_back(rng.uniform(0.0, kTwoPi));
  const std::vector<double> un = unwrap(wrapped);
  for (std::size_t i = 1; i < un.size(); ++i) {
    ASSERT_LT(std::abs(un[i] - un[i - 1]), kPi + 1e-12);
  }
}

TEST(Unwrap, SingleElement) {
  const std::vector<double> one{1.5};
  EXPECT_EQ(unwrap(one), one);
}

TEST(DegRadConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad2deg(kPi), 180.0);
  EXPECT_NEAR(rad2deg(deg2rad(37.25)), 37.25, 1e-12);
}

}  // namespace
}  // namespace rfp
