#include "rfp/core/disentangle.hpp"

#include <gtest/gtest.h>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/error.hpp"
#include "support/core_test_util.hpp"

namespace rfp {
namespace {

using testutil::exact_geometry;

/// Build exact AntennaLines from the physical model at a given state:
/// k_i = C*d_i + kt, b_i = orient_i + bt.
std::vector<AntennaLine> exact_lines(const DeploymentGeometry& geometry,
                                     Vec3 position, Vec3 polarization,
                                     double kt, double bt) {
  std::vector<AntennaLine> lines;
  for (std::size_t i = 0; i < geometry.n_antennas(); ++i) {
    AntennaLine line;
    line.antenna = i;
    const double d = distance(geometry.antenna_positions[i], position);
    line.fit.slope = kSlopePerMeter * d + kt;
    line.fit.intercept = wrap_to_2pi(
        polarization_phase_toward(geometry.antenna_frames[i],
                                  geometry.antenna_positions[i], position,
                                  polarization) +
        bt);
    line.fit.n = kNumChannels;
    line.n_channels = kNumChannels;
    lines.push_back(line);
  }
  return lines;
}

std::vector<Vec2> paper_like_grid() {
  std::vector<Vec2> pts;
  for (double x : {0.3, 1.0, 1.7}) {
    for (double y : {0.3, 1.0, 1.7}) pts.push_back({x, y});
  }
  return pts;
}

class DisentangleTest : public ::testing::Test {
 protected:
  DisentangleTest()
      : scene_(make_scene_2d(71)), geometry_(exact_geometry(scene_)) {}

  Scene scene_;
  DeploymentGeometry geometry_;
  DisentangleConfig config_;
};

TEST_F(DisentangleTest, ExactPositionRecovered) {
  const Vec3 truth{0.65, 1.4, 0.0};
  const auto lines =
      exact_lines(geometry_, truth, planar_polarization(0.3), 2e-9, 1.1);
  const PositionSolve solve = solve_position(geometry_, lines, config_);
  EXPECT_NEAR(distance(solve.position, truth), 0.0, 1e-3);
  EXPECT_NEAR(solve.kt, 2e-9, 1e-11);
  EXPECT_LT(solve.rms, 1e-10);
}

TEST_F(DisentangleTest, PositionSweepAcrossRegion) {
  for (Vec2 p : paper_like_grid()) {
    const Vec3 truth{p, 0.0};
    const auto lines =
        exact_lines(geometry_, truth, planar_polarization(1.0), 0.0, 0.5);
    const PositionSolve solve = solve_position(geometry_, lines, config_);
    ASSERT_NEAR(distance(solve.position, truth), 0.0, 5e-3)
        << "at " << p.x << "," << p.y;
  }
}

TEST_F(DisentangleTest, KtIndependentOfPositionTruth) {
  // kt must absorb exactly the common-mode slope regardless of where the
  // tag sits.
  for (double kt : {-5e-9, 0.0, 4e-9, 1.2e-8}) {
    const Vec3 truth{1.3, 0.8, 0.0};
    const auto lines =
        exact_lines(geometry_, truth, planar_polarization(0.0), kt, 0.0);
    const PositionSolve solve = solve_position(geometry_, lines, config_);
    ASSERT_NEAR(solve.kt, kt, 1e-11);
    ASSERT_NEAR(distance(solve.position, truth), 0.0, 2e-3);
  }
}

TEST_F(DisentangleTest, ExactOrientationRecovered) {
  const Vec3 truth{1.2, 1.1, 0.0};
  for (double alpha : {0.0, 0.4, 1.0, 1.5, 2.2, 2.9}) {
    const auto lines = exact_lines(geometry_, truth,
                                   planar_polarization(alpha), 1e-9, 0.8);
    const OrientationSolve solve =
        solve_orientation(geometry_, lines, truth, config_);
    ASSERT_NEAR(rad2deg(planar_angle_error(solve.alpha, alpha)), 0.0, 0.5)
        << "alpha=" << alpha;
    ASSERT_NEAR(std::abs(ang_diff(solve.bt, 0.8)), 0.0, 0.05);
    ASSERT_LT(solve.rms, 1e-3);
  }
}

TEST_F(DisentangleTest, OrientationToleratesSmallPositionError) {
  const Vec3 truth{0.9, 1.5, 0.0};
  const double alpha = 1.1;
  const auto lines =
      exact_lines(geometry_, truth, planar_polarization(alpha), 0.0, 0.3);
  // Feed a position 10 cm off: the ray directions barely move.
  const Vec3 biased{1.0, 1.55, 0.0};
  const OrientationSolve solve =
      solve_orientation(geometry_, lines, biased, config_);
  EXPECT_LT(rad2deg(planar_angle_error(solve.alpha, alpha)), 6.0);
}

TEST_F(DisentangleTest, InterceptNoiseDegradesGracefully) {
  const Vec3 truth{1.0, 1.0, 0.0};
  const double alpha = 0.7;
  auto lines =
      exact_lines(geometry_, truth, planar_polarization(alpha), 0.0, 1.9);
  lines[1].fit.intercept = wrap_to_2pi(lines[1].fit.intercept + 0.08);
  const OrientationSolve solve =
      solve_orientation(geometry_, lines, truth, config_);
  EXPECT_LT(rad2deg(planar_angle_error(solve.alpha, alpha)), 12.0);
}

TEST_F(DisentangleTest, PositionCostMinimalAtTruth) {
  const Vec3 truth{0.5, 0.6, 0.0};
  const auto lines =
      exact_lines(geometry_, truth, planar_polarization(0.2), 1e-9, 0.1);
  const double at_truth = position_cost(geometry_, lines, truth);
  for (Vec3 other : {Vec3{0.8, 0.6, 0.0}, Vec3{0.5, 1.0, 0.0},
                     Vec3{1.5, 1.5, 0.0}}) {
    EXPECT_LT(at_truth, position_cost(geometry_, lines, other));
  }
}

TEST_F(DisentangleTest, OrientationCostMinimalAtTruth) {
  const Vec3 truth{1.4, 1.2, 0.0};
  const double alpha = 0.9;
  const auto lines =
      exact_lines(geometry_, truth, planar_polarization(alpha), 0.0, 0.0);
  const double at_truth =
      orientation_cost(geometry_, lines, truth, planar_polarization(alpha));
  for (double other : {0.2, 1.6, 2.5}) {
    EXPECT_LT(at_truth, orientation_cost(geometry_, lines, truth,
                                         planar_polarization(other)));
  }
}

TEST_F(DisentangleTest, TooFewLinesThrows) {
  const Vec3 truth{1.0, 1.0, 0.0};
  auto lines =
      exact_lines(geometry_, truth, planar_polarization(0.0), 0.0, 0.0);
  lines.pop_back();
  EXPECT_THROW(solve_position(geometry_, lines, config_), InvalidArgument);
  EXPECT_THROW(solve_orientation(geometry_, lines, truth, config_),
               InvalidArgument);
}

TEST_F(DisentangleTest, UnusableLinesDoNotCount) {
  const Vec3 truth{1.0, 1.0, 0.0};
  auto lines =
      exact_lines(geometry_, truth, planar_polarization(0.0), 0.0, 0.0);
  lines[2].fit.n = 0;
  EXPECT_THROW(solve_position(geometry_, lines, config_), InvalidArgument);
}

TEST_F(DisentangleTest, CoarseGridConfigThrows) {
  DisentangleConfig bad;
  bad.grid_nx = 1;
  const Vec3 truth{1.0, 1.0, 0.0};
  const auto lines =
      exact_lines(geometry_, truth, planar_polarization(0.0), 0.0, 0.0);
  EXPECT_THROW(solve_position(geometry_, lines, bad), InvalidArgument);
}

TEST(Disentangle3d, PositionAndOrientationIn3d) {
  const Scene scene = make_scene_3d(72);
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  config.grid_nx = 25;
  config.grid_ny = 25;
  config.grid_nz = 9;
  config.z_lo = 0.0;
  config.z_hi = 1.2;

  const Vec3 truth{1.2, 0.9, 0.45};
  const Vec3 w = spherical_polarization(0.8, 0.35);
  const auto lines = exact_lines(geometry, truth, w, 2e-9, 1.0);

  const PositionSolve pos = solve_position(geometry, lines, config);
  EXPECT_NEAR(distance(pos.position, truth), 0.0, 0.02);
  EXPECT_NEAR(pos.kt, 2e-9, 1e-10);

  const OrientationSolve orient =
      solve_orientation(geometry, lines, pos.position, config);
  EXPECT_LT(rad2deg(polarization_angle_error(orient.polarization, w)), 6.0);
}

TEST(Disentangle3d, Needs4Antennas) {
  const Scene scene = make_scene_2d(73);  // only 3 antennas
  const DeploymentGeometry geometry = exact_geometry(scene);
  DisentangleConfig config;
  config.grid_nz = 5;
  const auto lines = exact_lines(geometry, Vec3{1.0, 1.0, 0.0},
                                 planar_polarization(0.0), 0.0, 0.0);
  EXPECT_THROW(solve_position(geometry, lines, config), InvalidArgument);
}

}  // namespace
}  // namespace rfp
