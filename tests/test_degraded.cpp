#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "rfp/common/error.hpp"
#include "rfp/core/antenna_health.hpp"
#include "rfp/core/pipeline.hpp"
#include "rfp/exp/testbed.hpp"
#include "rfp/rfsim/faults.hpp"

namespace rfp {
namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// ---- AntennaHealthMonitor units ---------------------------------------

TEST(AntennaHealthMonitorTest, StartsHealthy) {
  AntennaHealthMonitor monitor(4);
  for (std::size_t a = 0; a < 4; ++a) EXPECT_TRUE(monitor.healthy(a));
  EXPECT_TRUE(monitor.quarantined().empty());
}

TEST(AntennaHealthMonitorTest, OneBadRoundDoesNotQuarantine) {
  AntennaHealthMonitor monitor(4);
  monitor.observe_port(1, /*fit_rmse=*/0.9, /*read_rate=*/0.0,
                       /*excluded=*/true);
  EXPECT_TRUE(monitor.healthy(1));  // min_rounds protects against bursts
}

TEST(AntennaHealthMonitorTest, QuarantinesPersistentlyBadPort) {
  AntennaHealthMonitor monitor(4);
  for (int i = 0; i < 8; ++i) {
    monitor.observe_port(1, 0.9, 0.1, true);
    monitor.observe_port(0, 0.05, 1.0, false);
  }
  EXPECT_FALSE(monitor.healthy(1));
  EXPECT_TRUE(monitor.healthy(0));
  const auto q = monitor.quarantined();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0], 1u);
  EXPECT_EQ(monitor.port(1).quarantine_transitions, 1u);
}

TEST(AntennaHealthMonitorTest, ReadmissionRequiresSustainedRecovery) {
  AntennaHealthMonitor monitor(4);
  for (int i = 0; i < 8; ++i) monitor.observe_port(2, 0.9, 0.1, true);
  ASSERT_FALSE(monitor.healthy(2));

  // One clean round is not proof of recovery (hysteresis).
  monitor.observe_port(2, 0.05, 1.0, false);
  EXPECT_FALSE(monitor.healthy(2));

  // A sustained run of clean rounds re-admits the port.
  for (int i = 0; i < 20; ++i) monitor.observe_port(2, 0.05, 1.0, false);
  EXPECT_TRUE(monitor.healthy(2));
  EXPECT_EQ(monitor.port(2).quarantine_transitions, 1u);
}

TEST(AntennaHealthMonitorTest, SilentPortQuarantinedByReadRate) {
  AntennaHealthMonitor monitor(4);
  // A dead port delivers nothing: no RMSE to observe, read rate zero.
  for (int i = 0; i < 8; ++i) monitor.observe_port(3, 0.0, 0.0, true);
  EXPECT_FALSE(monitor.healthy(3));
}

TEST(AntennaHealthMonitorTest, ResetForgetsHistory) {
  AntennaHealthMonitor monitor(4);
  for (int i = 0; i < 8; ++i) monitor.observe_port(1, 0.9, 0.1, true);
  ASSERT_FALSE(monitor.healthy(1));
  monitor.reset();
  EXPECT_TRUE(monitor.healthy(1));
  EXPECT_EQ(monitor.port(1).rounds_observed, 0u);
}

TEST(AntennaHealthMonitorTest, ValidatesConfig) {
  EXPECT_THROW(AntennaHealthMonitor(0), InvalidArgument);
  AntennaHealthConfig config;
  config.rmse_readmit = 0.5;  // not below the quarantine threshold
  EXPECT_THROW(AntennaHealthMonitor(4, config), InvalidArgument);
  config = {};
  config.ewma_alpha = 0.0;
  EXPECT_THROW(AntennaHealthMonitor(4, config), InvalidArgument);
}

// ---- Degraded-mode sensing --------------------------------------------

class DegradedTest : public ::testing::Test {
 protected:
  DegradedTest() {
    TestbedConfig config;
    config.n_antennas = 4;
    bed_ = std::make_unique<Testbed>(config);
  }
  std::unique_ptr<Testbed> bed_;
};

TEST_F(DegradedTest, DeadPortDegradesWithinTwiceBaselineError) {
  FaultProfile profile;
  profile.dead_antennas = {2};
  const FaultInjector injector(profile);

  std::vector<double> baseline_err, degraded_err;
  std::size_t degraded_count = 0;
  const auto positions = paper_grid_positions(bed_->scene().working_region);
  for (std::size_t i = 0; i < 10; ++i) {
    const Vec2 p = positions[i * 2];
    const TagState state = bed_->tag_state(p, 0.4, "glass");
    const RoundTrace round = bed_->collect(state, 100 + i);

    const SensingResult full = bed_->prism().sense(round, bed_->tag_id());
    ASSERT_TRUE(full.valid);
    EXPECT_EQ(full.grade, SensingGrade::kFull);
    baseline_err.push_back(distance(full.position, state.position));

    const SensingResult degraded =
        bed_->prism().sense(injector.apply(round, 100 + i), bed_->tag_id());
    ASSERT_TRUE(degraded.valid);
    if (degraded.grade == SensingGrade::kDegraded) ++degraded_count;
    EXPECT_TRUE(std::find(degraded.excluded_antennas.begin(),
                          degraded.excluded_antennas.end(),
                          2u) != degraded.excluded_antennas.end());
    degraded_err.push_back(distance(degraded.position, state.position));
  }
  EXPECT_EQ(degraded_count, 10u);
  // The acceptance bar: losing one of four ports costs at most 2x the
  // median localization error of the full array.
  EXPECT_LE(median(degraded_err), 2.0 * median(baseline_err) + 1e-6);
}

TEST_F(DegradedTest, ThreeAntennasWithDeadPortRejectsForHealth) {
  Testbed bed;  // default planar rig: 3 antennas, no redundancy
  FaultProfile profile;
  profile.dead_antennas = {1};
  const FaultInjector injector(profile);
  const TagState state = bed.tag_state({0.8, 1.2}, 0.5, "glass");
  const SensingResult result =
      bed.prism().sense(injector.apply(bed.collect(state, 3), 3), bed.tag_id());
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.grade, SensingGrade::kRejected);
  EXPECT_EQ(result.reject_reason, RejectReason::kAntennaHealth);
  EXPECT_TRUE(std::find(result.unhealthy_antennas.begin(),
                        result.unhealthy_antennas.end(),
                        1u) != result.unhealthy_antennas.end());
}

TEST_F(DegradedTest, QuarantinedPortExcludedEvenWhenClean) {
  AntennaHealthMonitor monitor(4);
  for (int i = 0; i < 8; ++i) monitor.observe_port(3, 0.9, 0.1, true);
  ASSERT_FALSE(monitor.healthy(3));

  const TagState state = bed_->tag_state({1.0, 1.0}, 0.3, "wood");
  const RoundTrace round = bed_->collect(state, 42);  // port 3 data is fine
  const SensingResult result =
      bed_->prism().sense(round, bed_->tag_id(), &monitor);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.grade, SensingGrade::kDegraded);
  ASSERT_EQ(result.excluded_antennas.size(), 1u);
  EXPECT_EQ(result.excluded_antennas[0], 3u);
  // The exclusion is quarantine-driven, not for cause this round.
  EXPECT_TRUE(result.unhealthy_antennas.empty());
}

TEST_F(DegradedTest, DegradedModeOffKeepsStrictBehaviour) {
  RfPrismConfig config;
  config.enable_degraded_mode = false;
  const RfPrism strict = bed_->make_pipeline_variant(config);

  FaultProfile profile;
  profile.dead_antennas = {2};
  const FaultInjector injector(profile);
  const TagState state = bed_->tag_state({0.8, 1.2}, 0.5, "glass");
  const SensingResult result =
      strict.sense(injector.apply(bed_->collect(state, 9), 9), bed_->tag_id());
  // The strict pipeline has no subset path: the dead port rejects the
  // round outright.
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.grade, SensingGrade::kRejected);
}

TEST_F(DegradedTest, MonitorLearnsDeadPortFromStream) {
  AntennaHealthMonitor monitor(4);
  FaultProfile profile;
  profile.dead_antennas = {1};
  const FaultInjector injector(profile);
  const TagState state = bed_->tag_state({0.9, 1.1}, 0.6, "plastic");

  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const SensingResult result = bed_->prism().sense(
        injector.apply(bed_->collect(state, trial), trial), bed_->tag_id(),
        &monitor);
    monitor.observe_round(result, /*expected_channels=*/40);
  }
  EXPECT_FALSE(monitor.healthy(1));
  EXPECT_TRUE(monitor.healthy(0));
  EXPECT_TRUE(monitor.healthy(2));
  EXPECT_TRUE(monitor.healthy(3));
}

TEST_F(DegradedTest, FlakyPortStillSensesEachRound) {
  FaultProfile profile;
  profile.flaky_antennas = {0};
  profile.flaky_dropout_prob = 0.6;
  const FaultInjector injector(profile);
  std::size_t valid = 0;
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    const TagState state = bed_->tag_state({0.9, 1.1}, 0.6, "wood");
    const SensingResult result = bed_->prism().sense(
        injector.apply(bed_->collect(state, trial), trial), bed_->tag_id());
    if (result.valid) ++valid;
  }
  // A flaky (not dead) port must not collapse availability: most rounds
  // still produce a pose, full or degraded.
  EXPECT_GE(valid, 5u);
}

}  // namespace
}  // namespace rfp
