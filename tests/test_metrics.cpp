#include "rfp/ml/metrics.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/ml/decision_tree.hpp"
#include "rfp/ml/knn.hpp"

namespace rfp {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm({"a", "b"});
  cm.record(0, 0);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(1), 1.0);
}

TEST(ConfusionMatrix, RowNormalization) {
  ConfusionMatrix cm({"a", "b"});
  cm.record(0, 0);
  cm.record(0, 1);
  EXPECT_DOUBLE_EQ(cm.normalized(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cm.normalized(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(cm.normalized(1, 0), 0.0);  // empty row
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix cm({"a"});
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.class_accuracy(0), 0.0);
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  ConfusionMatrix cm({"a", "b"});
  EXPECT_THROW(cm.record(2, 0), InvalidArgument);
  EXPECT_THROW(cm.record(0, -1), InvalidArgument);
  EXPECT_THROW(cm.count(0, 5), InvalidArgument);
}

TEST(ConfusionMatrix, NoClassesThrows) {
  EXPECT_THROW(ConfusionMatrix(std::vector<std::string>{}), InvalidArgument);
}

TEST(ConfusionMatrix, PrintContainsNamesAndValues) {
  ConfusionMatrix cm({"wood", "metal"});
  cm.record(0, 0);
  cm.record(1, 0);
  std::ostringstream os;
  cm.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("wood"), std::string::npos);
  EXPECT_NE(out.find("metal"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
}

TEST(Evaluate, RunsFullTrainTestCycle) {
  Dataset train({"a", "b"});
  Dataset test({"a", "b"});
  for (int i = 0; i < 40; ++i) {
    const int cls = i % 2;
    const std::vector<double> x{cls * 10.0 + (i % 5) * 0.1};
    (i < 30 ? train : test).add(x, cls);
  }
  DecisionTreeClassifier tree;
  const ConfusionMatrix cm = evaluate(tree, train, test);
  EXPECT_EQ(cm.total(), test.size());
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(evaluate_accuracy(tree, train, test), 1.0);
}

TEST(Evaluate, EmptySetsThrow) {
  KnnClassifier knn;
  Dataset d({"a"});
  d.add({1.0}, 0);
  EXPECT_THROW(evaluate(knn, Dataset{}, d), InvalidArgument);
  EXPECT_THROW(evaluate(knn, d, Dataset{}), InvalidArgument);
}

}  // namespace
}  // namespace rfp
