#include "rfp/dsp/dtw.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, a), 0.0);
}

TEST(Dtw, SingleElementSequences) {
  const std::vector<double> a{2.0};
  const std::vector<double> b{5.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), 3.0);
}

TEST(Dtw, TimeShiftCostsLittle) {
  // The same bump shifted by two samples: DTW must be far below the
  // pointwise L1 distance.
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(std::exp(-0.1 * (i - 15) * (i - 15)));
    b.push_back(std::exp(-0.1 * (i - 17) * (i - 17)));
  }
  double l1 = 0.0;
  for (int i = 0; i < 40; ++i) l1 += std::abs(a[i] - b[i]);
  EXPECT_LT(dtw_distance(a, b), 0.2 * l1);
}

TEST(Dtw, SymmetricInArguments) {
  Rng rng(91);
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) a.push_back(rng.gaussian());
  for (int i = 0; i < 30; ++i) b.push_back(rng.gaussian());
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), dtw_distance(b, a));
}

TEST(Dtw, LowerBoundedByEndpointCosts) {
  // The warp path must match first-with-first and last-with-last.
  const std::vector<double> a{0.0, 1.0, 10.0};
  const std::vector<double> b{2.0, 1.0, 4.0};
  EXPECT_GE(dtw_distance(a, b),
            std::abs(a.front() - b.front()) + std::abs(a.back() - b.back()) -
                1e-12);
}

TEST(Dtw, ConstantOffsetScalesWithPathLength) {
  const std::vector<double> a{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> b{3.0, 3.0, 3.0, 3.0};
  // Diagonal path: 4 steps of cost 2.
  EXPECT_DOUBLE_EQ(dtw_distance(a, b), 8.0);
  EXPECT_DOUBLE_EQ(dtw_distance_normalized(a, b), 2.0);
}

TEST(Dtw, BandRestrictsWarping) {
  // A large shift that an unconstrained warp absorbs becomes costly
  // under a narrow band.
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(i < 15 ? 0.0 : 1.0);
    b.push_back(i < 25 ? 0.0 : 1.0);
  }
  const double unconstrained = dtw_distance(a, b);
  const double banded = dtw_distance(a, b, 2);
  EXPECT_GT(banded, unconstrained);
}

TEST(Dtw, BandEqualLengthDiagonalStillFeasible) {
  Rng rng(92);
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.gaussian());
    b.push_back(rng.gaussian());
  }
  // Band 1 permits the pure diagonal.
  EXPECT_NO_THROW(dtw_distance(a, b, 1));
}

TEST(Dtw, BandNarrowerThanLengthGapThrows) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(dtw_distance(a, b, 2), InvalidArgument);
}

TEST(Dtw, EmptySequenceThrows) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(dtw_distance(a, std::vector<double>{}), InvalidArgument);
  EXPECT_THROW(dtw_distance(std::vector<double>{}, a), InvalidArgument);
}

TEST(Dtw, TriangleLikeSanityOnSmallPerturbations) {
  // Perturbing one element by eps changes the distance by at most eps *
  // path multiplicity; sanity-check continuity.
  const std::vector<double> a{0.0, 1.0, 2.0, 3.0};
  std::vector<double> b = a;
  b[2] += 0.01;
  EXPECT_LE(dtw_distance(a, b), 0.05);
}

TEST(DtwNormalized, ComparableAcrossLengths) {
  // The same constant-offset pair at different lengths should yield the
  // same normalized distance.
  const std::vector<double> a4(4, 0.0), b4(4, 1.0);
  const std::vector<double> a9(9, 0.0), b9(9, 1.0);
  EXPECT_NEAR(dtw_distance_normalized(a4, b4),
              dtw_distance_normalized(a9, b9), 1e-12);
}

}  // namespace
}  // namespace rfp
