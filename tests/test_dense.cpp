#include "rfp/solver/dense.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "rfp/common/error.hpp"
#include "rfp/common/rng.hpp"

namespace rfp {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, IdentityDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, GramIsSymmetricPsd) {
  Rng rng(101);
  Matrix a(6, 3);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.gaussian();
  }
  const Matrix g = a.gram();
  ASSERT_EQ(g.rows(), 3u);
  ASSERT_EQ(g.cols(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(g(r, c), g(c, r));
    }
    EXPECT_GE(g(r, r), 0.0);
  }
}

TEST(Matrix, TimesAndTransposeTimes) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const std::vector<double> x{1.0, 0.0, -1.0};
  const std::vector<double> ax = a.times(x);
  ASSERT_EQ(ax.size(), 2u);
  EXPECT_DOUBLE_EQ(ax[0], -2.0);
  EXPECT_DOUBLE_EQ(ax[1], -2.0);

  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> atv = a.transpose_times(v);
  ASSERT_EQ(atv.size(), 3u);
  EXPECT_DOUBLE_EQ(atv[0], 5.0);
  EXPECT_DOUBLE_EQ(atv[1], 7.0);
  EXPECT_DOUBLE_EQ(atv[2], 9.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix m = Matrix::identity(3);
  m.add_diagonal(2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, AddScaledDiagonal) {
  Matrix m(2, 2);
  const std::vector<double> d{2.0, 3.0};
  m.add_scaled_diagonal(d, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
}

TEST(Matrix, AddDiagonalNonSquareThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.add_diagonal(1.0), InvalidArgument);
}

TEST(SolveLinear, TwoByTwo) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const std::vector<double> x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RandomSystemsRoundTrip) {
  Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(7);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();
      a(r, r) += 3.0;  // keep well conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.gaussian();
    const std::vector<double> b = a.times(x_true);
    const std::vector<double> x = solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero leading pivot is fine with partial pivoting.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const std::vector<double> x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), NumericalError);
}

TEST(SolveLinear, SizeMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(solve_linear(a, {1.0}), InvalidArgument);
}

TEST(SolveLeastSquares, OverdeterminedConsistent) {
  // y = 2x + 1 sampled at 5 points, A = [x 1].
  Matrix a(5, 2);
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i;
    a(i, 1) = 1.0;
    b[i] = 2.0 * i + 1.0;
  }
  const std::vector<double> x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 1.0, 1e-10);
}

TEST(SolveLeastSquares, DampingShrinksSolution) {
  Matrix a(4, 2);
  std::vector<double> b(4);
  Rng rng(103);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = rng.gaussian();
    b[i] = rng.gaussian();
  }
  const std::vector<double> x0 = solve_least_squares(a, b, 0.0);
  const std::vector<double> x1 = solve_least_squares(a, b, 100.0);
  const double n0 = x0[0] * x0[0] + x0[1] * x0[1];
  const double n1 = x1[0] * x1[0] + x1[1] * x1[1];
  EXPECT_LT(n1, n0);
}

TEST(SolveLeastSquares, UnderdeterminedThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_least_squares(a, std::vector<double>{1.0, 2.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace rfp
