/// Smart shelf in a cluttered stockroom — multipath suppression (§V-D).
///
/// Supermarket stockrooms are full of cartons and people: reflections
/// corrupt a subset of frequency channels. RF-Prism's channel selection
/// finds the consensus line across channels and drops the corrupted ones;
/// this example measures how much that recovers, mirroring the paper's
/// Fig. 12 comparison on a small scale.

#include <cstdio>
#include <vector>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/dsp/stats.hpp"
#include "rfp/exp/testbed.hpp"

namespace {

double mean_error(const rfp::Testbed& bed, const rfp::RfPrism& prism,
                  std::uint64_t trial_base) {
  using namespace rfp;
  Rng rng(trial_base);
  std::vector<double> errors;
  std::uint64_t trial = trial_base;
  for (int rep = 0; rep < 20; ++rep) {
    const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
    const TagState state =
        bed.tag_state(p, rng.uniform(0.0, kPi), "plastic");
    const SensingResult r = prism.sense(bed.collect(state, trial++),
                                        bed.tag_id());
    if (!r.valid) continue;
    errors.push_back(100.0 * distance(r.position, state.position));
  }
  return errors.empty() ? -1.0 : mean(errors);
}

}  // namespace

int main() {
  using namespace rfp;

  // Clean reference deployment.
  Testbed clean_bed{};

  // The same shelf surrounded by cartons and passing staff.
  TestbedConfig cluttered;
  cluttered.multipath_environment = true;
  cluttered.n_clutter = 6;
  Testbed messy_bed(cluttered);

  // A pipeline identical to the messy one but with channel selection off.
  RfPrismConfig no_selection = messy_bed.prism().config();
  no_selection.fitting.multipath_suppression = false;
  no_selection.error_detector.max_fit_rmse = 0.20;
  const RfPrism plain = messy_bed.make_pipeline_variant(std::move(no_selection));

  const double clean_err = mean_error(clean_bed, clean_bed.prism(), 1000);
  const double suppressed_err = mean_error(messy_bed, messy_bed.prism(), 2000);
  const double plain_err = mean_error(messy_bed, plain, 2000);

  std::printf("mean localization error, 20 shelf reads each:\n");
  std::printf("  clean stockroom                    : %6.1f cm\n", clean_err);
  std::printf("  cluttered, channel selection ON    : %6.1f cm\n",
              suppressed_err);
  std::printf("  cluttered, channel selection OFF   : %6.1f cm\n", plain_err);
  if (plain_err > 0.0 && suppressed_err > 0.0) {
    std::printf("  suppression recovers %.0f%% of the multipath penalty\n",
                100.0 * (plain_err - suppressed_err) /
                    std::max(plain_err - clean_err, 1e-9));
  }
  return suppressed_err >= 0.0 && suppressed_err <= plain_err ? 0 : 1;
}
