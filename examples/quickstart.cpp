/// Quickstart: the smallest complete RF-Prism session.
///
/// Builds the simulated deployment (3 circularly-polarized antennas facing
/// a 2m x 2m region), calibrates the reader ports and one tag, then senses
/// the tag's position, orientation, and material parameters from a single
/// 50-channel hop round — the paper's "versatile sensing" in ~60 lines.

#include <cstdio>

#include "rfp/common/angles.hpp"
#include "rfp/exp/testbed.hpp"

int main() {
  using namespace rfp;

  // The Testbed stands in for the physical rig: it owns the simulated
  // scene and a calibrated RfPrism pipeline (reader-port equalization +
  // theta_device0 for tag "tag-1" already performed).
  Testbed bed{};

  std::printf("deployment: %zu antennas, region %.1fm x %.1fm\n",
              bed.scene().antennas.size(),
              bed.scene().working_region.width(),
              bed.scene().working_region.height());

  // Ground truth: a tag on a glass bottle at (0.8, 1.3), polarization 65
  // degrees. The pipeline knows none of this.
  const TagState truth = bed.tag_state({0.8, 1.3}, deg2rad(65.0), "glass");

  // One frequency-hopping round (50 channels x 3 antennas), then sense.
  const RoundTrace round = bed.collect(truth, /*trial=*/42);
  const SensingResult result = bed.prism().sense(round, bed.tag_id());

  if (!result.valid) {
    std::printf("sensing rejected: %s\n", to_string(result.reject_reason));
    return 1;
  }

  std::printf("\n--- disentangled state ---\n");
  std::printf("position   : (%.3f, %.3f) m   [truth (%.3f, %.3f), err %.1f cm]\n",
              result.position.x, result.position.y, truth.position.x,
              truth.position.y,
              100.0 * distance(result.position, truth.position));
  std::printf("orientation: %.1f deg          [truth 65.0, err %.1f deg]\n",
              rad2deg(result.alpha),
              rad2deg(planar_angle_error(result.alpha, deg2rad(65.0))));
  std::printf("kt         : %.2f rad/GHz      [glass nominal %.2f]\n",
              result.kt * 1e9,
              bed.scene().materials.get("glass").kt * 1e9);
  std::printf("bt         : %.2f rad          [glass nominal %.2f]\n",
              result.bt, bed.scene().materials.get("glass").bt);
  std::printf("diagnostics: %zu antennas fitted, slope residual %.3g rad/Hz\n",
              result.lines.size(), result.position_residual);

  // Per-antenna fit summary (paper Eq. 6's k_i, b_i).
  std::printf("\n--- per-antenna lines ---\n");
  for (const auto& line : result.lines) {
    std::printf("antenna %zu: k=%.3f rad/GHz  b=%.3f rad  inliers %zu/%zu\n",
                line.antenna, line.fit.slope * 1e9,
                wrap_to_2pi(line.fit.intercept), line.fit.n, line.n_channels);
  }
  return 0;
}
