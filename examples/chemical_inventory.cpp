/// Chemical inventory — the paper's motivating scenario (§I).
///
/// A lab shelf holds bottles of different liquids. Bottles are constantly
/// taken out and put back, so the SAME liquid may appear at DIFFERENT
/// positions and different liquids at the same position over time. Because
/// location and content both shift the tag's phase, neither a pure
/// localization system nor a pure material sensor can answer:
///
///   "where is the alcohol right now?"   and
///   "what is the bottle at shelf slot 3?"
///
/// RF-Prism answers both from the same hop rounds, because it solves for
/// position, orientation, and material parameters *simultaneously*.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "rfp/common/angles.hpp"
#include "rfp/common/constants.hpp"
#include "rfp/common/rng.hpp"
#include "rfp/core/identifier.hpp"
#include "rfp/exp/testbed.hpp"

namespace {

using namespace rfp;

struct Bottle {
  std::string label;     // what the lab database thinks is inside
  std::string contents;  // ground-truth liquid
  Vec2 slot;             // shelf slot position
  double orientation;    // how it happens to be rotated today
};

}  // namespace

int main() {
  Testbed bed{};
  Rng rng(2024);

  // ---- One-time training: teach the identifier the lab's liquids -------
  // (In a deployment this is done once per site with reference samples.)
  MaterialIdentifier identifier(ClassifierKind::kDecisionTree);
  const std::vector<std::string> liquids{"water", "milk", "oil", "alcohol"};
  std::uint64_t trial = 100;
  for (int rep = 0; rep < 30; ++rep) {
    for (const auto& liquid : liquids) {
      const Vec2 p{0.3 + 1.4 * rng.uniform(), 0.3 + 1.4 * rng.uniform()};
      const SensingResult r =
          bed.sense(bed.tag_state(p, rng.uniform(0.0, kPi), liquid), trial++);
      if (r.valid) identifier.add_sample(r, liquid);
    }
  }
  identifier.train();
  std::printf("identifier trained on %zu reference reads\n",
              identifier.n_samples());

  // ---- Today's shelf state (ground truth the system must discover) -----
  const std::vector<Bottle> shelf{
      {"bottle-A", "water", {0.4, 0.5}, deg2rad(10.0)},
      {"bottle-B", "alcohol", {1.0, 0.6}, deg2rad(75.0)},
      {"bottle-C", "oil", {1.6, 0.5}, deg2rad(140.0)},
      {"bottle-D", "milk", {0.5, 1.4}, deg2rad(30.0)},
      {"bottle-E", "alcohol", {1.5, 1.5}, deg2rad(100.0)},
  };

  // ---- Inventory pass: one hop round per bottle -------------------------
  std::printf("\n%-10s %-22s %-12s %-10s\n", "bottle", "located at (err)",
              "identified", "truth");
  std::map<std::string, std::vector<Vec2>> by_liquid;
  int located = 0, identified = 0;
  for (const auto& bottle : shelf) {
    const SensingResult r = bed.sense(
        bed.tag_state(bottle.slot, bottle.orientation, bottle.contents),
        trial++);
    if (!r.valid) {
      std::printf("%-10s rejected (%s)\n", bottle.label.c_str(),
                  to_string(r.reject_reason));
      continue;
    }
    const std::string material = identifier.predict(r);
    const double err = 100.0 * distance(r.position, Vec3{bottle.slot, 0.0});
    std::printf("%-10s (%.2f, %.2f) (%4.1f cm)  %-12s %-10s%s\n",
                bottle.label.c_str(), r.position.x, r.position.y, err,
                material.c_str(), bottle.contents.c_str(),
                material == bottle.contents ? "" : "   <-- MISMATCH");
    by_liquid[material].push_back(r.position.xy());
    located += err < 25.0;
    identified += material == bottle.contents;
  }

  // ---- The two queries the paper's intro poses -------------------------
  std::printf("\nQ: where is the alcohol?\n");
  for (const Vec2 p : by_liquid["alcohol"]) {
    std::printf("   -> bottle at (%.2f, %.2f)\n", p.x, p.y);
  }

  std::printf("\nQ: what is at shelf slot (1.6, 0.5)?\n");
  double best_d = 1e9;
  std::string best_material = "?";
  for (const auto& [material, positions] : by_liquid) {
    for (const Vec2 p : positions) {
      const double d = distance(p, Vec2{1.6, 0.5});
      if (d < best_d) {
        best_d = d;
        best_material = material;
      }
    }
  }
  std::printf("   -> %s (nearest sensed bottle, %.1f cm away)\n",
              best_material.c_str(), 100.0 * best_d);

  std::printf("\nsummary: %d/5 located within 25 cm, %d/5 contents correct\n",
              located, identified);
  return located >= 4 && identified >= 3 ? 0 : 1;
}
