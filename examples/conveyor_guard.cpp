/// Conveyor guard — the error detector at work (paper §V-C).
///
/// RF-Prism assumes the tag holds still during one 10-second hop round;
/// a tag that moves or rotates mid-round produces phases sampled at
/// inconsistent poses, which silently corrupts naive pipelines. The error
/// detector catches these windows by checking the phase-vs-frequency
/// linearity and reports them instead of producing wrong answers.
///
/// Scenario: a production line where items pause in the scan zone. Items
/// that are still moving when scanned must be flagged for re-scan, not
/// logged at a bogus position.

#include <cstdio>

#include "rfp/common/angles.hpp"
#include "rfp/exp/testbed.hpp"

int main() {
  using namespace rfp;
  Testbed bed{};

  struct Scan {
    const char* item;
    MobilityModel mobility;
    bool should_pass;
  };

  const TagState parked = bed.tag_state({0.9, 1.1}, deg2rad(40.0), "plastic");
  const TagState parked2 = bed.tag_state({1.4, 0.7}, deg2rad(10.0), "metal");

  const Scan scans[] = {
      {"item-1 (parked)", MobilityModel::static_tag(parked), true},
      {"item-2 (parked)", MobilityModel::static_tag(parked2), true},
      {"item-3 (belt still moving, 4 cm/s)",
       MobilityModel::linear_motion(parked, Vec3{0.04, 0.0, 0.0}), false},
      {"item-4 (wobbling, 20 deg/s)",
       MobilityModel::planar_rotation(parked, deg2rad(20.0)), false},
      {"item-5 (bumped mid-scan)",
       MobilityModel::windowed_motion(parked, Vec3{0.0, 0.12, 0.0}, 4.0, 6.0),
       false},
      {"item-6 (slow creep, 0.2 mm/s)",
       MobilityModel::linear_motion(parked, Vec3{0.0002, 0.0, 0.0}), true},
  };

  std::printf("%-38s %-10s %-22s %s\n", "item", "verdict", "detail",
              "expected");
  int agreed = 0;
  std::uint64_t trial = 500;
  for (const Scan& scan : scans) {
    const RoundTrace round = bed.collect(scan.mobility, trial++);
    const SensingResult r = bed.prism().sense(round, bed.tag_id());
    const bool passed = r.valid;
    char detail[64];
    if (passed) {
      std::snprintf(detail, sizeof detail, "pos (%.2f, %.2f)", r.position.x,
                    r.position.y);
    } else {
      std::snprintf(detail, sizeof detail, "rejected: %s",
                    to_string(r.reject_reason));
    }
    std::printf("%-38s %-10s %-22s %s%s\n", scan.item,
                passed ? "ACCEPT" : "RE-SCAN", detail,
                scan.should_pass ? "accept" : "re-scan",
                passed == scan.should_pass ? "" : "  <-- WRONG");
    agreed += passed == scan.should_pass;
  }
  std::printf("\n%d/6 verdicts as expected\n", agreed);
  return agreed >= 5 ? 0 : 1;
}
